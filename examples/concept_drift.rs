//! Concept drift with windowed decision trees — GEMM instantiated with
//! the third model class ("GEMM can be instantiated for any class of
//! data mining models", §3.2).
//!
//! A fraud-detection-style scenario: labeled transactions arrive in daily
//! blocks; at some point the fraud pattern rotates (the class boundary
//! moves). A classifier over *all* history keeps scoring old patterns;
//! the GEMM-maintained classifier over the last `w` blocks tracks the new
//! boundary within a window's worth of data.
//!
//! ```sh
//! cargo run --release --example concept_drift
//! ```

use demon::core::bss::BlockSelector;
use demon::core::engine::DataSpan;
use demon::core::{DemonEngine, TreeMaintainer};
use demon::trees::{DecisionTree, LabeledPoint, TreeParams};
use demon::types::{Block, BlockId};
use rand::prelude::*;

const DAYS: u64 = 12;
const SWITCH: u64 = 6;
const PER_DAY: usize = 1200;
const WINDOW: usize = 3;

/// Day `d`'s labeled data: before the switch, fraud lives at x > 2;
/// afterwards the fraudsters adapt and fraud lives at x < -2.
fn day_block(day: u64, rng: &mut StdRng) -> Block<LabeledPoint> {
    let records = (0..PER_DAY)
        .map(|_| {
            let x: f64 = rng.gen_range(-5.0..5.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let fraud = if day <= SWITCH { x > 2.0 } else { x < -2.0 };
            LabeledPoint::new(vec![x, y], u32::from(fraud))
        })
        .collect();
    Block::new(BlockId(day), records)
}

/// Accuracy of a model against freshly drawn data of day `day`.
fn score(tree: &DecisionTree, day: u64, rng: &mut StdRng) -> f64 {
    tree.accuracy(day_block(day, rng).records())
}

fn main() -> Result<(), demon::types::DemonError> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut windowed = DemonEngine::new(
        TreeMaintainer::new(2, TreeParams::new(2)),
        DataSpan::MostRecent {
            w: WINDOW,
            selector: BlockSelector::all(),
        },
    )?;
    let mut all_history = DemonEngine::new(
        TreeMaintainer::new(2, TreeParams::new(2)),
        DataSpan::Unrestricted(demon::core::bss::WiBss::All),
    )?;

    println!("day | accuracy on today's data");
    println!("    |  all-history  last-{WINDOW}-days");
    for day in 1..=DAYS {
        let block = day_block(day, &mut rng);
        all_history.add_block(block.clone())?;
        windowed.add_block(block)?;
        let acc_all = all_history
            .current_model()
            .and_then(|m| m.tree.clone())
            .map(|t| score(&t, day, &mut rng))
            .unwrap_or(0.0);
        let acc_win = windowed
            .current_model()
            .and_then(|m| m.tree.clone())
            .map(|t| score(&t, day, &mut rng))
            .unwrap_or(0.0);
        let marker = if day == SWITCH + 1 { "  ← fraud pattern rotates" } else { "" };
        println!(
            "{day:>3} |   {:>6.1}%      {:>6.1}%{marker}",
            acc_all * 100.0,
            acc_win * 100.0
        );
    }
    println!(
        "\nThe windowed classifier re-learns the boundary within {WINDOW} days; \
         the all-history classifier stays split between the two regimes."
    );
    Ok(())
}
