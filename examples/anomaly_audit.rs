//! Live anomaly auditing over a sliding window — the extension surface of
//! the framework in one application:
//!
//! 1. **granularity selection** (the paper's future work): score several
//!    block granularities on a warm-up prefix of the trace and pick the
//!    one whose blocks organize best into patterns;
//! 2. **windowed pattern detection** (footnote 9): mine compact sequences
//!    over only the most recent window, retiring old blocks;
//! 3. **cyclic post-processing** (§4): extract periodic structure from
//!    the discovered sequences;
//! 4. anomaly flagging: a new block similar to *no* live block is
//!    surfaced immediately.
//!
//! ```sh
//! cargo run --release --example anomaly_audit
//! ```

use demon::datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon::focus::{
    cyclic_subsequences, evaluate_granularities, select_granularity, ItemsetSimilarity,
    SimilarityConfig, WindowedCompactMiner,
};
use demon::types::calendar::format_date;
use demon::types::{MinSupport, Timestamp};

fn oracle() -> ItemsetSimilarity {
    ItemsetSimilarity::new(
        webtrace::N_ITEMS,
        MinSupport::new(0.01).unwrap(),
        SimilarityConfig::Threshold { alpha: 0.12 },
    )
}

fn main() {
    let mut gen = WebTraceGen::new(WebTraceConfig {
        base_rate: 300.0,
        ..WebTraceConfig::default()
    });
    let requests = gen.generate();

    // --- 1. pick the granularity on the first week ------------------------
    let warmup_end = Timestamp::from_day_hour(7, 0);
    let warmup: Vec<_> = requests
        .iter()
        .copied()
        .take_while(|r| r.ts < warmup_end)
        .collect();
    let candidates = [4u64, 6, 8, 12, 24];
    let reports = evaluate_granularities(
        &candidates,
        |g| webtrace::segment_into_blocks(&warmup, g, Timestamp::from_day_hour(0, 12)),
        oracle,
        3,
    );
    println!("granularity  blocks  patterns  coverage  cohesion  score");
    for r in &reports {
        println!(
            "{:>9}h  {:>6}  {:>8}  {:>8.2}  {:>8.2}  {:>5.3}",
            r.granularity, r.n_blocks, r.n_patterns, r.coverage, r.cohesion, r.score
        );
    }
    let best = select_granularity(&reports).expect("candidates evaluated");
    println!("→ selected granularity: {}h\n", best.granularity);

    // --- 2./4. windowed mining with anomaly flags -------------------------
    let blocks = webtrace::segment_into_blocks(
        &requests,
        best.granularity,
        Timestamp::from_day_hour(0, 12),
    );
    let blocks_per_week = (7 * 24 / best.granularity) as usize;
    let mut miner = WindowedCompactMiner::new(oracle(), blocks_per_week);
    println!(
        "auditing {} blocks with a {}-block window:",
        blocks.len(),
        blocks_per_week
    );
    for block in blocks {
        let iv = block.interval().unwrap();
        let stats = miner.add_block(block);
        if stats.pairs_evaluated >= blocks_per_week / 2 && stats.similar_pairs == 0 {
            println!(
                "  !! {} {:02}:00 block matches nothing in the last week — audit it",
                format_date(iv.start.day()),
                iv.start.hour()
            );
        }
    }

    // --- 3. periodic structure in the live sequences ----------------------
    println!("\nperiodic patterns among the live sequences:");
    let mut shown = 0;
    for seq in miner.sequences() {
        if seq.len() < 4 {
            continue;
        }
        for cyc in cyclic_subsequences(&seq, 4) {
            let hours = cyc.period * best.granularity;
            println!(
                "  every {:>3} h: {} blocks starting at {}",
                hours,
                cyc.len(),
                cyc.blocks[0]
            );
            shown += 1;
            if shown >= 8 {
                return;
            }
        }
    }
    if shown == 0 {
        println!("  (none of period ≥ 4 — widen the window)");
    }
}
