//! Pattern detection on the (synthetic) web proxy trace — the paper's §5.3
//! experiment as an end-to-end application: segment a 21-day request
//! stream into 6-hour blocks, mine compact sequences of similar blocks,
//! and report them in calendar terms.
//!
//! ```sh
//! cargo run --release --example web_trace_patterns
//! ```

use demon::core::report;
use demon::datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon::focus::{CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig};
use demon::types::{MinSupport, Timestamp};

fn main() {
    // 21 days of requests with planted diurnal/weekly structure and one
    // anomalous Monday (9-9-1996).
    let mut gen = WebTraceGen::new(WebTraceConfig {
        base_rate: 400.0,
        ..WebTraceConfig::default()
    });
    let requests = gen.generate();
    println!("trace: {} requests over 21 days", requests.len());

    // 82 six-hour blocks from noon of day 0, as in the paper.
    let blocks = webtrace::segment_into_blocks(&requests, 6, Timestamp::from_day_hour(0, 12));
    let intervals: Vec<_> = blocks.iter().map(|b| b.interval().unwrap()).collect();
    println!("segmented into {} blocks of 6 hours\n", blocks.len());

    // Block similarity through frequent-itemset models at κ = 1%.
    let oracle = ItemsetSimilarity::new(
        webtrace::N_ITEMS,
        MinSupport::new(0.01).unwrap(),
        SimilarityConfig::Threshold { alpha: 0.12 },
    );
    let mut miner = CompactSequenceMiner::new(oracle);
    for block in blocks {
        let stats = miner.add_block(block);
        if stats.pairs_evaluated > 0 && stats.similar_pairs == 0 && stats.pairs_evaluated > 10 {
            let iv = intervals[miner.n_blocks() - 1];
            println!(
                "!! block {} ({} {:02}:00) is similar to NO earlier block — anomaly",
                miner.n_blocks() - 1,
                demon::types::calendar::format_date(iv.start.day()),
                iv.start.hour()
            );
        }
    }

    println!("\ndiscovered compact sequences (≥ 6 blocks):");
    let mut rows: Vec<(usize, String)> = miner
        .maximal_sequences()
        .into_iter()
        .filter(|s| s.len() >= 6)
        .map(|seq| {
            let ivs: Vec<_> = seq.iter().map(|id| intervals[id.index()]).collect();
            (seq.len(), report::describe(&ivs).description)
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.0));
    rows.dedup_by(|a, b| a.1 == b.1);
    for (len, desc) in rows.iter().take(10) {
        println!("  {len:>3} blocks  {desc}");
    }
}
