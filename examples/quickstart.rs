//! Quickstart: maintain frequent itemsets over an evolving transaction
//! stream, under both data span options.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use demon::core::bss::WiBss;
use demon::core::engine::UwEngine;
use demon::core::{Gemm, ItemsetMaintainer};
use demon::datagen::{QuestGen, QuestParams};
use demon::itemsets::CounterKind;
use demon::prelude::BlockSelector;
use demon::types::{Block, BlockId, MinSupport};

fn main() -> Result<(), demon::types::DemonError> {
    // Synthetic market-basket data: 200 items, short transactions.
    let params = QuestParams {
        n_transactions: 0, // we pull blocks manually
        avg_tx_len: 8.0,
        n_items: 200,
        n_patterns: 100,
        avg_pattern_len: 4.0,
        ..QuestParams::default()
    };
    let mut gen = QuestGen::new(params, 7);
    let minsup = MinSupport::new(0.02).unwrap();

    // Engine 1: unrestricted window — the model covers everything so far.
    let mut uw = UwEngine::new(
        ItemsetMaintainer::new(200, minsup, CounterKind::Ecut),
        WiBss::All,
    );
    // Engine 2: most recent window of 4 blocks.
    let mut mrw = Gemm::new(
        ItemsetMaintainer::new(200, minsup, CounterKind::Ecut),
        4,
        BlockSelector::all(),
    )?;

    println!("block |  UW model (all history)   | MRW model (last 4 blocks)");
    println!("      | n_tx    frequent itemsets | n_tx    frequent itemsets");
    for id in 1..=10u64 {
        let block = Block::new(BlockId(id), gen.take_transactions(2000));
        let uw_stats = uw.add_block(block.clone())?;
        let mrw_stats = mrw.add_block(block)?;
        let (u, m) = (uw.model(), mrw.current_model().unwrap());
        println!(
            "  D{id:<3}| {:>6}  {:>6} ({:>5.1?})   | {:>6}  {:>6} ({:>5.1?})",
            u.n_transactions(),
            u.n_frequent(),
            uw_stats.response_time,
            m.n_transactions(),
            m.n_frequent(),
            mrw_stats.response_time,
        );
    }

    // The UW model saw all 20 000 transactions; the MRW model only the
    // last 8 000 — recent shifts in the data show up there first.
    println!("\nTop frequent itemsets of the most recent window:");
    let mut top = mrw.current_model().unwrap().frequent_sorted();
    top.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (set, count) in top.iter().take(8) {
        let frac = *count as f64 / mrw.current_model().unwrap().n_transactions() as f64;
        println!("  {set}  support {:.2}%", frac * 100.0);
    }
    Ok(())
}
