//! The "Demons'R Us" toy store scenario (paper §2.2–2.3): a retail
//! database updated daily, where the analyst watches *recent* trends.
//!
//! Three simultaneous monitors over the same daily block stream:
//!
//! 1. all data so far (unrestricted window) — the long-run model;
//! 2. the last 14 days (MRW, all-ones BSS) — the current-trends model;
//! 3. the same weekday as today within the last 14 days (MRW,
//!    window-relative BSS selecting every 7th block) — the paper's third
//!    motivating application.
//!
//! The generator shifts the popular patterns halfway through, and weekend
//! baskets differ from weekday baskets; watch the three models diverge.
//!
//! ```sh
//! cargo run --release --example retail_monitoring
//! ```

use demon::core::bss::{BlockSelector, WiBss, WrBss};
use demon::core::engine::UwEngine;
use demon::core::{Gemm, ItemsetMaintainer};
use demon::datagen::{QuestGen, QuestParams};
use demon::itemsets::{CounterKind, FrequentItemsets};
use demon::types::{Block, BlockId, MinSupport, Tid, Transaction};

const N_ITEMS: u32 = 300;
const DAYS: u64 = 28;
const TX_PER_DAY: usize = 1500;
const WINDOW: usize = 14;

/// Daily baskets: weekdays draw from one pattern pool, weekends from
/// another, and after day 14 the weekday pool is replaced ("popularity of
/// most toys is short-lived").
struct Store {
    weekday_old: QuestGen,
    weekday_new: QuestGen,
    weekend: QuestGen,
    next_tid: u64,
}

impl Store {
    fn new() -> Store {
        let mk = |seed: u64| {
            QuestGen::new(
                QuestParams {
                    n_transactions: 0,
                    avg_tx_len: 6.0,
                    n_items: N_ITEMS,
                    n_patterns: 60,
                    avg_pattern_len: 3.0,
                    ..QuestParams::default()
                },
                seed,
            )
        };
        Store {
            weekday_old: mk(1),
            weekday_new: mk(2),
            weekend: mk(3),
            next_tid: 1,
        }
    }

    fn day_block(&mut self, day: u64) -> Block<Transaction> {
        let weekend = matches!(day % 7, 5 | 6);
        let gen = if weekend {
            &mut self.weekend
        } else if day < DAYS / 2 {
            &mut self.weekday_old
        } else {
            &mut self.weekday_new
        };
        let txs: Vec<Transaction> = gen
            .take_transactions(TX_PER_DAY)
            .into_iter()
            .map(|t| {
                let tid = Tid(self.next_tid);
                self.next_tid += 1;
                Transaction::from_sorted(tid, t.items().to_vec())
            })
            .collect();
        Block::new(BlockId(day + 1), txs)
    }
}

fn overlap(a: &FrequentItemsets, b: &FrequentItemsets) -> f64 {
    let common = a
        .frequent()
        .keys()
        .filter(|s| b.frequent().contains_key(*s))
        .count();
    let denom = a.n_frequent().max(b.n_frequent()).max(1);
    common as f64 / denom as f64
}

fn main() -> Result<(), demon::types::DemonError> {
    let minsup = MinSupport::new(0.02).unwrap();
    let maintainer = || ItemsetMaintainer::new(N_ITEMS, minsup, CounterKind::Ecut);

    let mut all_time = UwEngine::new(maintainer(), WiBss::All);
    let mut recent = Gemm::new(maintainer(), WINDOW, BlockSelector::all())?;
    // "Same day of the week as today within the past 14 days": positions
    // 14 and 7 counting from the window start — a window-relative BSS that
    // moves with the window.
    let same_weekday_bits: Vec<bool> = (1..=WINDOW).map(|p| p % 7 == 0).collect();
    let mut same_weekday = Gemm::new(
        maintainer(),
        WINDOW,
        BlockSelector::WindowRelative(WrBss::new(same_weekday_bits)),
    )?;

    let mut store = Store::new();
    println!("day  | L(all) | L(14d) | L(weekday) | trend-shift signal");
    for day in 0..DAYS {
        let block = store.day_block(day);
        all_time.add_block(block.clone())?;
        recent.add_block(block.clone())?;
        same_weekday.add_block(block)?;

        if day >= WINDOW as u64 - 1 && day % 2 == 1 {
            let a = all_time.model();
            let r = recent.current_model().unwrap();
            let w = same_weekday.current_model().unwrap();
            // How much of the recent window's model still matches the
            // all-time model: drops when the trend shifts mid-stream.
            let agree = overlap(a, r);
            println!(
                "D{:>3} | {:>6} | {:>6} | {:>10} | recent↔all-time overlap {:>5.1}%",
                day + 1,
                a.n_frequent(),
                r.n_frequent(),
                w.n_frequent(),
                agree * 100.0
            );
        }
    }

    println!(
        "\nThe all-time model dilutes the new trend (paper §2.2: mining the \
         entire database \"may dilute some patterns\"); the 14-day window \
         tracks it, and the same-weekday model isolates weekly seasonality."
    );
    Ok(())
}
