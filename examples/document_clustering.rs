//! Incremental document clustering (paper §2.2's first motivating
//! application): a growing corpus where "the document cluster model is
//! used to associate new, unclassified documents with existing concepts".
//!
//! Documents are modeled as points in a low-dimensional topic-embedding
//! space (simulated: Gaussian blobs around topic centroids). Each month a
//! new block of documents arrives; BIRCH+ keeps the cluster model current
//! without re-scanning the archive, and newly arriving documents are
//! labeled against the maintained model.
//!
//! ```sh
//! cargo run --release --example document_clustering
//! ```

use demon::clustering::{BirchParams, BirchPlus};
use demon::datagen::{ClusterDataGen, ClusterParams};
use demon::types::{BlockId, PointBlock};

const TOPICS: usize = 8;
const DIM: usize = 6;
const DOCS_PER_MONTH: usize = 5_000;
const MONTHS: u64 = 12;

fn main() {
    // The corpus process: 8 latent topics in a 6-d embedding space.
    let mut corpus = ClusterDataGen::new(
        ClusterParams {
            n_points: 0,
            k: TOPICS,
            dim: DIM,
            noise_fraction: 0.03,
            sigma: 1.0,
            domain: 60.0,
        },
        2024,
    );

    let mut params = BirchParams::new(DIM, TOPICS);
    params.tree.threshold2 = 2.0;
    params.tree.max_leaf_entries = 1024;
    let mut library = BirchPlus::new(params);

    println!("month | corpus size | sub-clusters | topics | phase1+phase2");
    for month in 1..=MONTHS {
        let block = PointBlock::new(BlockId(month), corpus.take_points(DOCS_PER_MONTH));
        let p1 = library.absorb_block(&block);
        let (model, p2) = library.model();
        println!(
            "{month:>5} | {:>11} | {:>12} | {:>6} | {:?}",
            library.n_points(),
            library.tree().n_subclusters(),
            model.k(),
            p1 + p2
        );
    }

    // Associate fresh, unclassified documents with the maintained topics.
    let (model, _) = library.model();
    let fresh = corpus.take_points(6);
    println!("\nassigning new documents to concepts:");
    for doc in &fresh {
        let topic = model.assign_point(doc);
        let centroid = model.clusters[topic].centroid();
        println!(
            "  doc at {:?} → topic {} (centroid {:?}, {} members)",
            doc,
            topic,
            centroid,
            model.clusters[topic].n()
        );
    }

    // Sanity: the maintained topics sit near the true topic centroids.
    let mut recovered = 0;
    for truth in corpus.centers() {
        let best = model
            .centroids()
            .iter()
            .map(|c| c.dist(truth))
            .fold(f64::INFINITY, f64::min);
        if best < 3.0 {
            recovered += 1;
        }
    }
    println!(
        "\n{recovered}/{TOPICS} true topic centroids recovered within 3σ \
         after {MONTHS} months of incremental maintenance"
    );
}
