//! Fault-injection sweep for `demon-serve`'s write-ahead log: the
//! daemon is killed at randomized points around the append/ack protocol
//! (via the `DEMON_SERVE_CRASH` hook, which `abort()`s the process —
//! the userspace-visible equivalent of `kill -9` — plus one sweep with
//! a real `SIGKILL`), restarted, and checked for the durability
//! contract:
//!
//! * every **acked** block is present after recovery;
//! * no unacked block is half-applied — the recovered stream is always
//!   a clean prefix `D1..Dn` with `n` at most one past the acked count
//!   (the one in-flight block that was appended but whose ack was
//!   lost);
//! * after re-streaming the remainder, the recovered model is
//!   **byte-identical** to an uninterrupted run;
//! * a torn or bit-flipped final WAL record is salvaged (dropped), not
//!   fatal.

use demon::itemsets::{FrequentItemsets, TxStore};
use demon::serve::{Client, RetryPolicy};
use demon::types::{Block, BlockId, DemonError, MinSupport, Tid, Transaction, TxBlock};
use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const N_ITEMS: u32 = 64;
const MINSUP: f64 = 0.05;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_demon-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demon-wal-test-{name}-{}", std::process::id()))
}

/// Same golden stream as `tests/serve.rs`: five deterministic blocks.
fn golden_blocks() -> Vec<TxBlock> {
    let mut tid = 0u64;
    (1..=5u64)
        .map(|id| {
            let txs = (0..40)
                .map(|i| {
                    tid += 1;
                    let mut items = vec![(i % 7) as u32, 7 + (i % 5) as u32];
                    if i % 3 == 0 {
                        items.push(20 + (id as u32 % 4));
                    }
                    items.sort_unstable();
                    items.dedup();
                    Transaction::new(
                        Tid(tid),
                        items.into_iter().map(demon::types::Item).collect(),
                    )
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect()
}

/// The uninterrupted reference: a batch mine over the full stream, as
/// the canonical JSON the server answers with.
fn reference_model_json() -> String {
    let mut store = TxStore::new(N_ITEMS);
    let ids: Vec<BlockId> = golden_blocks()
        .into_iter()
        .map(|b| {
            let id = b.id();
            store.add_block(b);
            id
        })
        .collect();
    let model =
        FrequentItemsets::mine_from(&store, &ids, MinSupport::new(MINSUP).unwrap()).unwrap();
    serde_json::to_string(&model).unwrap()
}

/// Spawns a durable daemon on an ephemeral port, optionally armed with
/// a `DEMON_SERVE_CRASH` point.
fn spawn_daemon(
    wal_dir: &Path,
    extra: &[&str],
    crash: Option<&str>,
) -> (Child, String, impl BufRead) {
    let mut cmd = cli();
    cmd.args([
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--items",
        &N_ITEMS.to_string(),
        "--minsup",
        &MINSUP.to_string(),
        "--wal-dir",
        wal_dir.to_str().unwrap(),
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::null()); // the abort() signal note is expected noise
    if let Some(point) = crash {
        cmd.env("DEMON_SERVE_CRASH", point);
    }
    let mut child = cmd.spawn().expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .strip_prefix("demon-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .trim()
        .to_string();
    (child, addr, reader)
}

/// Streams the golden blocks with no client-side retry (so a crash is
/// observed, not papered over); returns how many were acked before the
/// stream died.
fn ingest_until_crash(addr: &str) -> usize {
    let mut acked = 0;
    let mut client = match Client::connect_with(
        addr,
        Duration::from_secs(10),
        RetryPolicy::none(),
    ) {
        Ok(c) => c,
        Err(_) => return 0, // daemon died before the connect landed
    };
    for block in golden_blocks() {
        match client.ingest(N_ITEMS, &block) {
            Ok(()) => acked += 1,
            Err(_) => break,
        }
    }
    acked
}

/// The daemon's recovered block ids, read from the canonical model JSON
/// (its `included` field lists the applied stream in order).
fn included_blocks(client: &mut Client) -> Vec<u64> {
    let json = client.query_model_json().expect("query-model");
    let value: serde_json::Value = serde_json::from_str(&json).expect("model JSON parses");
    value
        .get("included")
        .and_then(|v| v.as_array())
        .map(|a| a.iter().map(|v| v.as_u64().unwrap()).collect())
        .unwrap_or_default()
}

/// Restarts the daemon over `wal_dir`, checks the recovered prefix
/// against `acked`, re-streams the remainder (duplicates are skips) and
/// asserts the final model is byte-identical to the uninterrupted
/// reference. Returns the recovered-prefix length.
fn recover_and_check(wal_dir: &Path, acked: usize, label: &str) -> usize {
    recover_and_check_with(wal_dir, &[], acked, label)
}

/// `recover_and_check`, restarting the daemon with extra flags (the
/// sharded sweep restarts with the same `--shards` it crashed under).
fn recover_and_check_with(wal_dir: &Path, extra: &[&str], acked: usize, label: &str) -> usize {
    let (mut child, addr, _out) = spawn_daemon(wal_dir, extra, None);
    let mut client = Client::connect(&addr).expect("connect after restart");

    let recovered = included_blocks(&mut client);
    let n = recovered.len();
    let expected: Vec<u64> = (1..=n as u64).collect();
    assert_eq!(
        recovered, expected,
        "[{label}] recovery must yield a clean prefix, got {recovered:?}"
    );
    assert!(
        n >= acked,
        "[{label}] lost an acked block: {acked} acked, {n} recovered"
    );
    assert!(
        n <= acked + 1,
        "[{label}] recovered {n} blocks but only {acked} were acked (+1 in-flight allowed)"
    );
    if n > 0 {
        let stats = client.stats_json().expect("stats");
        assert!(
            stats.contains("\"wal.replays\":"),
            "[{label}] recovery must count wal.replays: {stats}"
        );
    }

    // Re-stream everything; already-recovered blocks answer Duplicate.
    for block in golden_blocks() {
        match client.ingest(N_ITEMS, &block) {
            Ok(()) | Err(DemonError::DuplicateBlock { .. }) => {}
            Err(e) => panic!("[{label}] re-streaming block {}: {e}", block.id()),
        }
    }
    assert_eq!(
        client.query_model_json().expect("final model"),
        reference_model_json(),
        "[{label}] recovered model diverged from the uninterrupted run"
    );
    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("daemon exits").success());
    n
}

#[test]
fn crash_sweep_around_the_append_ack_protocol_never_loses_an_acked_block() {
    let specs = [
        ("before_append:1", 0usize), // die before anything touches the log
        ("before_append:3", 2),
        ("after_append:1", 0), // appended + fsynced, ack never sent
        ("after_append:4", 3),
        // `after_ack` aborts once the done-slot is filled, racing the
        // worker's response write — the nth ack itself may be lost on
        // the wire, so the floor is n-1.
        ("after_ack:2", 1),
        ("after_ack:5", 4),
    ];
    for (crash, min_acked) in specs {
        let wal_dir = tmp(&format!("sweep-{}", crash.replace(':', "-")));
        std::fs::remove_dir_all(&wal_dir).ok();

        let (mut child, addr, _out) = spawn_daemon(&wal_dir, &[], Some(crash));
        let acked = ingest_until_crash(&addr);
        let status = child.wait().expect("crashed daemon reaps");
        assert!(!status.success(), "[{crash}] daemon should have died");
        // The ack for the in-flight block can be lost in the crash, so
        // the observed count may undershoot the hook position by one.
        assert!(
            acked >= min_acked,
            "[{crash}] expected at least {min_acked} acks, saw {acked}"
        );

        recover_and_check(&wal_dir, acked, crash);
        std::fs::remove_dir_all(&wal_dir).ok();
    }
}

/// Group commit coalesces fsyncs across queued blocks, but the ack
/// contract is unchanged: an ack is only sent after the fsync covering
/// that block, so the same crash sweep must never lose an acked block.
#[test]
fn group_commit_crash_sweep_never_loses_an_acked_block() {
    const GC: &[&str] = &["--wal-group-commit"];
    let specs = [
        ("before_append:2", 1usize),
        ("after_append:2", 1),
        ("after_ack:3", 2), // the nth ack itself may be lost on the wire
    ];
    for (crash, min_acked) in specs {
        let wal_dir = tmp(&format!("gc-sweep-{}", crash.replace(':', "-")));
        std::fs::remove_dir_all(&wal_dir).ok();

        let (mut child, addr, _out) = spawn_daemon(&wal_dir, GC, Some(crash));
        let acked = ingest_until_crash(&addr);
        let status = child.wait().expect("crashed daemon reaps");
        assert!(!status.success(), "[{crash}] daemon should have died");
        assert!(
            acked >= min_acked,
            "[{crash}] expected at least {min_acked} acks, saw {acked}"
        );

        recover_and_check_with(&wal_dir, GC, acked, crash);
        std::fs::remove_dir_all(&wal_dir).ok();
    }
}

#[test]
fn crash_mid_compaction_recovers_from_either_generation() {
    // A log cap far below one block's encoded size forces a rotation
    // (and thus a compaction) after every ack; the armed hook aborts
    // the daemon between writing the snapshot and flipping CURRENT —
    // the worst spot, where both generations coexist.
    let wal_dir = tmp("mid-compaction");
    std::fs::remove_dir_all(&wal_dir).ok();
    let (mut child, addr, _out) = spawn_daemon(
        &wal_dir,
        &["--wal-max-bytes", "1024"],
        Some("mid_compaction:1"),
    );
    let acked = ingest_until_crash(&addr);
    assert!(!child.wait().expect("reaps").success());
    recover_and_check(&wal_dir, acked, "mid_compaction");
    std::fs::remove_dir_all(&wal_dir).ok();
}

#[test]
fn real_sigkill_mid_stream_loses_nothing_acked() {
    let wal_dir = tmp("sigkill");
    std::fs::remove_dir_all(&wal_dir).ok();
    let (mut child, addr, _out) = spawn_daemon(&wal_dir, &[], None);

    let mut client =
        Client::connect_with(&addr, Duration::from_secs(10), RetryPolicy::none()).unwrap();
    let blocks = golden_blocks();
    let mut acked = 0;
    for block in &blocks[..3] {
        client.ingest(N_ITEMS, block).expect("ingest acked");
        acked += 1;
    }
    // SIGKILL: no atexit, no Drop, no flush — only what was fsynced
    // survives, and everything acked was fsynced.
    child.kill().expect("SIGKILL lands");
    child.wait().expect("reaps");

    recover_and_check(&wal_dir, acked, "sigkill");
    std::fs::remove_dir_all(&wal_dir).ok();
}

/// Disk damage to the *tail* of the log — a truncated or bit-flipped
/// final record — is salvaged on recovery: the clean prefix loads, the
/// daemon starts, and `wal.torn_tails` counts the drop.
#[test]
fn torn_or_flipped_wal_tail_is_salvaged_not_fatal() {
    for (label, damage) in [
        ("truncate", &(|bytes: &mut Vec<u8>| {
            let cut = bytes.len() - 3;
            bytes.truncate(cut);
        }) as &dyn Fn(&mut Vec<u8>)),
        ("bitflip", &|bytes: &mut Vec<u8>| {
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
        }),
    ] {
        let wal_dir = tmp(&format!("torn-{label}"));
        std::fs::remove_dir_all(&wal_dir).ok();
        let (mut child, addr, _out) = spawn_daemon(&wal_dir, &[], None);
        let mut client = Client::connect(&addr).expect("connect");
        let blocks = golden_blocks();
        for block in &blocks[..4] {
            client.ingest(N_ITEMS, block).expect("ingest");
        }
        child.kill().expect("SIGKILL");
        child.wait().expect("reaps");

        // Damage the final record on disk.
        let log = demon::types::wal::wal_file_path(&wal_dir, 0);
        let mut bytes = std::fs::read(&log).expect("log readable");
        damage(&mut bytes);
        std::fs::write(&log, &bytes).expect("damage written");

        // Recovery drops exactly the damaged record: D1..D3 survive.
        let (mut child, addr, _out) = spawn_daemon(&wal_dir, &[], None);
        let mut client = Client::connect(&addr).expect("connect after damage");
        assert_eq!(
            included_blocks(&mut client),
            vec![1, 2, 3],
            "[{label}] the torn tail must cost exactly the damaged record"
        );
        let stats = client.stats_json().expect("stats");
        assert!(
            stats.contains("\"wal.torn_tails\":1"),
            "[{label}] torn tail must be counted: {stats}"
        );

        // The daemon keeps serving: re-stream D4, D5 and match batch.
        for block in &blocks[3..] {
            client.ingest(N_ITEMS, block).expect("stream resumes");
        }
        assert_eq!(
            client.query_model_json().expect("model"),
            reference_model_json(),
            "[{label}] model after salvage + re-stream diverged"
        );
        client.shutdown().expect("shutdown");
        assert!(child.wait().expect("exits").success());
        std::fs::remove_dir_all(&wal_dir).ok();
    }
}

/// The full crash sweep again, on the partitioned runtime: a 4-shard
/// durable daemon is killed at every existing hook (the sequencer's
/// `before_append` / `after_append` / `after_ack`), restarted with the
/// same `--shards 4`, and held to the identical contract — the merged
/// recovered stream is a clean prefix at most one past the acked count,
/// and the post-recovery model is byte-identical to an uninterrupted
/// run. The WAL lives in per-shard lane directories
/// (`wal_dir/shard-<s>/wal-<g>.log`) under one shared generation.
#[test]
fn sharded_crash_sweep_never_loses_an_acked_block() {
    const SHARDS: &[&str] = &["--shards", "4"];
    let specs = [
        ("before_append:1", 0usize),
        ("before_append:3", 2),
        ("after_append:1", 0),
        ("after_append:4", 3),
        ("after_ack:2", 1),
        ("after_ack:5", 4),
    ];
    for (crash, min_acked) in specs {
        let wal_dir = tmp(&format!("sharded-sweep-{}", crash.replace(':', "-")));
        std::fs::remove_dir_all(&wal_dir).ok();

        let (mut child, addr, _out) = spawn_daemon(&wal_dir, SHARDS, Some(crash));
        let acked = ingest_until_crash(&addr);
        let status = child.wait().expect("crashed daemon reaps");
        assert!(!status.success(), "[{crash}] daemon should have died");
        assert!(
            acked >= min_acked,
            "[{crash}] expected at least {min_acked} acks, saw {acked}"
        );

        // The on-disk layout is per-shard lanes under one root.
        for s in 0..4 {
            let lane = wal_dir.join(format!("shard-{s}"));
            assert!(lane.is_dir(), "[{crash}] missing WAL lane {}", lane.display());
        }

        recover_and_check_with(&wal_dir, SHARDS, acked, crash);
        std::fs::remove_dir_all(&wal_dir).ok();
    }
}

/// Mid-compaction crash on the sharded runtime: the shared generation
/// flip is the commit point; dying between the merged snapshot write
/// and the `CURRENT` flip recovers from either generation.
#[test]
fn sharded_crash_mid_compaction_recovers_from_either_generation() {
    let wal_dir = tmp("sharded-mid-compaction");
    std::fs::remove_dir_all(&wal_dir).ok();
    let (mut child, addr, _out) = spawn_daemon(
        &wal_dir,
        &["--shards", "4", "--wal-max-bytes", "1024"],
        Some("mid_compaction:1"),
    );
    let acked = ingest_until_crash(&addr);
    assert!(!child.wait().expect("reaps").success());
    recover_and_check_with(&wal_dir, &["--shards", "4"], acked, "sharded mid_compaction");
    std::fs::remove_dir_all(&wal_dir).ok();
}

/// A real `SIGKILL` against the 4-shard daemon: only fsynced lane bytes
/// survive, and everything acked was fsynced before the ack left.
#[test]
fn sharded_real_sigkill_mid_stream_loses_nothing_acked() {
    let wal_dir = tmp("sharded-sigkill");
    std::fs::remove_dir_all(&wal_dir).ok();
    let (mut child, addr, _out) = spawn_daemon(&wal_dir, &["--shards", "4"], None);

    let mut client =
        Client::connect_with(&addr, Duration::from_secs(10), RetryPolicy::none()).unwrap();
    let blocks = golden_blocks();
    let mut acked = 0;
    for block in &blocks[..3] {
        client.ingest(N_ITEMS, block).expect("ingest acked");
        acked += 1;
    }
    child.kill().expect("SIGKILL lands");
    child.wait().expect("reaps");

    recover_and_check_with(&wal_dir, &["--shards", "4"], acked, "sharded sigkill");
    std::fs::remove_dir_all(&wal_dir).ok();
}

/// `demon-cli verify` understands the WAL layout: clean directories
/// pass, a truncated tail is reported as recoverable (exit 0), and a
/// damaged snapshot fails the fsck.
#[test]
fn cli_verify_fscks_wal_directories() {
    let wal_dir = tmp("fsck");
    std::fs::remove_dir_all(&wal_dir).ok();
    let (mut child, addr, _out) = spawn_daemon(&wal_dir, &["--wal-max-bytes", "1024"], None);
    let mut client = Client::connect(&addr).expect("connect");
    for block in golden_blocks() {
        client.ingest(N_ITEMS, &block).expect("ingest");
    }
    // Give the background compactor a moment to finish a generation.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !wal_dir.join(demon::types::wal::CURRENT_FILE).exists() {
        assert!(std::time::Instant::now() < deadline, "no compaction happened");
        std::thread::sleep(Duration::from_millis(50));
    }
    client.shutdown().expect("shutdown");
    assert!(child.wait().expect("exits").success());

    let clean = cli().args(["verify", wal_dir.to_str().unwrap()]).output().unwrap();
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(clean.status.success(), "clean WAL dir must pass fsck: {stdout}");
    assert!(stdout.contains("WAL directory"), "{stdout}");
    assert!(stdout.contains("recoverable"), "{stdout}");

    // A torn tail is recoverable — still exit 0, but reported.
    let gen = demon::types::wal::read_current(&wal_dir).unwrap();
    let log = demon::types::wal::wal_file_path(&wal_dir, gen);
    let bytes = std::fs::read(&log).unwrap();
    if !bytes.is_empty() {
        std::fs::write(&log, &bytes[..bytes.len() - 1]).unwrap();
    } else {
        // The live log was empty right after compaction; tear CURRENT's
        // snapshot instead below and skip the torn-log phase.
    }
    let torn = cli().args(["verify", wal_dir.to_str().unwrap()]).output().unwrap();
    assert!(torn.status.success(), "torn tail must stay recoverable");

    // Snapshot damage *does* fail the fsck: recovery would lose data.
    let snap = demon::types::wal::snapshot_dir_path(&wal_dir, gen);
    let manifest = snap.join("manifest.bin");
    let target = if manifest.exists() {
        manifest
    } else {
        std::fs::read_dir(&snap).unwrap().next().unwrap().unwrap().path()
    };
    let mut snap_bytes = std::fs::read(&target).unwrap();
    let mid = snap_bytes.len() / 2;
    snap_bytes[mid] ^= 0xFF;
    std::fs::write(&target, &snap_bytes).unwrap();
    let damaged = cli().args(["verify", wal_dir.to_str().unwrap()]).output().unwrap();
    assert!(
        !damaged.status.success(),
        "damaged snapshot must fail fsck: {}",
        String::from_utf8_lossy(&damaged.stdout)
    );
    std::fs::remove_dir_all(&wal_dir).ok();
}
