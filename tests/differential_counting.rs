//! Differential property test of the update-phase counters: PT-Scan,
//! ECUT and ECUT+ fed the *same* random block stream must maintain the
//! same model — identical frequent-itemset support counts and identical
//! negative borders, block by block. The paper treats the counters as
//! interchangeable cost/benefit trade-offs; this pins down that they
//! are interchangeable in answers, not just in spirit.

use demon::itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon::types::{Block, BlockId, Item, MinSupport, Tid, Transaction, TxBlock};
use proptest::prelude::*;
use std::collections::BTreeMap;

const UNIVERSE: u32 = 12;
const COUNTERS: [CounterKind; 3] =
    [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus];

/// A stream of small random blocks over a 12-item universe, TIDs
/// globally monotonic (the systematic-evolution contract).
fn blocks_strategy(max_blocks: usize) -> impl Strategy<Value = Vec<TxBlock>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0..UNIVERSE, 1..6), 5..40),
        1..=max_blocks,
    )
    .prop_map(|raw_blocks| {
        let mut tid = 1u64;
        raw_blocks
            .into_iter()
            .enumerate()
            .map(|(i, txs)| {
                let records: Vec<Transaction> = txs
                    .into_iter()
                    .map(|items| {
                        let t = Transaction::new(Tid(tid), items.into_iter().map(Item).collect());
                        tid += 1;
                        t
                    })
                    .collect();
                Block::new(BlockId(i as u64 + 1), records)
            })
            .collect()
    })
}

fn minsup_strategy() -> impl Strategy<Value = MinSupport> {
    (0.05f64..0.5).prop_map(|k| MinSupport::new(k).unwrap())
}

fn store_of(blocks: &[TxBlock]) -> TxStore {
    let mut store = TxStore::new(UNIVERSE);
    for b in blocks {
        store.add_block(b.clone());
    }
    store
}

/// The full observable state of a maintained model: every frequent
/// itemset with its exact support count, and every border itemset with
/// its count.
fn observe(model: &FrequentItemsets) -> (Vec<(demon::types::ItemSet, u64)>, BTreeMap<demon::types::ItemSet, u64>) {
    let border: BTreeMap<_, _> = model
        .border()
        .iter()
        .map(|(set, &count)| (set.clone(), count))
        .collect();
    (model.frequent_sorted(), border)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three counters, fed the identical stream block by block,
    /// agree on support counts and borders at *every* prefix — not just
    /// at the end.
    #[test]
    fn counters_agree_at_every_prefix(
        blocks in blocks_strategy(4),
        minsup in minsup_strategy(),
    ) {
        let store = store_of(&blocks);
        let mut models: Vec<FrequentItemsets> = COUNTERS
            .iter()
            .map(|_| FrequentItemsets::empty(minsup, UNIVERSE))
            .collect();
        for b in &blocks {
            for (model, kind) in models.iter_mut().zip(COUNTERS) {
                model.absorb_block(&store, b.id(), kind).unwrap();
            }
            let reference = observe(&models[0]);
            for (model, kind) in models.iter().zip(COUNTERS).skip(1) {
                prop_assert_eq!(
                    &observe(model),
                    &reference,
                    "{} diverged from {} after block {}",
                    kind.name(),
                    COUNTERS[0].name(),
                    b.id()
                );
            }
        }
    }

    /// The agreed-upon incremental answer is also the batch answer: the
    /// counters do not share a common bug that batch mining would expose.
    #[test]
    fn agreed_answer_equals_batch_mine(
        blocks in blocks_strategy(4),
        minsup in minsup_strategy(),
    ) {
        let store = store_of(&blocks);
        let batch = FrequentItemsets::mine_from(&store, store.block_ids(), minsup).unwrap();
        let reference = observe(&batch);
        for kind in COUNTERS {
            let mut model = FrequentItemsets::empty(minsup, UNIVERSE);
            for b in &blocks {
                model.absorb_block(&store, b.id(), kind).unwrap();
            }
            prop_assert_eq!(
                &observe(&model),
                &reference,
                "{} incremental diverged from batch",
                kind.name()
            );
            model.check_invariants(&store);
        }
    }
}
