//! Determinism under parallelism: the same block stream, processed at 1,
//! 2 and 8 threads, must produce **byte-identical** results everywhere —
//! support counts, maintained itemset models, GEMM's disk shelf, FOCUS
//! deviation/significance scores and cluster labelings.
//!
//! Everything lives in one `#[test]` because some paths read the
//! process-wide default thread count (`demon::types::parallel::global`),
//! and Rust runs tests of one binary concurrently: a single test is the
//! simplest way to keep `set_global` sweeps race-free.

use demon::core::bss::BlockSelector;
use demon::core::{Gemm, ItemsetMaintainer, ShelfMode};
use demon::datagen::{QuestGen, QuestParams};
use demon::focus::{
    bootstrap_significance_with, CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig,
};
use demon::itemsets::{count_supports_with, CounterKind, FrequentItemsets, TxStore};
use demon::types::parallel::set_global;
use demon::types::{Block, BlockId, ItemSet, MinSupport, Parallelism, Tid, Transaction, TxBlock};

const N_ITEMS: u32 = 120;
const THREADS: [usize; 3] = [1, 2, 8];

fn quest_stream(n_blocks: u64, per_block: usize, seed: u64) -> Vec<TxBlock> {
    let params = QuestParams {
        n_transactions: 0,
        avg_tx_len: 6.0,
        n_items: N_ITEMS,
        n_patterns: 40,
        avg_pattern_len: 3.0,
        ..QuestParams::default()
    };
    let mut gen = QuestGen::new(params, seed);
    let mut tid = 1u64;
    (1..=n_blocks)
        .map(|id| {
            let txs: Vec<Transaction> = gen
                .take_transactions(per_block)
                .into_iter()
                .map(|t| {
                    let tx = Transaction::from_sorted(Tid(tid), t.items().to_vec());
                    tid += 1;
                    tx
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect()
}

fn k(v: f64) -> MinSupport {
    MinSupport::new(v).unwrap()
}

#[test]
fn pipeline_is_bit_identical_at_any_thread_count() {
    let blocks = quest_stream(4, 300, 23);
    counting_is_invariant(&blocks);
    skewed_payload_counting_is_invariant();
    gemm_shelf_is_invariant(&blocks);
    focus_scores_are_invariant(&blocks);
    patterns_are_invariant(&blocks);
    clustering_is_invariant();
    dbscan_is_invariant();
    obs_counters_are_invariant(&blocks);
    // Leave the process default as other code expects it.
    set_global(Parallelism::new(0));
}

/// Payload-aware sharding: a stream whose transaction lengths (and thus
/// TID-list payloads) are heavily skewed must still count bit-identically
/// at 1/2/8 threads, and the skew must actually move the weighted split
/// points away from the uniform ones (so the invariant above genuinely
/// exercises payload-proportional boundaries, not equal-count ones).
fn skewed_payload_counting_is_invariant() {
    use demon::types::parallel::{split_points, weighted_split_points};

    // Block 1: a few huge transactions. Blocks 2-4: many tiny ones.
    let mut tid = 1u64;
    let mut blocks = Vec::new();
    let huge: Vec<Transaction> = (0..20)
        .map(|i| {
            let items: Vec<_> = (0..N_ITEMS)
                .filter(|x| (x + i) % 2 == 0)
                .map(demon::types::Item)
                .collect();
            let tx = Transaction::new(Tid(tid), items);
            tid += 1;
            tx
        })
        .collect();
    blocks.push(Block::new(BlockId(1), huge));
    for id in 2..=4u64 {
        let tiny: Vec<Transaction> = (0..200)
            .map(|i| {
                let items: Vec<_> = [(i as u32 + id as u32) % N_ITEMS, (i as u32 * 7 + 1) % N_ITEMS]
                    .into_iter()
                    .collect::<std::collections::BTreeSet<_>>()
                    .into_iter()
                    .map(demon::types::Item)
                    .collect();
                let tx = Transaction::new(Tid(tid), items);
                tid += 1;
                tx
            })
            .collect();
        blocks.push(Block::new(BlockId(id), tiny));
    }

    // The per-transaction weights PT-Scan shards by: hugely skewed, so
    // the weighted boundaries must differ from the uniform ones.
    let weights: Vec<u64> = blocks
        .iter()
        .flat_map(|b| b.records().iter().map(|tx| tx.len() as u64 + 1))
        .collect();
    for shards in [2usize, 8] {
        let weighted = weighted_split_points(&weights, shards);
        let uniform = split_points(weights.len(), shards);
        assert_ne!(
            weighted, uniform,
            "skewed stream should move {shards}-shard split points"
        );
        assert_eq!(weighted.first(), Some(&0));
        assert_eq!(weighted.last(), Some(&weights.len()));
    }

    let mut store = TxStore::new(N_ITEMS);
    let mut ids = Vec::new();
    for b in &blocks {
        ids.push(b.id());
        store.add_block(b.clone());
    }
    let model = FrequentItemsets::mine_from(&store, &ids, k(0.02)).unwrap();
    let pairs = model.frequent_pairs_by_support();
    for &id in &ids {
        store.materialize_pairs(id, &pairs, None);
    }
    let mut candidates: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .cloned()
        .collect();
    candidates.sort();
    assert!(candidates.len() >= 10, "workload too small to be meaningful");
    for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
        let reference =
            count_supports_with(kind, &store, &ids, &candidates, Parallelism::serial());
        for &t in &THREADS[1..] {
            let r = count_supports_with(kind, &store, &ids, &candidates, Parallelism::new(t));
            assert_eq!(
                reference,
                r,
                "{} diverged at {t} threads on skewed payload",
                kind.name()
            );
        }
    }
}

/// Incremental DBSCAN over a sliding window — the maintained structure
/// and the served summary — is byte-identical at every thread count.
/// Maintenance is sequential by construction; this pins that no future
/// parallelization sneaks nondeterminism into the density model class.
fn dbscan_is_invariant() {
    use demon::clustering::{DbscanParams, WindowedDbscan};
    use demon::datagen::{DensityDriftGen, ShapeParams};

    let run = |threads: usize| -> (String, String) {
        set_global(Parallelism::new(threads));
        let mut gen = DensityDriftGen::switch_once(ShapeParams::new(4.0, 0.1), 41, 2, 4);
        let mut model = WindowedDbscan::new(DbscanParams::new(2, 0.9, 4));
        for _ in 0..4 {
            let block = gen.next_block(100);
            model.absorb_block(block.id(), block.records());
            while model.covered_blocks().len() > 2 {
                let oldest = model.covered_blocks()[0];
                model.shed_block(oldest);
            }
        }
        (
            serde_json::to_string(model.structure()).unwrap(),
            serde_json::to_string(&model.summary()).unwrap(),
        )
    };
    let reference = run(THREADS[0]);
    for &t in &THREADS[1..] {
        let got = run(t);
        assert_eq!(reference.0, got.0, "dbscan structure diverged at {t} threads");
        assert_eq!(reference.1, got.1, "dbscan summary diverged at {t} threads");
    }
}

/// Every obs counter totals the same at any thread count. (Histograms
/// deliberately hold the thread-dependent quantities — shard sizes,
/// region/span wall times — and are excluded from this invariant.)
fn obs_counters_are_invariant(blocks: &[TxBlock]) {
    use demon::types::obs;
    let run = |threads: usize| -> Vec<(&'static str, u64)> {
        set_global(Parallelism::new(threads));
        obs::reset();
        obs::enable();
        // A representative slice of every instrumented subsystem.
        let mut store = TxStore::new(N_ITEMS);
        let mut ids = Vec::new();
        for b in blocks {
            ids.push(b.id());
            store.add_block(b.clone());
        }
        let model = FrequentItemsets::mine_from(&store, &ids, k(0.02)).unwrap();
        let mut candidates: Vec<ItemSet> = model
            .border()
            .keys()
            .filter(|s| s.len() >= 2)
            .cloned()
            .collect();
        candidates.sort();
        for kind in [CounterKind::PtScan, CounterKind::EcutPlus] {
            let _ =
                count_supports_with(kind, &store, &ids, &candidates, Parallelism::new(threads));
        }
        let maintainer = ItemsetMaintainer::new(N_ITEMS, k(0.02), CounterKind::Ecut);
        let mut gemm = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_parallelism(Parallelism::new(threads));
        for b in blocks {
            gemm.add_block(b.clone()).unwrap();
        }
        let _ = bootstrap_significance_with(
            &blocks[0],
            &blocks[1],
            N_ITEMS,
            k(0.05),
            8,
            3,
            Parallelism::new(threads),
        );
        obs::disable();
        let counters = obs::snapshot().counters;
        obs::reset();
        counters
    };
    let reference = run(THREADS[0]);
    assert!(
        reference.iter().any(|&(_, v)| v > 0),
        "recorder captured nothing"
    );
    for &t in &THREADS[1..] {
        let got = run(t);
        assert_eq!(reference, got, "obs counters diverged at {t} threads");
    }
}

/// Every counting backend returns the same `CountResult` (counts AND cost
/// accounting) at every thread count.
fn counting_is_invariant(blocks: &[TxBlock]) {
    let mut store = TxStore::new(N_ITEMS);
    let mut ids = Vec::new();
    for b in blocks {
        ids.push(b.id());
        store.add_block(b.clone());
    }
    let model = FrequentItemsets::mine_from(&store, &ids, k(0.02)).unwrap();
    let pairs = model.frequent_pairs_by_support();
    for &id in &ids {
        store.materialize_pairs(id, &pairs, None);
    }
    let mut candidates: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .cloned()
        .collect();
    candidates.sort();
    assert!(candidates.len() >= 10, "workload too small to be meaningful");

    for kind in [
        CounterKind::PtScan,
        CounterKind::Ecut,
        CounterKind::EcutPlus,
        CounterKind::Adaptive,
    ] {
        let reference =
            count_supports_with(kind, &store, &ids, &candidates, Parallelism::serial());
        for &t in &THREADS[1..] {
            let r = count_supports_with(kind, &store, &ids, &candidates, Parallelism::new(t));
            assert_eq!(reference, r, "{} diverged at {t} threads", kind.name());
        }
    }
}

/// GEMM's maintained models — current, every future-window slot, and the
/// bytes shelved to disk — are identical at every thread count.
fn gemm_shelf_is_invariant(blocks: &[TxBlock]) {
    type ShelfRun = (String, Vec<String>, Vec<(String, Vec<u8>)>);
    let run = |threads: usize| -> ShelfRun {
        set_global(Parallelism::new(threads));
        let dir = std::env::temp_dir().join(format!("demon_determinism_shelf_{threads}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let maintainer = ItemsetMaintainer::new(N_ITEMS, k(0.02), CounterKind::Ecut);
        let mut gemm = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_parallelism(Parallelism::new(threads))
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for b in blocks {
            gemm.add_block(b.clone()).unwrap();
        }
        let current = serde_json::to_string(gemm.current_model().unwrap()).unwrap();
        let futures: Vec<String> = gemm
            .slot_starts()
            .into_iter()
            .map(|s| serde_json::to_string(&gemm.future_model(s).unwrap()).unwrap())
            .collect();
        let mut shelf: Vec<(String, Vec<u8>)> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        shelf.sort();
        let _ = std::fs::remove_dir_all(&dir);
        (current, futures, shelf)
    };

    let reference = run(THREADS[0]);
    for &t in &THREADS[1..] {
        let got = run(t);
        assert_eq!(reference.0, got.0, "current model diverged at {t} threads");
        assert_eq!(reference.1, got.1, "future models diverged at {t} threads");
        assert_eq!(
            reference.2, got.2,
            "shelf file contents diverged at {t} threads"
        );
    }
}

/// Bootstrap deviation and significance are bit-identical floats at every
/// thread count.
fn focus_scores_are_invariant(blocks: &[TxBlock]) {
    let (a, b) = (&blocks[0], &blocks[1]);
    let reference =
        bootstrap_significance_with(a, b, N_ITEMS, k(0.05), 16, 77, Parallelism::serial());
    for &t in &THREADS[1..] {
        let got =
            bootstrap_significance_with(a, b, N_ITEMS, k(0.05), 16, 77, Parallelism::new(t));
        assert_eq!(
            reference.0.to_bits(),
            got.0.to_bits(),
            "deviation diverged at {t} threads"
        );
        assert_eq!(
            reference.1.to_bits(),
            got.1.to_bits(),
            "significance diverged at {t} threads"
        );
    }
}

/// The compact-sequence miner — whose oracle batches pairwise deviations
/// through the parallel layer at the process default — produces the same
/// deviation matrix and sequences at every thread count.
fn patterns_are_invariant(blocks: &[TxBlock]) {
    let run = |threads: usize| -> (Vec<u64>, Vec<Vec<BlockId>>) {
        set_global(Parallelism::new(threads));
        let oracle =
            ItemsetSimilarity::new(N_ITEMS, k(0.05), SimilarityConfig::Threshold { alpha: 0.3 });
        let mut miner = CompactSequenceMiner::new(oracle);
        for b in blocks {
            miner.add_block(b.clone());
        }
        let n = miner.n_blocks();
        let mut devs = Vec::new();
        for i in 0..n {
            for j in 0..i {
                devs.push(miner.deviation(i, j).unwrap().to_bits());
            }
        }
        (devs, miner.maximal_sequences())
    };
    let reference = run(THREADS[0]);
    for &t in &THREADS[1..] {
        let got = run(t);
        assert_eq!(
            reference.0, got.0,
            "deviation matrix diverged at {t} threads"
        );
        assert_eq!(reference.1, got.1, "sequences diverged at {t} threads");
    }
}

/// BIRCH phase 2 (parallel assignment scan) and block labeling are
/// identical at every thread count.
fn clustering_is_invariant() {
    use demon::clustering::{Birch, BirchParams};
    use demon::types::{Point, PointBlock};
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(5);
    let points: Vec<Point> = (0..400)
        .map(|i| {
            let c = f64::from(i % 3) * 25.0;
            Point::new(vec![
                c + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ])
        })
        .collect();
    let block = PointBlock::new(BlockId(1), points.clone());
    let mut params = BirchParams::new(2, 3);
    params.tree.threshold2 = 1.0;

    let run = |threads: usize| -> (String, Vec<usize>) {
        set_global(Parallelism::new(threads));
        let (model, _) = Birch::new(params).cluster_points(&points);
        let labels = model.label_block(&block);
        (serde_json::to_string(&model).unwrap(), labels)
    };
    let reference = run(THREADS[0]);
    for &t in &THREADS[1..] {
        let got = run(t);
        assert_eq!(reference.0, got.0, "cluster model diverged at {t} threads");
        assert_eq!(reference.1, got.1, "labels diverged at {t} threads");
    }
}
