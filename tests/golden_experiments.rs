//! Golden-experiment regression suite: fixed-seed reproductions of the
//! paper's Section-6 experiment shapes, each checked against a golden
//! file under `tests/golden/`.
//!
//! Every test asserts the *cross-agreement* property in code (the
//! experiment's point), then pins the concrete result to a golden file so
//! any behavioural drift — a changed count, a moved centroid, a different
//! detected sequence — fails loudly with a line diff.
//!
//! Regenerate goldens after an intentional change with
//!
//! ```text
//! DEMON_BLESS=1 cargo test --test golden_experiments
//! ```
//!
//! and review the resulting `tests/golden/*.json` diff like any other
//! code change.

use demon::clustering::{Birch, BirchParams, BirchPlus, DbscanParams};
use demon::core::bss::{BlockSelector, WiBss, WrBss};
use demon::core::{Gemm, ItemsetMaintainer};
use demon::datagen::{
    ClusterDataGen, ClusterParams, DensityDriftGen, DriftingQuestGen, QuestGen, QuestParams,
    ShapeParams,
};
use demon::focus::{
    ClusterSimilarity, CompactSequenceMiner, DbscanSimilarity, ItemsetSimilarity,
    SimilarityConfig, SimilarityOracle,
};
use demon::itemsets::{count_supports_with, CounterKind, FrequentItemsets, TxStore};
use demon::store::StoreConfig;
use demon::types::{
    Block, BlockId, ItemSet, MinSupport, Parallelism, Point, PointBlock, Tid, Transaction,
    TxBlock,
};
use serde_json::{json, Value};
use std::path::PathBuf;

// ---------------------------------------------------------------- harness

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compares `actual` against `tests/golden/<name>.json`. With
/// `DEMON_BLESS=1` the golden is (re)written instead. On divergence the
/// test fails with a per-line diff of the pretty-printed JSON.
fn golden_check(name: &str, actual: &Value) {
    let path = golden_path(name);
    let rendered = serde_json::to_string_pretty(actual).unwrap();
    if std::env::var("DEMON_BLESS").as_deref() == Ok("1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{rendered}\n")).unwrap();
        return;
    }
    let expected = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => panic!(
            "missing golden {}: {e}\n\
             run `DEMON_BLESS=1 cargo test --test golden_experiments` to create it",
            path.display()
        ),
    };
    let expected = expected.trim_end();
    if expected == rendered {
        return;
    }
    let mut diff = String::new();
    let (exp, act): (Vec<&str>, Vec<&str>) =
        (expected.lines().collect(), rendered.lines().collect());
    for i in 0..exp.len().max(act.len()) {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {}
            (e, a) => {
                diff.push_str(&format!(
                    "  line {:>4}: golden {:?}\n             actual {:?}\n",
                    i + 1,
                    e.unwrap_or(&"<absent>"),
                    a.unwrap_or(&"<absent>")
                ));
            }
        }
    }
    panic!(
        "golden mismatch for {name} ({}):\n{diff}\
         if the change is intentional, re-bless with \
         `DEMON_BLESS=1 cargo test --test golden_experiments`",
        path.display()
    );
}

/// Fixed-seed Quest stream shared by the itemset experiments.
fn quest_stream(n_blocks: u64, per_block: usize, seed: u64, n_items: u32) -> Vec<TxBlock> {
    let params = QuestParams {
        n_transactions: 0,
        avg_tx_len: 6.0,
        n_items,
        n_patterns: 30,
        avg_pattern_len: 3.0,
        ..QuestParams::default()
    };
    let mut gen = QuestGen::new(params, seed);
    let mut tid = 1u64;
    (1..=n_blocks)
        .map(|id| {
            let txs: Vec<Transaction> = gen
                .take_transactions(per_block)
                .into_iter()
                .map(|t| {
                    let tx = Transaction::from_sorted(Tid(tid), t.items().to_vec());
                    tid += 1;
                    tx
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect()
}

fn k(v: f64) -> MinSupport {
    MinSupport::new(v).unwrap()
}

/// CI runs this suite twice: with `DEMON_OBS=1` every experiment executes
/// with the recorder enabled, checking that instrumentation never perturbs
/// results or goldens.
fn maybe_enable_recorder() {
    if std::env::var("DEMON_OBS").as_deref() == Ok("1") {
        demon::types::obs::enable();
    }
}

/// Renders the most frequent itemsets as stable `"itemset count"` strings.
fn top_sets(model: &FrequentItemsets, n: usize) -> Vec<String> {
    let mut sorted = model.frequent_sorted();
    sorted.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    sorted
        .iter()
        .take(n)
        .map(|(s, c)| format!("{s} {c}"))
        .collect()
}

// ------------------------------------------------------------ experiments

/// §6.1 shape: every counting backend (PT-Scan, ECUT, ECUT+) agrees on
/// the support of every negative-border candidate, and the counts
/// themselves are pinned.
#[test]
fn counting_backends_agree_on_border_counts() {
    maybe_enable_recorder();
    counting_border_experiment(&StoreConfig::InMemory);
}

/// The same §6.1 experiment under a tight memory budget — every block
/// spilled to disk and faulted back through the storage engine — must
/// match the *same* blessed golden byte-for-byte.
#[test]
fn counting_border_matches_golden_under_tight_budget() {
    maybe_enable_recorder();
    let dir = std::env::temp_dir().join(format!(
        "demon-golden-budget-counting-{}",
        std::process::id()
    ));
    counting_border_experiment(&StoreConfig::budget(dir, 4096));
}

fn counting_border_experiment(config: &StoreConfig) {
    let n_items = 80;
    let blocks = quest_stream(3, 150, 11, n_items);
    let mut store = TxStore::with_config(n_items, config).unwrap();
    let mut ids = Vec::new();
    for b in &blocks {
        ids.push(b.id());
        store.add_block(b.clone());
    }
    let model = FrequentItemsets::mine_from(&store, &ids, k(0.05)).unwrap();
    let pairs = model.frequent_pairs_by_support();
    for &id in &ids {
        store.materialize_pairs(id, &pairs, None);
    }
    let mut candidates: Vec<ItemSet> = model
        .border()
        .keys()
        .filter(|s| s.len() >= 2)
        .cloned()
        .collect();
    candidates.sort();
    assert!(candidates.len() >= 10, "workload too small to be meaningful");

    let reference = count_supports_with(
        CounterKind::PtScan,
        &store,
        &ids,
        &candidates,
        Parallelism::serial(),
    );
    for kind in [CounterKind::Ecut, CounterKind::EcutPlus] {
        let r = count_supports_with(kind, &store, &ids, &candidates, Parallelism::serial());
        assert_eq!(
            reference.counts,
            r.counts,
            "{} disagrees with PT-Scan",
            kind.name()
        );
    }

    let counts: Vec<String> = candidates
        .iter()
        .zip(&reference.counts)
        .map(|(s, c)| format!("{s} {c}"))
        .collect();
    golden_check(
        "counting_border",
        &json!({
            "n_items": n_items,
            "minsup": "0.05",
            "n_candidates": candidates.len(),
            "counts": counts,
        }),
    );
}

/// §4 shape: after streaming the whole block sequence, GEMM's maintained
/// most-recent-window model equals mining the selected blocks from
/// scratch — under a window-independent and a window-relative BSS.
#[test]
fn gemm_window_model_matches_from_scratch() {
    maybe_enable_recorder();
    gemm_window_experiment(&StoreConfig::InMemory);
}

/// The §4 GEMM experiment with the maintainer's block store under a
/// tight memory budget — identical golden as the unbounded run.
#[test]
fn gemm_window_matches_golden_under_tight_budget() {
    maybe_enable_recorder();
    let dir = std::env::temp_dir().join(format!(
        "demon-golden-budget-gemm-{}",
        std::process::id()
    ));
    gemm_window_experiment(&StoreConfig::budget(dir, 4096));
}

fn gemm_window_experiment(config: &StoreConfig) {
    let n_items = 80;
    let blocks = quest_stream(6, 150, 29, n_items);
    let selectors: [(&str, BlockSelector); 2] = [
        (
            "wi_periodic_10",
            BlockSelector::WindowIndependent(WiBss::Periodic {
                pattern: vec![true, false],
            }),
        ),
        (
            "wr_101",
            BlockSelector::WindowRelative(WrBss::new(vec![true, false, true])),
        ),
    ];

    let mut sections = serde_json::Map::new();
    for (label, selector) in selectors {
        let maintainer =
            ItemsetMaintainer::with_store_config(n_items, k(0.05), CounterKind::Ecut, config)
                .unwrap();
        let mut gemm = Gemm::new(maintainer, 3, selector).unwrap();
        for b in &blocks {
            gemm.add_block(b.clone()).unwrap();
        }
        let maintained = gemm.current_model().unwrap();
        let included = maintained.included_blocks().to_vec();
        let selected: Vec<&TxBlock> = blocks
            .iter()
            .filter(|b| included.contains(&b.id()))
            .collect();
        let scratch = FrequentItemsets::mine_blocks(&selected, n_items, k(0.05));
        assert_eq!(
            maintained.frequent_sorted(),
            scratch.frequent_sorted(),
            "{label}: maintained window model diverges from a from-scratch mine"
        );
        assert_eq!(maintained.n_transactions(), scratch.n_transactions());

        sections.insert(
            label.to_string(),
            json!({
                "included_blocks": included.iter().map(|b| b.0).collect::<Vec<u64>>(),
                "n_transactions": maintained.n_transactions(),
                "n_frequent": maintained.n_frequent(),
                "top": top_sets(maintained, 10),
            }),
        );
    }
    golden_check("gemm_window", &Value::Object(sections));
}

/// §6.2 shape: BIRCH+ (CF-tree kept alive across blocks) lands on the
/// same cluster structure as re-clustering everything from scratch.
#[test]
fn birch_plus_matches_full_recluster() {
    maybe_enable_recorder();
    let params = ClusterParams {
        n_points: 900,
        k: 3,
        dim: 2,
        noise_fraction: 0.0,
        sigma: 1.0,
        domain: 100.0,
    };
    let mut gen = ClusterDataGen::new(params, 17);
    let blocks: Vec<PointBlock> = (1..=3u64)
        .map(|id| PointBlock::new(BlockId(id), gen.take_points(300)))
        .collect();

    let mut bp = BirchParams::new(2, 3);
    bp.tree.threshold2 = 1.0;

    let mut plus = BirchPlus::new(bp);
    for b in &blocks {
        plus.absorb_block(b);
    }
    let (incremental, _) = plus.model();

    let refs: Vec<&PointBlock> = blocks.iter().collect();
    let (scratch, _) = Birch::new(bp).cluster_blocks(&refs);

    // Same number of clusters, and centroids pairwise within a small
    // tolerance of each other (tree build order differs, so bit-equality
    // is not expected — closeness is the paper's claim).
    assert_eq!(incremental.k(), scratch.k());
    let mut inc = centroid_strings(incremental.centroids());
    let mut scr = centroid_strings(scratch.centroids());
    inc.sort();
    scr.sort();
    for (a, b) in incremental_pairs(&incremental.centroids(), &scratch.centroids()) {
        assert!(
            a.dist2(&b) < 1.0,
            "BIRCH+ centroid {a:?} has no close from-scratch counterpart (nearest {b:?})"
        );
    }

    golden_check(
        "birch_plus",
        &json!({
            "k": incremental.k(),
            "n_points": incremental.n_points(),
            "incremental_centroids": inc,
            "scratch_centroids": scr,
        }),
    );
}

/// Rounds centroids into stable strings for the golden file.
fn centroid_strings(centroids: Vec<Point>) -> Vec<String> {
    centroids
        .iter()
        .map(|c| {
            let coords: Vec<String> =
                c.coords().iter().map(|x| format!("{x:.4}")).collect();
            format!("({})", coords.join(", "))
        })
        .collect()
}

/// Pairs each incremental centroid with its nearest from-scratch one.
fn incremental_pairs(inc: &[Point], scratch: &[Point]) -> Vec<(Point, Point)> {
    inc.iter()
        .map(|a| {
            let nearest = scratch
                .iter()
                .min_by(|x, y| a.dist2(x).total_cmp(&a.dist2(y)))
                .expect("scratch clustering is non-empty");
            (a.clone(), nearest.clone())
        })
        .collect()
}

/// §6.3 shape: FOCUS compact sequences split exactly at a planted drift
/// point — blocks before and after the regime switch form separate
/// maximal sequences.
#[test]
fn focus_detects_planted_drift() {
    maybe_enable_recorder();
    let n_items = 60;
    let params = QuestParams {
        n_transactions: 0,
        avg_tx_len: 6.0,
        n_items,
        n_patterns: 20,
        avg_pattern_len: 3.0,
        ..QuestParams::default()
    };
    let switch_at = 4;
    let total = 8;
    let mut gen = DriftingQuestGen::switch_once(params, 41, switch_at, total);
    let blocks: Vec<TxBlock> = (0..total).map(|_| gen.next_block(150)).collect();

    let oracle =
        ItemsetSimilarity::new(n_items, k(0.05), SimilarityConfig::Threshold { alpha: 0.35 });
    let mut miner = CompactSequenceMiner::new(oracle);
    for b in &blocks {
        miner.add_block(b.clone());
    }
    let sequences = miner.maximal_sequences();

    // No maximal sequence may straddle the planted switch.
    let boundary = BlockId(switch_at as u64); // last block of regime 0
    for seq in &sequences {
        let crosses = seq.iter().any(|id| *id <= boundary) && seq.iter().any(|id| *id > boundary);
        assert!(
            !crosses,
            "sequence {seq:?} straddles the planted drift at block {boundary}"
        );
    }
    // Each regime is internally compact enough to produce a multi-block run.
    assert!(
        sequences.iter().any(|s| s.len() >= 2 && s[0] <= boundary),
        "no multi-block sequence found in the pre-drift regime: {sequences:?}"
    );
    assert!(
        sequences.iter().any(|s| s.len() >= 2 && s[0] > boundary),
        "no multi-block sequence found in the post-drift regime: {sequences:?}"
    );

    let rendered: Vec<Vec<u64>> = sequences
        .iter()
        .map(|s| s.iter().map(|id| id.0).collect())
        .collect();
    golden_check(
        "focus_drift",
        &json!({
            "switch_after_block": switch_at,
            "n_blocks": total,
            "sequences": rendered,
        }),
    );
}

/// Density drift the centroid-based oracle cannot see: moons and rings
/// share centroid and extent, so BIRCH's FOCUS deviation stays under
/// threshold across the planted switch while the DBSCAN
/// core-reachability deviation flags exactly the drift block. This is
/// the reason the density model class exists.
#[test]
fn dbscan_focus_flags_density_drift_that_birch_misses() {
    maybe_enable_recorder();
    let alpha = 0.25;
    let switch_at = 3u64;
    let total = 6;
    let mut gen =
        DensityDriftGen::switch_once(ShapeParams::new(8.0, 0.1), 53, switch_at as usize, total);
    let blocks: Vec<PointBlock> = (0..total).map(|_| gen.next_block(150)).collect();

    let mut density = DbscanSimilarity::new(DbscanParams::new(2, 1.0, 4), alpha);
    let mut bp = BirchParams::new(2, 2);
    bp.tree.threshold2 = 1.0;
    let mut birch = ClusterSimilarity::new(bp, alpha);

    // Consecutive-block deviations under both oracles. Blocks 1..=3 are
    // moons, 4..=6 rings: only the (3, 4) pair crosses the switch.
    let mut rows = Vec::new();
    for w in blocks.windows(2) {
        let (_, d_density) = density.similar(&w[0], &w[1]);
        let (_, d_birch) = birch.similar(&w[0], &w[1]);
        rows.push((w[1].id(), d_density, d_birch));
    }
    for &(id, d_density, d_birch) in &rows {
        if id == BlockId(switch_at + 1) {
            assert!(
                d_density > alpha,
                "dbscan deviation {d_density:.3} fails to flag the drift block {id}"
            );
            assert!(
                d_birch < alpha,
                "birch deviation {d_birch:.3} also flags block {id} — the drift \
                 is not centroid-invisible and the experiment proves nothing"
            );
        } else {
            assert!(
                d_density < alpha,
                "dbscan deviation {d_density:.3} false-positives within a regime at block {id}"
            );
        }
    }

    let rendered: Vec<Value> = rows
        .iter()
        .map(|(id, d_density, d_birch)| {
            json!({
                "block": id.0,
                "dbscan_deviation": format!("{d_density:.4}"),
                "birch_deviation": format!("{d_birch:.4}"),
                "crosses_switch": id.0 == switch_at + 1,
            })
        })
        .collect();
    golden_check(
        "dbscan_density_drift",
        &json!({
            "switch_after_block": switch_at,
            "n_blocks": total,
            "alpha": format!("{alpha:.2}"),
            "consecutive_deviations": rendered,
        }),
    );
}
