//! End-to-end test of the Figure-11 composition: one web-trace stream
//! feeding model maintenance (GEMM over the most recent window) and
//! pattern detection (compact sequences) simultaneously.

use demon::core::bss::BlockSelector;
use demon::core::engine::DataSpan;
use demon::core::monitor::DemonMonitor;
use demon::core::ItemsetMaintainer;
use demon::datagen::webtrace::{self, WebTraceConfig, WebTraceGen};
use demon::focus::{ItemsetSimilarity, SimilarityConfig};
use demon::itemsets::{derive_rules, CounterKind};
use demon::types::{BlockId, MinSupport, Timestamp};

#[test]
fn monitor_runs_the_full_demonic_view_over_the_trace() {
    let mut gen = WebTraceGen::new(WebTraceConfig {
        days: 10,
        base_rate: 200.0,
        ..WebTraceConfig::default()
    });
    let requests = gen.generate();
    // Daily blocks aligned to midnight of day 1.
    let blocks = webtrace::segment_into_blocks(&requests, 24, Timestamp::from_day_hour(1, 0));
    assert_eq!(blocks.len(), 9);

    let minsup = MinSupport::new(0.01).unwrap();
    let maintainer = ItemsetMaintainer::new(webtrace::N_ITEMS, minsup, CounterKind::EcutPlus);
    let oracle = ItemsetSimilarity::new(
        webtrace::N_ITEMS,
        minsup,
        SimilarityConfig::Threshold { alpha: 0.12 },
    );
    let mut monitor = DemonMonitor::new(
        maintainer,
        DataSpan::MostRecent {
            w: 5,
            selector: BlockSelector::all(),
        },
        oracle,
        None,
    )
    .unwrap();

    let mut anomaly_flagged = false;
    for block in blocks {
        let day = block.interval().unwrap().start.day();
        let stats = monitor.add_block(block).unwrap();
        assert!(stats.maintenance.absorbed);
        if day == webtrace::ANOMALY_DAY {
            anomaly_flagged = stats.patterns.similar_pairs == 0;
        }
    }
    assert!(anomaly_flagged, "the anomalous Monday matched earlier blocks");

    // Model side: the window model covers the last 5 blocks and yields
    // usable association rules.
    let model = monitor.model().unwrap();
    assert_eq!(model.included_blocks().len(), 5);
    assert!(model.n_frequent() > 0);
    let rules = derive_rules(model, 0.5);
    assert!(!rules.is_empty(), "the trace's type→bucket structure yields rules");

    // Pattern side: a working-day sequence exists and excludes the anomaly.
    let seqs = monitor.sequences();
    let longest = seqs.iter().max_by_key(|s| s.len()).expect("sequences exist");
    assert!(longest.len() >= 4, "{seqs:?}");
    // Block ids are 1-based over days 1..=9; the anomaly day 7 is block 7.
    assert!(
        !longest.contains(&BlockId(webtrace::ANOMALY_DAY)),
        "anomalous block inside the dominant pattern: {longest:?}"
    );
}
