//! Differential property test of incremental DBSCAN: the maintained
//! structure after any sequence of block insertions and MRW-style block
//! retirements must equal a from-scratch batch DBSCAN over the points
//! currently alive — identical cluster count, identical core-point set,
//! and identical labels up to cluster renaming (border points may
//! legitimately attach to any adjacent cluster; the checker accounts
//! for that). The paper's §3.2.4 argues incremental DBSCAN is the
//! cheap path for evolving data; this pins down that cheap also means
//! *correct*, at every stream prefix, not just at the end.

use demon::clustering::{DbscanParams, WindowedDbscan};
use demon::datagen::{DensityDriftGen, ShapeParams};
use demon::types::parallel::set_global;
use demon::types::{BlockId, Parallelism, Point};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// Random 2-D point blocks on a half-unit lattice. Coarse coordinates
/// deliberately force duplicate points, dense ε-neighborhoods and
/// border ambiguity — the cases where incremental label maintenance
/// (core promotion/demotion, region regrowing after removal) can go
/// subtly wrong.
fn blocks_strategy(max_blocks: usize) -> impl Strategy<Value = Vec<Vec<Point>>> {
    prop::collection::vec(
        prop::collection::vec((-6i32..=6, -6i32..=6), 0..14),
        1..=max_blocks,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|pts| {
                pts.into_iter()
                    .map(|(x, y)| Point::new(vec![f64::from(x) * 0.5, f64::from(y) * 0.5]))
                    .collect()
            })
            .collect()
    })
}

/// ε spans "barely adjacent lattice cells" to "diagonal reach"; min_pts
/// spans trivially-core to hard-to-core.
fn params_strategy() -> impl Strategy<Value = DbscanParams> {
    (0usize..3, 2usize..=4).prop_map(|(eps_idx, min_pts)| {
        let eps = [0.6f64, 0.75, 1.1][eps_idx];
        DbscanParams::new(2, eps, min_pts)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Insert-only streams: after every absorbed block the incremental
    /// structure equals batch DBSCAN over everything seen so far.
    #[test]
    fn insert_stream_matches_batch_at_every_prefix(
        blocks in blocks_strategy(5),
        params in params_strategy(),
    ) {
        let mut w = WindowedDbscan::new(params);
        for (i, pts) in blocks.iter().enumerate() {
            w.absorb_block(BlockId(i as u64 + 1), pts);
            if let Err(e) = w.structure().verify_against_batch() {
                prop_assert!(false, "prefix {} diverged from batch: {e}", i + 1);
            }
        }
    }

    /// Sliding-window streams: the window retires old blocks by *deleting
    /// their points* (the first deletion-based model class), so this
    /// exercises remove-heavy schedules — core demotion, cluster splits,
    /// region regrowing — and demands batch equality after every single
    /// absorb and every single shed.
    #[test]
    fn sliding_window_matches_batch_at_every_prefix(
        blocks in blocks_strategy(6),
        params in params_strategy(),
        window in 1usize..=3,
    ) {
        let mut w = WindowedDbscan::new(params);
        for (i, pts) in blocks.iter().enumerate() {
            w.absorb_block(BlockId(i as u64 + 1), pts);
            if let Err(e) = w.structure().verify_against_batch() {
                prop_assert!(false, "absorb of block {} diverged: {e}", i + 1);
            }
            while w.covered_blocks().len() > window {
                let oldest = w.covered_blocks()[0];
                w.shed_block(oldest);
                if let Err(e) = w.structure().verify_against_batch() {
                    prop_assert!(false, "shed of block {oldest:?} diverged: {e}");
                }
            }
            let covered = w.covered_blocks();
            prop_assert!(covered.len() <= window);
            prop_assert_eq!(covered.last(), Some(&BlockId(i as u64 + 1)));
        }
    }

    /// Shedding everything leaves a genuinely empty structure — no stale
    /// grid cells, no surviving cores, no phantom clusters.
    #[test]
    fn shedding_all_blocks_empties_the_model(
        blocks in blocks_strategy(4),
        params in params_strategy(),
    ) {
        let mut w = WindowedDbscan::new(params);
        for (i, pts) in blocks.iter().enumerate() {
            w.absorb_block(BlockId(i as u64 + 1), pts);
        }
        for id in w.covered_blocks() {
            w.shed_block(id);
            if let Err(e) = w.structure().verify_against_batch() {
                prop_assert!(false, "shed of block {id:?} diverged: {e}");
            }
        }
        let summary = w.summary();
        prop_assert_eq!(summary.n_points, 0);
        prop_assert_eq!(summary.n_clusters, 0);
        prop_assert_eq!(w.structure().index_entries(), 0);
    }
}

/// The maintained model — raw serialized structure AND rendered summary
/// (what `demon-serve` answers over the wire) — is byte-identical at 1,
/// 2 and 8 threads over a sliding window of planted density drift.
/// DBSCAN maintenance is sequential by design, so this pins the
/// determinism contract the serving stack relies on.
#[test]
fn windowed_model_bytes_are_thread_invariant() {
    let run = |threads: usize| -> (String, String) {
        set_global(Parallelism::new(threads));
        let mut gen = DensityDriftGen::switch_once(ShapeParams::new(4.0, 0.1), 77, 3, 5);
        let mut w = WindowedDbscan::new(DbscanParams::new(2, 0.9, 4));
        for _ in 0..5 {
            let block = gen.next_block(120);
            w.absorb_block(block.id(), block.records());
            while w.covered_blocks().len() > 3 {
                let oldest = w.covered_blocks()[0];
                w.shed_block(oldest);
            }
        }
        w.structure().check_against_batch();
        (
            serde_json::to_string(w.structure()).unwrap(),
            serde_json::to_string(&w.summary()).unwrap(),
        )
    };
    let reference = run(THREADS[0]);
    assert!(reference.1.contains("\"n_clusters\""));
    for &t in &THREADS[1..] {
        let got = run(t);
        assert_eq!(reference.0, got.0, "dbscan model bytes diverged at {t} threads");
        assert_eq!(reference.1, got.1, "dbscan summary diverged at {t} threads");
    }
    set_global(Parallelism::new(0));
}
