//! Concurrency soak of the `demon-serve` daemon: 16 client threads
//! hammer one in-process server with a fixed interleaved script —
//! sequential ingest, model/stats queries, deliberate duplicate
//! replays, a mid-soak snapshot — under a wall-clock watchdog, so a
//! deadlock fails the test instead of hanging the suite. A second,
//! 64-thread soak drives the partitioned runtime (`shards = 4`) with
//! the same mix and additionally pins the mid-soak snapshot to be
//! byte-identical to a 1-shard daemon's snapshot of the same prefix.

use demon::itemsets::persist::load_store_configured;
use demon::itemsets::persist::RecoveryPolicy;
use demon::serve::{Client, ServeConfig, Server};
use demon::store::StoreConfig;
use demon::types::{Block, BlockId, Item, MinSupport, Tid, Transaction, TxBlock};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

const N_ITEMS: u32 = 48;
const N_BLOCKS: u64 = 30;
const N_QUERIERS: usize = 13;
const QUERIES_EACH: usize = 40;
const ATTACKS: usize = 30;
const SNAPSHOT_AFTER: u64 = 15;

fn make_block(id: u64, tid0: u64) -> TxBlock {
    let txs = (0..20)
        .map(|i| {
            let mut items = vec![(i % 6) as u32, 6 + ((i + id as usize) % 7) as u32];
            items.sort_unstable();
            items.dedup();
            Transaction::new(
                Tid(tid0 + i as u64),
                items.into_iter().map(Item).collect(),
            )
        })
        .collect();
    Block::new(BlockId(id), txs)
}

/// Pulls the daemon's own `"blocks":N` gauge out of a stats body.
fn blocks_gauge(stats: &str) -> u64 {
    let tail = stats
        .split("\"blocks\":")
        .nth(1)
        .unwrap_or_else(|| panic!("no blocks gauge in {stats}"));
    tail.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric gauge")
}

#[test]
fn sixteen_client_soak_is_deadlock_free_and_monotone() {
    // The watchdog: the whole soak runs in a worker thread and must
    // finish well inside the timeout, or we fail loudly instead of
    // letting a deadlocked daemon hang CI.
    let (done_tx, done_rx) = mpsc::channel();
    let soak = std::thread::spawn(move || {
        run_soak();
        done_tx.send(()).ok();
    });
    done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("soak deadlocked: no completion inside 120 s");
    soak.join().expect("soak thread panicked");
}

fn run_soak() {
    let snap_dir: PathBuf = std::env::temp_dir().join(format!(
        "demon-serve-soak-snap-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&snap_dir).ok();

    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(0.1).unwrap());
    config.workers = 8;
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Block 1 goes in before any querier starts, so `query-model` is
    // never answered with "no model yet" during the soak.
    let mut seed = Client::connect(addr).expect("connect seed");
    seed.ingest(N_ITEMS, &make_block(1, 1)).expect("seed block");

    let errors = Arc::new(AtomicU64::new(0));
    let (snap_tx, snap_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        // 1 ingester: the rest of the stream, in order.
        {
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect ingester");
                let mut tid = 21u64;
                for id in 2..=N_BLOCKS {
                    if client.ingest(N_ITEMS, &make_block(id, tid)).is_err() {
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                    tid += 20;
                    if id == SNAPSHOT_AFTER {
                        snap_tx.send(()).ok();
                    }
                }
            });
        }
        // 13 queriers: interleaved model/stats reads; the daemon's block
        // gauge must be monotone non-decreasing as seen by each thread.
        for q in 0..N_QUERIERS {
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect querier");
                let mut last = 0u64;
                for i in 0..QUERIES_EACH {
                    if (i + q) % 2 == 0 {
                        if client.query_model_json().is_err() {
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    } else {
                        match client.stats_json() {
                            Ok(stats) => {
                                let blocks = blocks_gauge(&stats);
                                assert!(
                                    blocks >= last,
                                    "block gauge went backwards: {last} -> {blocks}"
                                );
                                last = blocks;
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                    }
                }
            });
        }
        // 1 attacker: replays block 1 over and over. Every attempt must
        // be the typed duplicate rejection — never a dropped connection,
        // never an accepted replay.
        {
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect attacker");
                for _ in 0..ATTACKS {
                    match client.ingest(N_ITEMS, &make_block(1, 1)) {
                        Err(e) if e.to_string().contains("duplicate block") => {}
                        other => {
                            eprintln!("attacker expected duplicate rejection, got {other:?}");
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
        // 1 snapshotter: mid-soak, while ingest is still running.
        {
            let errors = Arc::clone(&errors);
            let snap_dir = snap_dir.clone();
            scope.spawn(move || {
                snap_rx
                    .recv_timeout(Duration::from_secs(60))
                    .expect("ingester never reached the snapshot point");
                let mut client = Client::connect(addr).expect("connect snapshotter");
                match client.snapshot(snap_dir.to_str().unwrap()) {
                    Ok(blocks) => assert!(
                        blocks >= SNAPSHOT_AFTER,
                        "snapshot saw only {blocks} blocks"
                    ),
                    Err(e) => {
                        eprintln!("mid-soak snapshot failed: {e}");
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert_eq!(
        errors.load(Ordering::SeqCst),
        0,
        "protocol errors during the soak"
    );

    // The mid-soak snapshot is a consistent prefix: strictly loadable,
    // no salvage needed, at least the blocks that had been applied.
    let (snapshot, _) =
        load_store_configured(&snap_dir, RecoveryPolicy::Strict, &StoreConfig::InMemory)
            .expect("mid-soak snapshot loads under Strict");
    let n = snapshot.len() as u64;
    assert!(
        (SNAPSHOT_AFTER..=N_BLOCKS).contains(&n),
        "snapshot holds {n} blocks"
    );
    let ids = snapshot.block_ids();
    assert_eq!(ids.first(), Some(&BlockId(1)));
    assert_eq!(ids.last(), Some(&BlockId(n)), "snapshot is not a prefix");

    // Everything the soak ingested is there; graceful shutdown.
    let final_blocks = blocks_gauge(&seed.stats_json().expect("final stats"));
    assert_eq!(final_blocks, N_BLOCKS);
    seed.shutdown().expect("shutdown");
    let summary = server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    assert_eq!(summary.blocks, N_BLOCKS);
    std::fs::remove_dir_all(&snap_dir).ok();
}

/// Every file under `dir`, keyed by its path relative to `dir`.
fn dir_bytes(dir: &std::path::Path) -> std::collections::BTreeMap<String, Vec<u8>> {
    let mut out = std::collections::BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    out
}

/// 64 client threads against the partitioned runtime: 1 sequential
/// ingester, 58 queriers asserting a monotone block gauge, 4 duplicate
/// replay attackers and 1 mid-soak snapshotter, all on `shards = 4`.
/// Zero protocol errors allowed, and the mid-soak snapshot must load
/// `Strict` *and* be byte-identical to what a 1-shard daemon persists
/// for the same stream prefix.
#[test]
fn sixty_four_client_sharded_soak_is_deadlock_free_and_exact() {
    let (done_tx, done_rx) = mpsc::channel();
    let soak = std::thread::spawn(move || {
        run_sharded_soak();
        done_tx.send(()).ok();
    });
    done_rx
        .recv_timeout(Duration::from_secs(240))
        .expect("sharded soak deadlocked: no completion inside 240 s");
    soak.join().expect("sharded soak thread panicked");
}

fn run_sharded_soak() {
    const SHARDED_QUERIERS: usize = 58;
    const SHARDED_ATTACKERS: usize = 4;
    const SHARDED_QUERIES_EACH: usize = 20;

    let snap_dir: PathBuf = std::env::temp_dir().join(format!(
        "demon-serve-soak-sharded-snap-{}",
        std::process::id()
    ));
    let ref_dir: PathBuf = std::env::temp_dir().join(format!(
        "demon-serve-soak-sharded-ref-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&snap_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();

    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(0.1).unwrap());
    config.workers = 4;
    config.shards = 4;
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    let mut seed = Client::connect(addr).expect("connect seed");
    seed.ingest(N_ITEMS, &make_block(1, 1)).expect("seed block");

    let errors = Arc::new(AtomicU64::new(0));
    let (snap_tx, snap_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        // 1 ingester: the rest of the stream, in order.
        {
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect ingester");
                let mut tid = 21u64;
                for id in 2..=N_BLOCKS {
                    if client.ingest(N_ITEMS, &make_block(id, tid)).is_err() {
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                    tid += 20;
                    if id == SNAPSHOT_AFTER {
                        snap_tx.send(()).ok();
                    }
                }
            });
        }
        // 58 queriers: model/sequences/stats reads off the replicas; the
        // block gauge stays monotone per observer.
        for q in 0..SHARDED_QUERIERS {
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect querier");
                let mut last = 0u64;
                for i in 0..SHARDED_QUERIES_EACH {
                    match (i + q) % 3 {
                        0 => {
                            if client.query_model_json().is_err() {
                                errors.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        1 => {
                            if client.query_sequences().is_err() {
                                errors.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        _ => match client.stats_json() {
                            Ok(stats) => {
                                let blocks = blocks_gauge(&stats);
                                assert!(
                                    blocks >= last,
                                    "block gauge went backwards: {last} -> {blocks}"
                                );
                                last = blocks;
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::SeqCst);
                            }
                        },
                    }
                }
            });
        }
        // 4 attackers: duplicate replays of block 1, every one of which
        // must be the typed rejection.
        for _ in 0..SHARDED_ATTACKERS {
            let errors = Arc::clone(&errors);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect attacker");
                for _ in 0..ATTACKS {
                    match client.ingest(N_ITEMS, &make_block(1, 1)) {
                        Err(e) if e.to_string().contains("duplicate block") => {}
                        other => {
                            eprintln!("attacker expected duplicate rejection, got {other:?}");
                            errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
        // 1 snapshotter: mid-soak, while ingest is still running.
        {
            let errors = Arc::clone(&errors);
            let snap_dir = snap_dir.clone();
            scope.spawn(move || {
                snap_rx
                    .recv_timeout(Duration::from_secs(60))
                    .expect("ingester never reached the snapshot point");
                let mut client = Client::connect(addr).expect("connect snapshotter");
                match client.snapshot(snap_dir.to_str().unwrap()) {
                    Ok(blocks) => assert!(
                        blocks >= SNAPSHOT_AFTER,
                        "snapshot saw only {blocks} blocks"
                    ),
                    Err(e) => {
                        eprintln!("mid-soak snapshot failed: {e}");
                        errors.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    assert_eq!(
        errors.load(Ordering::SeqCst),
        0,
        "protocol errors during the sharded soak"
    );

    // The mid-soak snapshot is a consistent prefix under Strict.
    let (snapshot, _) =
        load_store_configured(&snap_dir, RecoveryPolicy::Strict, &StoreConfig::InMemory)
            .expect("mid-soak sharded snapshot loads under Strict");
    let n = snapshot.len() as u64;
    assert!(
        (SNAPSHOT_AFTER..=N_BLOCKS).contains(&n),
        "snapshot holds {n} blocks"
    );
    let ids = snapshot.block_ids();
    assert_eq!(ids.first(), Some(&BlockId(1)));
    assert_eq!(ids.last(), Some(&BlockId(n)), "snapshot is not a prefix");

    // Byte-identity against the single-lock daemon: a 1-shard server
    // fed exactly that prefix persists the same files, bit for bit.
    {
        let config =
            ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(0.1).unwrap());
        let reference = Server::bind(config).expect("bind reference");
        let ref_addr = reference.local_addr();
        let ref_thread = std::thread::spawn(move || reference.run());
        let mut client = Client::connect(ref_addr).expect("connect reference");
        for id in 1..=n {
            client
                .ingest(N_ITEMS, &make_block(id, (id - 1) * 20 + 1))
                .expect("reference ingest");
        }
        client
            .snapshot(ref_dir.to_str().unwrap())
            .expect("reference snapshot");
        client.shutdown().expect("reference shutdown");
        ref_thread.join().expect("reference thread").expect("reference run");
        assert_eq!(
            dir_bytes(&snap_dir),
            dir_bytes(&ref_dir),
            "sharded mid-soak snapshot diverged from the 1-shard snapshot"
        );
    }

    // Everything the soak ingested is there; graceful shutdown.
    let final_stats = seed.stats_json().expect("final stats");
    assert_eq!(blocks_gauge(&final_stats), N_BLOCKS);
    assert!(final_stats.contains("\"shards\":4"), "{final_stats}");
    seed.shutdown().expect("shutdown");
    let summary = server_thread
        .join()
        .expect("server thread")
        .expect("server run");
    assert_eq!(summary.blocks, N_BLOCKS);
    std::fs::remove_dir_all(&snap_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}
