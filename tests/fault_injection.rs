//! Fault-injection harness for the crash-safe store and the GEMM shelf.
//!
//! Every test here follows the same discipline: take a known-good on-disk
//! artifact, damage it in a systematic sweep (truncate at every length,
//! flip bits at every offset, simulate a crash between `write` and
//! `rename`), and assert the recovery contract:
//!
//! * a [`RecoveryPolicy::Strict`] load returns a typed error naming the
//!   damaged file — it never panics and never returns silently-wrong data;
//! * a [`RecoveryPolicy::SalvagePrefix`] load always lands on a store
//!   that a subsequent strict load accepts and `verify_store` calls clean;
//! * a damaged or missing GEMM shelf model is rebuilt from the block
//!   stream, bit-for-bit equal to an in-memory twin, never a crash.

use demon::core::bss::BlockSelector;
use demon::core::{Gemm, ItemsetMaintainer, ShelfMode};
use demon::itemsets::persist::{
    load_store, load_store_with, save_store, verify_store, RecoveryPolicy,
};
use demon::itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon::types::{
    Block, BlockId, BlockInterval, Item, ItemSet, MinSupport, Tid, Timestamp, Transaction,
};
use std::fs;
use std::path::{Path, PathBuf};

const UNIVERSE: u32 = 6;

fn tx(tid: u64, items: &[u32]) -> Transaction {
    Transaction::new(Tid(tid), items.iter().map(|&i| Item(i)).collect())
}

/// A small store exercising every persisted feature: plain blocks, a
/// block with a wall-clock interval, and materialized pair TID-lists.
fn sample_store() -> TxStore {
    let mut store = TxStore::new(UNIVERSE);
    store.add_block(Block::new(
        BlockId(1),
        vec![tx(1, &[0, 1, 2]), tx(2, &[0, 1]), tx(3, &[3, 4])],
    ));
    store.add_block(Block::with_interval(
        BlockId(2),
        BlockInterval::new(Timestamp(100), Timestamp(200)),
        vec![tx(4, &[0, 1, 5]), tx(5, &[2, 3])],
    ));
    store.add_block(Block::new(BlockId(3), vec![tx(6, &[1, 2]), tx(7, &[0])]));
    store.materialize_pairs(BlockId(1), &[(Item(0), Item(1))], None);
    store.materialize_pairs(BlockId(2), &[(Item(0), Item(1))], None);
    store
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("demon-fault-{tag}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Regular files directly inside `dir`, sorted for deterministic sweeps.
fn store_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    files.sort();
    files
}

fn copy_store(src: &Path, dst: &Path) {
    fs::create_dir_all(dst).unwrap();
    for file in store_files(src) {
        fs::copy(&file, dst.join(file.file_name().unwrap())).unwrap();
    }
}

/// The recovery contract: after damage, salvage succeeds, and the
/// salvaged directory passes both a strict load and the fsck.
fn assert_salvage_heals(dir: &Path, what: &str) {
    let salvaged = match load_store_with(dir, RecoveryPolicy::SalvagePrefix) {
        Ok((store, _report)) => store,
        Err(e) => panic!("salvage failed after {what}: {e}"),
    };
    let strict = match load_store(dir) {
        Ok(store) => store,
        Err(e) => panic!("strict load failed after salvaging {what}: {e}"),
    };
    assert_eq!(
        strict.block_ids(),
        salvaged.block_ids(),
        "salvage and post-salvage strict load disagree after {what}"
    );
    let report = verify_store(dir).unwrap();
    assert!(
        report.is_clean(),
        "store not clean after salvaging {what}: {report:?}"
    );
}

/// Truncating any store file at any length is detected by a strict load
/// and healed by salvage.
#[test]
fn every_truncation_of_every_file_is_detected_and_salvageable() {
    let src = fresh_dir("trunc-src");
    save_store(&sample_store(), &src).unwrap();
    let work = fresh_dir("trunc-work");
    for file in store_files(&src) {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let pristine = fs::read(&file).unwrap();
        for cut in 0..pristine.len() {
            let what = format!("{name} truncated to {cut} of {} bytes", pristine.len());
            fs::remove_dir_all(&work).ok();
            copy_store(&src, &work);
            fs::write(work.join(&name), &pristine[..cut]).unwrap();
            match load_store(&work) {
                Ok(_) => panic!("strict load accepted {what}"),
                Err(e) => assert!(
                    e.to_string().contains(&name),
                    "error for {what} does not name the file: {e}"
                ),
            }
            assert_salvage_heals(&work, &what);
        }
    }
    fs::remove_dir_all(&src).ok();
    fs::remove_dir_all(&work).ok();
}

/// Flipping bits at any single offset of any store file is detected by a
/// strict load (frame CRCs for block files, the self-checksum for the
/// manifest) and healed by salvage.
#[test]
fn every_bit_flip_in_every_file_is_detected_and_salvageable() {
    let src = fresh_dir("flip-src");
    save_store(&sample_store(), &src).unwrap();
    let work = fresh_dir("flip-work");
    for file in store_files(&src) {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let pristine = fs::read(&file).unwrap();
        for offset in 0..pristine.len() {
            for mask in [0x01u8, 0xFF] {
                let what = format!("{name} with byte {offset} xor {mask:#04x}");
                fs::remove_dir_all(&work).ok();
                copy_store(&src, &work);
                let mut bytes = pristine.clone();
                bytes[offset] ^= mask;
                fs::write(work.join(&name), &bytes).unwrap();
                assert!(
                    load_store(&work).is_err(),
                    "strict load accepted {what}"
                );
                assert_salvage_heals(&work, &what);
            }
        }
    }
    fs::remove_dir_all(&src).ok();
    fs::remove_dir_all(&work).ok();
}

/// A writer that crashed *before* its rename leaves only a `*.tmp` file
/// behind; the previous durable state still loads, fsck reports the
/// litter, and salvage removes it.
#[test]
fn stray_tmp_files_from_crashed_writes_are_harmless_and_cleaned() {
    let dir = fresh_dir("crash-tmp");
    let store = sample_store();
    save_store(&store, &dir).unwrap();
    let files = store_files(&dir);
    for file in &files {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        fs::write(
            dir.join(format!("{name}.tmp")),
            b"half-written bytes from a crashed writer",
        )
        .unwrap();
    }
    // The last durable state wins: strict load ignores the tmp litter.
    let loaded = load_store(&dir).unwrap();
    assert_eq!(loaded.block_ids(), store.block_ids());
    // fsck flags the residue without calling the store damaged.
    let report = verify_store(&dir).unwrap();
    assert!(report.is_clean());
    assert_eq!(report.stray_tmp.len(), files.len());
    assert!(report.damaged.is_empty());
    // Salvage sweeps it away.
    let (_, recovery) = load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
    assert_eq!(recovery.removed_tmp.len(), files.len());
    assert!(recovery.dropped_blocks.is_empty());
    assert!(verify_store(&dir).unwrap().stray_tmp.is_empty());
    fs::remove_dir_all(&dir).ok();
}

/// A crash mid-replacement of a block file (tmp written, original gone):
/// strict names the missing file, salvage keeps the intact prefix.
#[test]
fn crash_before_rename_of_a_block_file_is_recoverable() {
    let dir = fresh_dir("crash-block");
    save_store(&sample_store(), &dir).unwrap();
    let victim = dir.join("block_3.txs");
    let bytes = fs::read(&victim).unwrap();
    fs::write(dir.join("block_3.txs.tmp"), &bytes[..bytes.len() / 2]).unwrap();
    fs::remove_file(&victim).unwrap();
    match load_store(&dir) {
        Ok(_) => panic!("strict load accepted a store missing block_3.txs"),
        Err(e) => assert!(
            e.to_string().contains("block_3.txs"),
            "error must name the missing file: {e}"
        ),
    }
    let (salvaged, report) = load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
    assert_eq!(salvaged.block_ids(), vec![BlockId(1), BlockId(2)]);
    assert_eq!(report.loaded_blocks, vec![1, 2]);
    assert_eq!(report.dropped_blocks, vec![3]);
    assert!(report.first_error.is_some());
    assert!(verify_store(&dir).unwrap().is_clean());
    fs::remove_dir_all(&dir).ok();
}

/// A crash mid-replacement of the manifest itself (meta.json.tmp written,
/// meta.json gone): salvage reconstructs the manifest from the block
/// files, losing only the wall-clock intervals.
#[test]
fn crash_before_rename_of_the_manifest_reconstructs_from_blocks() {
    let dir = fresh_dir("crash-meta");
    let store = sample_store();
    save_store(&store, &dir).unwrap();
    let meta = fs::read(dir.join("meta.json")).unwrap();
    fs::write(dir.join("meta.json.tmp"), &meta[..meta.len() / 2]).unwrap();
    fs::remove_file(dir.join("meta.json")).unwrap();
    assert!(load_store(&dir).is_err());
    let (salvaged, report) = load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
    assert_eq!(salvaged.block_ids(), store.block_ids());
    assert_eq!(salvaged.n_items(), store.n_items());
    assert!(report.intervals_lost);
    for &id in store.block_ids() {
        assert_eq!(
            salvaged.block(id).unwrap().records(),
            store.block(id).unwrap().records(),
            "reconstructed block {id:?} differs"
        );
        assert!(
            salvaged.block(id).unwrap().interval().is_none(),
            "intervals cannot survive manifest reconstruction"
        );
    }
    assert!(verify_store(&dir).unwrap().is_clean());
    fs::remove_dir_all(&dir).ok();
}

/// The salvaged prefix is *correct*, not merely loadable: mining the
/// surviving blocks gives the same model as mining them in the original.
#[test]
fn salvaged_prefix_mines_identically_to_the_original_prefix() {
    let dir = fresh_dir("salvage-mine");
    let store = sample_store();
    save_store(&store, &dir).unwrap();
    // Destroy block 2's TID-list frame; blocks 2 and 3 must be dropped.
    let tid = dir.join("block_2.tid");
    let mut bytes = fs::read(&tid).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&tid, &bytes).unwrap();
    let (salvaged, report) = load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
    assert_eq!(salvaged.block_ids(), vec![BlockId(1)]);
    assert_eq!(report.dropped_blocks, vec![2, 3]);
    assert!(!report.quarantined.is_empty());
    let minsup = MinSupport::new(0.3).unwrap();
    let from_salvaged =
        FrequentItemsets::mine_from(&salvaged, &[BlockId(1)], minsup).unwrap();
    let from_original = FrequentItemsets::mine_from(&store, &[BlockId(1)], minsup).unwrap();
    assert_eq!(from_salvaged.frequent(), from_original.frequent());
    fs::remove_dir_all(&dir).ok();
}

fn freq(m: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
    m.frequent_sorted()
}

fn shelf_start_of(path: &Path) -> BlockId {
    let name = path.file_name().unwrap().to_string_lossy().into_owned();
    let digits: String = name.chars().filter(|c| c.is_ascii_digit()).collect();
    BlockId(digits.parse().unwrap())
}

/// Damaging a shelved GEMM model in any way — truncation at every length,
/// bit flips at every offset, or deleting the file — makes the next read
/// rebuild the model from the block stream, matching an in-memory twin
/// exactly. The shelf is a cache, never a single point of failure.
#[test]
fn gemm_shelf_damage_always_rebuilds_never_aborts() {
    let dir = fresh_dir("gemm-shelf");
    let minsup = MinSupport::new(0.2).unwrap();
    let mk = || {
        Gemm::new(
            ItemsetMaintainer::new(UNIVERSE, minsup, CounterKind::Ecut),
            3,
            BlockSelector::all(),
        )
        .unwrap()
        .with_retirement(false)
    };
    let blocks: Vec<_> = (1..=5u64)
        .map(|id| {
            Block::new(
                BlockId(id),
                vec![
                    tx(id * 10, &[0, 1]),
                    tx(id * 10 + 1, &[(id % u64::from(UNIVERSE)) as u32]),
                    tx(id * 10 + 2, &[2, 3, 4]),
                ],
            )
        })
        .collect();
    let mut disk = mk().with_shelf(ShelfMode::Disk(dir.clone())).unwrap();
    let mut twin = mk(); // memory-shelf oracle: same stream, no disk
    for b in &blocks {
        disk.add_block(b.clone()).unwrap();
        twin.add_block(b.clone()).unwrap();
    }
    let shelf_files = store_files(&dir);
    assert!(
        !shelf_files.is_empty(),
        "the disk shelf should hold shelved future models"
    );
    let mut mutations = 0u64;
    for file in &shelf_files {
        let start = shelf_start_of(file);
        let pristine = fs::read(file).unwrap();
        let expected = freq(&twin.future_model(start).unwrap());
        for cut in 0..pristine.len() {
            fs::write(file, &pristine[..cut]).unwrap();
            let got = disk
                .future_model(start)
                .unwrap_or_else(|e| panic!("shelf truncated to {cut} bytes was fatal: {e}"));
            assert_eq!(freq(&got), expected, "rebuild after truncation to {cut}");
            mutations += 1;
        }
        for offset in 0..pristine.len() {
            for mask in [0x01u8, 0xFF] {
                let mut bytes = pristine.clone();
                bytes[offset] ^= mask;
                fs::write(file, &bytes).unwrap();
                let got = disk.future_model(start).unwrap_or_else(|e| {
                    panic!("shelf byte {offset} xor {mask:#04x} was fatal: {e}")
                });
                assert_eq!(
                    freq(&got),
                    expected,
                    "rebuild after flipping byte {offset} with {mask:#04x}"
                );
                mutations += 1;
            }
        }
        // A missing shelf file (crashed before rename) rebuilds too.
        fs::remove_file(file).unwrap();
        let got = disk
            .future_model(start)
            .unwrap_or_else(|e| panic!("missing shelf file was fatal: {e}"));
        assert_eq!(freq(&got), expected, "rebuild after deleting the shelf file");
        mutations += 1;
        fs::write(file, &pristine).unwrap();
        // With the pristine bytes restored, the load is a plain read again.
        let reread = disk.future_model(start).unwrap();
        assert_eq!(freq(&reread), expected);
    }
    assert_eq!(
        disk.shelf_rebuilds(),
        mutations,
        "every damaged read rebuilds; intact reads never do"
    );
    fs::remove_dir_all(&dir).ok();
}
