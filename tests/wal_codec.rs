//! Property tests of the WAL codec's salvage-by-construction contract:
//! *any* truncation and *any* bit flip of a multi-record log decodes to
//! a clean, correct prefix — never an error, never a wrong record —
//! plus a golden torn-tail fixture pinning the on-disk bytes.

use demon::types::wal::{decode_wal_records, encode_wal_record};
use proptest::prelude::*;
use std::path::PathBuf;

/// The model-class tag stamped on every record in these logs (the
/// itemset tag — the value is arbitrary for the codec, which only
/// requires consecutive records to agree).
const CLASS: u8 = 1;

/// Encodes `bodies` as consecutive WAL records and returns the bytes
/// together with each record's end offset.
fn encode_log(bodies: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        bytes.extend_from_slice(&encode_wal_record(i as u64, CLASS, body));
        ends.push(bytes.len());
    }
    (bytes, ends)
}

/// A strategy for the record bodies of a small multi-record log.
fn bodies_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..=255, 0..48), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cutting the log anywhere yields exactly the records whose frames
    /// lie fully before the cut, and the reported `valid_len` re-decodes
    /// to the same clean prefix.
    #[test]
    fn any_truncation_decodes_to_a_clean_prefix(
        bodies in bodies_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let (bytes, ends) = encode_log(&bodies);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let report = decode_wal_records(&bytes[..cut], "prop");
        let intact = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(report.records.len(), intact);
        for (i, record) in report.records.iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64);
            prop_assert_eq!(record.class, CLASS);
            prop_assert_eq!(&record.body, &bodies[i]);
        }
        prop_assert_eq!(report.valid_len as usize, ends.get(intact.wrapping_sub(1)).copied().unwrap_or(0));
        prop_assert_eq!(report.torn.is_some(), cut != report.valid_len as usize);
        // The salvage point is a fixpoint: re-decoding the valid prefix
        // is clean and loses nothing further.
        let again = decode_wal_records(&bytes[..report.valid_len as usize], "prop-again");
        prop_assert_eq!(again.records.len(), intact);
        prop_assert!(again.torn.is_none());
    }

    /// Flipping any single bit anywhere in the log still decodes to a
    /// clean prefix: every record before the damaged frame survives
    /// byte-for-byte, decoding stops at the damage, and nothing fails.
    #[test]
    fn any_bit_flip_decodes_to_a_clean_prefix(
        bodies in bodies_strategy(),
        offset_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut bytes, ends) = encode_log(&bodies);
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= 1 << bit;
        let damaged_frame = ends.iter().filter(|&&e| e <= offset).count();
        let report = decode_wal_records(&bytes, "prop");
        // A CRC32 collision under a single-bit flip is impossible, so
        // decoding stops exactly at the damaged frame.
        prop_assert_eq!(report.records.len(), damaged_frame);
        for (i, record) in report.records.iter().enumerate() {
            prop_assert_eq!(record.seq, i as u64);
            prop_assert_eq!(record.class, CLASS);
            prop_assert_eq!(&record.body, &bodies[i]);
        }
        prop_assert!(report.torn.is_some());
        prop_assert_eq!(
            report.valid_len as usize,
            ends.get(damaged_frame.wrapping_sub(1)).copied().unwrap_or(0)
        );
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wal_torn_tail.bin")
}

/// The deterministic fixture stream: three records, the third cut short
/// 7 bytes before its end.
fn fixture_bytes() -> (Vec<u8>, Vec<usize>) {
    let bodies: Vec<Vec<u8>> = (0u8..3)
        .map(|i| (0..24).map(|j| i.wrapping_mul(37).wrapping_add(j)).collect())
        .collect();
    let (mut bytes, ends) = encode_log(&bodies);
    bytes.truncate(ends[2] - 7);
    (bytes, ends)
}

/// The torn-tail bytes are pinned as a checked-in binary golden: the
/// decoder must keep salvaging historical WAL files byte-for-byte, so
/// any codec change that shifts the layout fails loudly here. Re-bless
/// with `DEMON_BLESS=1 cargo test --test wal_codec`.
#[test]
fn golden_torn_tail_fixture_salvages_two_records() {
    let (bytes, ends) = fixture_bytes();
    let path = fixture_path();
    if std::env::var("DEMON_BLESS").as_deref() == Ok("1") {
        std::fs::write(&path, &bytes).unwrap();
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {}: {e}\nrun `DEMON_BLESS=1 cargo test --test wal_codec` to create it",
            path.display()
        )
    });
    assert_eq!(
        golden, bytes,
        "WAL record layout drifted from the checked-in fixture; \
         if intentional, re-bless with DEMON_BLESS=1"
    );

    let report = decode_wal_records(&golden, "golden");
    assert_eq!(report.records.len(), 2, "two intact records salvage");
    assert_eq!(report.valid_len as usize, ends[1]);
    assert_eq!(report.records[0].seq, 0);
    assert_eq!(report.records[1].seq, 1);
    assert_eq!(report.records[1].body[0], 37u8);
    let torn = report.torn.expect("the cut record is reported");
    assert!(torn.contains("truncated"), "torn detail names the cause: {torn}");
}
