//! Integration tests of the `demon-cli` binary: generate → inspect →
//! mine → monitor → patterns, end to end through the on-disk store.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_demon-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demon-cli-test-{name}-{}", std::process::id()))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quest_pipeline_generate_inspect_mine_monitor() {
    let dir = tmp("quest");
    let store = dir.join("store");
    let out = run_ok(cli().args([
        "generate",
        "quest",
        "--out",
        store.to_str().unwrap(),
        "--spec",
        "40K.8L.1I.1pats.3plen",
        "--scale",
        "0.05",
        "--blocks",
        "3",
    ]));
    assert!(stdout(&out).contains("wrote 3 blocks"));

    let out = run_ok(cli().args(["inspect", store.to_str().unwrap()]));
    let text = stdout(&out);
    assert!(text.contains("blocks: 3"));
    assert!(text.contains("D2"));

    let out = run_ok(cli().args([
        "mine",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--rules",
        "0.3",
        "--top",
        "5",
    ]));
    let text = stdout(&out);
    assert!(text.contains("frequent itemsets over"), "{text}");

    let out = run_ok(cli().args([
        "monitor",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--window",
        "2",
        "--counter",
        "ecut+",
    ]));
    let text = stdout(&out);
    assert!(text.contains("final window model"), "{text}");
    assert!(text.contains("[D2, D3]"), "{text}");

    // Window-relative BSS through the CLI.
    let out = run_ok(cli().args([
        "monitor",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--window",
        "2",
        "--bss",
        "01",
    ]));
    let text = stdout(&out);
    assert!(text.contains("[D3]"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn webtrace_pipeline_patterns() {
    let dir = tmp("trace");
    let store = dir.join("trace");
    run_ok(cli().args([
        "generate",
        "webtrace",
        "--out",
        store.to_str().unwrap(),
        "--days",
        "7",
        "--rate",
        "120",
        "--granularity",
        "12",
    ]));
    let out = run_ok(cli().args(["patterns", store.to_str().unwrap(), "--min-len", "3"]));
    let text = stdout(&out);
    assert!(text.contains("compact sequences"), "{text}");
    assert!(text.contains("blocks"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_patterns_through_cli() {
    let dir = tmp("wintrace");
    let store = dir.join("trace");
    run_ok(cli().args([
        "generate",
        "webtrace",
        "--out",
        store.to_str().unwrap(),
        "--days",
        "7",
        "--rate",
        "100",
        "--granularity",
        "24",
    ]));
    let out = run_ok(cli().args([
        "patterns",
        store.to_str().unwrap(),
        "--min-len",
        "2",
        "--window",
        "4",
    ]));
    assert!(stdout(&out).contains("compact sequences"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let out = run_ok(cli().args(["help"]));
    assert!(stdout(&out).contains("demon-cli"));
}

#[test]
fn verify_and_salvage_through_cli() {
    let dir = tmp("verify");
    let store = dir.join("store");
    run_ok(cli().args([
        "generate",
        "quest",
        "--out",
        store.to_str().unwrap(),
        "--spec",
        "40K.8L.1I.1pats.3plen",
        "--scale",
        "0.05",
        "--blocks",
        "3",
    ]));

    // A freshly written store passes fsck with exit code 0.
    let out = run_ok(cli().args(["verify", store.to_str().unwrap()]));
    assert!(stdout(&out).contains("store is clean"), "{}", stdout(&out));

    // Flip one byte in a block frame: verify must exit nonzero and name
    // the damaged file.
    let victim = store.join("block_2.tid");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();
    let out = cli()
        .args(["verify", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "verify must fail on a damaged store");
    let text = stdout(&out);
    assert!(text.contains("DAMAGED"), "{text}");
    assert!(text.contains("block_2.tid"), "{text}");
    assert!(text.contains("--salvage"), "{text}");

    // Strict commands refuse the damaged store…
    let out = cli()
        .args(["mine", store.to_str().unwrap(), "--minsup", "0.02"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "strict mine must refuse damage");

    // …but --salvage recovers the intact prefix and reports what it did.
    let out = run_ok(cli().args([
        "mine",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--salvage",
    ]));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("salvage"), "{err}");
    assert!(stdout(&out).contains("frequent itemsets over"), "{}", stdout(&out));

    // After salvage the store is clean again: verify exits 0.
    let out = run_ok(cli().args(["verify", store.to_str().unwrap()]));
    assert!(stdout(&out).contains("store is clean"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

/// Generates a small shared store for the observability tests.
fn small_store(name: &str) -> (PathBuf, PathBuf) {
    let dir = tmp(name);
    let store = dir.join("store");
    run_ok(cli().args([
        "generate",
        "quest",
        "--out",
        store.to_str().unwrap(),
        "--spec",
        "40K.8L.1I.1pats.3plen",
        "--scale",
        "0.05",
        "--blocks",
        "3",
    ]));
    (dir, store)
}

/// The counter block of a `--stats` stderr dump (between the counters
/// header and the histogram header — histograms carry wall times and are
/// run-dependent, counters must not be).
fn counters_section(stderr: &str) -> String {
    stderr
        .lines()
        .skip_while(|l| !l.starts_with("--- obs counters ---"))
        .take_while(|l| !l.starts_with("--- obs histograms"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn stats_and_trace_out_on_mine() {
    let (dir, store) = small_store("stats");

    // Without --stats, stderr stays free of the counter table.
    let out = run_ok(cli().args(["mine", store.to_str().unwrap(), "--minsup", "0.02"]));
    assert!(!String::from_utf8_lossy(&out.stderr).contains("obs counters"));

    let trace = dir.join("trace.jsonl");
    let out = run_ok(cli().args([
        "mine",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--stats",
        "--trace-out",
        trace.to_str().unwrap(),
    ]));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--- obs counters ---"), "{err}");
    assert!(err.contains("candidates_probed"), "{err}");
    assert!(err.contains("tx_scanned"), "{err}");

    let jsonl = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() >= 3, "expected span + counters events: {jsonl}");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
    }
    assert!(lines[0].contains("\"type\":\"span_begin\"") && lines[0].contains("\"name\":\"mine\""));
    let last = lines.last().unwrap();
    assert!(last.contains("\"type\":\"counters\""), "{last}");
    assert!(last.contains("\"candidates_probed\":"), "{last}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_counters_are_thread_count_invariant() {
    let (dir, store) = small_store("stats-threads");
    let run_at = |threads: &str| -> String {
        let out = run_ok(cli().args([
            "monitor",
            store.to_str().unwrap(),
            "--minsup",
            "0.02",
            "--window",
            "2",
            "--counter",
            "ecut+",
            "--stats",
            "--threads",
            threads,
        ]));
        counters_section(&String::from_utf8_lossy(&out.stderr))
    };
    let reference = run_at("1");
    assert!(reference.contains("candidates_probed"), "{reference}");
    for threads in ["2", "8"] {
        let got = run_at(threads);
        assert_eq!(reference, got, "--stats counters diverged at {threads} threads");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_on_monitor_records_per_block_spans() {
    let (dir, store) = small_store("trace-monitor");
    let trace = dir.join("monitor.jsonl");
    run_ok(cli().args([
        "monitor",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--trace-out",
        trace.to_str().unwrap(),
    ]));
    let jsonl = std::fs::read_to_string(&trace).unwrap();
    let begins = jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"span_begin\"") && l.contains("\"name\":\"add_block\""))
        .count();
    let ends = jsonl
        .lines()
        .filter(|l| l.contains("\"type\":\"span_end\"") && l.contains("\"name\":\"add_block\""))
        .count();
    assert_eq!(begins, 3, "one span per replayed block:\n{jsonl}");
    assert_eq!(begins, ends, "unbalanced spans:\n{jsonl}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_salvage_exits_zero_on_clean_store() {
    let (dir, store) = small_store("verify-clean");
    // `verify` is read-only; combining it with --salvage on a clean store
    // must stay exit 0 and report cleanliness, not mutate anything.
    let before: Vec<String> = std::fs::read_dir(&store)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let out = run_ok(cli().args(["verify", store.to_str().unwrap(), "--salvage"]));
    assert!(stdout(&out).contains("store is clean"), "{}", stdout(&out));
    let after: Vec<String> = std::fs::read_dir(&store)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    let (mut b, mut a) = (before, after);
    b.sort();
    a.sort();
    assert_eq!(b, a, "verify --salvage must not touch a clean store");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_store_reports_error() {
    let out = cli()
        .args(["mine", "/nonexistent/demon-store", "--minsup", "0.1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
