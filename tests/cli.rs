//! Integration tests of the `demon-cli` binary: generate → inspect →
//! mine → monitor → patterns, end to end through the on-disk store.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_demon-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demon-cli-test-{name}-{}", std::process::id()))
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("binary runs");
    assert!(
        out.status.success(),
        "command failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quest_pipeline_generate_inspect_mine_monitor() {
    let dir = tmp("quest");
    let store = dir.join("store");
    let out = run_ok(cli().args([
        "generate",
        "quest",
        "--out",
        store.to_str().unwrap(),
        "--spec",
        "40K.8L.1I.1pats.3plen",
        "--scale",
        "0.05",
        "--blocks",
        "3",
    ]));
    assert!(stdout(&out).contains("wrote 3 blocks"));

    let out = run_ok(cli().args(["inspect", store.to_str().unwrap()]));
    let text = stdout(&out);
    assert!(text.contains("blocks: 3"));
    assert!(text.contains("D2"));

    let out = run_ok(cli().args([
        "mine",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--rules",
        "0.3",
        "--top",
        "5",
    ]));
    let text = stdout(&out);
    assert!(text.contains("frequent itemsets over"), "{text}");

    let out = run_ok(cli().args([
        "monitor",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--window",
        "2",
        "--counter",
        "ecut+",
    ]));
    let text = stdout(&out);
    assert!(text.contains("final window model"), "{text}");
    assert!(text.contains("[D2, D3]"), "{text}");

    // Window-relative BSS through the CLI.
    let out = run_ok(cli().args([
        "monitor",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--window",
        "2",
        "--bss",
        "01",
    ]));
    let text = stdout(&out);
    assert!(text.contains("[D3]"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn webtrace_pipeline_patterns() {
    let dir = tmp("trace");
    let store = dir.join("trace");
    run_ok(cli().args([
        "generate",
        "webtrace",
        "--out",
        store.to_str().unwrap(),
        "--days",
        "7",
        "--rate",
        "120",
        "--granularity",
        "12",
    ]));
    let out = run_ok(cli().args(["patterns", store.to_str().unwrap(), "--min-len", "3"]));
    let text = stdout(&out);
    assert!(text.contains("compact sequences"), "{text}");
    assert!(text.contains("blocks"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_patterns_through_cli() {
    let dir = tmp("wintrace");
    let store = dir.join("trace");
    run_ok(cli().args([
        "generate",
        "webtrace",
        "--out",
        store.to_str().unwrap(),
        "--days",
        "7",
        "--rate",
        "100",
        "--granularity",
        "24",
    ]));
    let out = run_ok(cli().args([
        "patterns",
        store.to_str().unwrap(),
        "--min-len",
        "2",
        "--window",
        "4",
    ]));
    assert!(stdout(&out).contains("compact sequences"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_prints_usage() {
    let out = run_ok(cli().args(["help"]));
    assert!(stdout(&out).contains("demon-cli"));
}

#[test]
fn verify_and_salvage_through_cli() {
    let dir = tmp("verify");
    let store = dir.join("store");
    run_ok(cli().args([
        "generate",
        "quest",
        "--out",
        store.to_str().unwrap(),
        "--spec",
        "40K.8L.1I.1pats.3plen",
        "--scale",
        "0.05",
        "--blocks",
        "3",
    ]));

    // A freshly written store passes fsck with exit code 0.
    let out = run_ok(cli().args(["verify", store.to_str().unwrap()]));
    assert!(stdout(&out).contains("store is clean"), "{}", stdout(&out));

    // Flip one byte in a block frame: verify must exit nonzero and name
    // the damaged file.
    let victim = store.join("block_2.tid");
    let mut bytes = std::fs::read(&victim).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&victim, &bytes).unwrap();
    let out = cli()
        .args(["verify", store.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "verify must fail on a damaged store");
    let text = stdout(&out);
    assert!(text.contains("DAMAGED"), "{text}");
    assert!(text.contains("block_2.tid"), "{text}");
    assert!(text.contains("--salvage"), "{text}");

    // Strict commands refuse the damaged store…
    let out = cli()
        .args(["mine", store.to_str().unwrap(), "--minsup", "0.02"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "strict mine must refuse damage");

    // …but --salvage recovers the intact prefix and reports what it did.
    let out = run_ok(cli().args([
        "mine",
        store.to_str().unwrap(),
        "--minsup",
        "0.02",
        "--salvage",
    ]));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("salvage"), "{err}");
    assert!(stdout(&out).contains("frequent itemsets over"), "{}", stdout(&out));

    // After salvage the store is clean again: verify exits 0.
    let out = run_ok(cli().args(["verify", store.to_str().unwrap()]));
    assert!(stdout(&out).contains("store is clean"), "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_store_reports_error() {
    let out = cli()
        .args(["mine", "/nonexistent/demon-store", "--minsup", "0.1"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
