//! End-to-end integration tests of the clustering stack: cluster data
//! flowing through BIRCH+, the ClusterMaintainer, and GEMM windows.

use demon::clustering::{Birch, BirchParams, BirchPlus};
use demon::core::bss::BlockSelector;
use demon::core::{ClusterMaintainer, Gemm};
use demon::datagen::{ClusterDataGen, ClusterParams};
use demon::types::{BlockId, Point, PointBlock};

fn params(dim: usize, k: usize) -> BirchParams {
    let mut p = BirchParams::new(dim, k);
    p.tree.threshold2 = 2.0;
    p.tree.max_leaf_entries = 512;
    p
}

fn gen(k: usize, dim: usize, seed: u64) -> ClusterDataGen {
    ClusterDataGen::new(
        ClusterParams {
            n_points: 0,
            k,
            dim,
            noise_fraction: 0.02,
            sigma: 1.0,
            domain: 80.0,
        },
        seed,
    )
}

/// Each true center must have a discovered centroid nearby.
fn assert_centers_recovered(truth: &[Point], found: &[Point], tol: f64, ctx: &str) {
    for t in truth {
        let d = found
            .iter()
            .map(|c| c.dist(t))
            .fold(f64::INFINITY, f64::min);
        assert!(d < tol, "{ctx}: no centroid within {tol} of {t:?} (best {d:.2})");
    }
}

#[test]
fn birch_plus_tracks_growing_database() {
    let mut g = gen(6, 4, 5);
    let truth = g.centers().to_vec();
    let mut plus = BirchPlus::new(params(4, 6));
    for id in 1..=5u64 {
        let block = PointBlock::new(BlockId(id), g.take_points(2_000));
        plus.absorb_block(&block);
        let (model, _) = plus.model();
        assert_eq!(model.n_points(), id * 2_000);
        assert_centers_recovered(&truth, &model.centroids(), 2.5, &format!("after D{id}"));
    }
}

#[test]
fn birch_plus_equals_full_rerun_up_to_jitter() {
    let mut g = gen(5, 3, 7);
    let blocks: Vec<PointBlock> = (1..=3u64)
        .map(|id| PointBlock::new(BlockId(id), g.take_points(1_500)))
        .collect();
    let mut plus = BirchPlus::new(params(3, 5));
    for b in &blocks {
        plus.absorb_block(b);
    }
    let (inc, _) = plus.model();
    let refs: Vec<&PointBlock> = blocks.iter().collect();
    let (full, _) = Birch::new(params(3, 5)).cluster_blocks(&refs);
    assert_eq!(inc.n_points(), full.n_points());
    assert_centers_recovered(&full.centroids(), &inc.centroids(), 2.0, "inc vs full");
    assert_centers_recovered(&inc.centroids(), &full.centroids(), 2.0, "full vs inc");
}

#[test]
fn gemm_windows_cluster_models_forget_old_regimes() {
    // The data-generating process changes after block 3: a window of 2
    // must follow the new regime, forgetting the old centers.
    let dim = 3;
    let mut old_regime = gen(3, dim, 11);
    let mut new_regime = gen(3, dim, 12);
    let old_truth = old_regime.centers().to_vec();
    let new_truth = new_regime.centers().to_vec();

    let maintainer = ClusterMaintainer::new(params(dim, 3));
    let mut gemm = Gemm::new(maintainer, 2, BlockSelector::all()).unwrap();
    for id in 1..=6u64 {
        let points = if id <= 3 {
            old_regime.take_points(1_200)
        } else {
            new_regime.take_points(1_200)
        };
        gemm.add_block(PointBlock::new(BlockId(id), points)).unwrap();
    }
    let tree = gemm.current_model().unwrap();
    assert_eq!(tree.n_points(), 2 * 1_200);
    let model = gemm.maintainer().cluster_model(tree);
    assert_centers_recovered(&new_truth, &model.centroids(), 2.5, "new regime");
    // At least one *old* center should now be far from every centroid
    // (the regimes are random in an 80-unit cube, so overlap is unlikely).
    let forgotten = old_truth.iter().any(|t| {
        model
            .centroids()
            .iter()
            .map(|c| c.dist(t))
            .fold(f64::INFINITY, f64::min)
            > 10.0
    });
    assert!(forgotten, "window should have forgotten the old regime");
}

#[test]
fn labeling_scan_is_consistent_with_subcluster_assignment() {
    let mut g = gen(4, 3, 21);
    let block = PointBlock::new(BlockId(1), g.take_points(3_000));
    let (model, _) = Birch::new(params(3, 4)).cluster_points(block.records());
    let labels = model.label_block(&block);
    assert_eq!(labels.len(), block.len());
    // Points labeled into a cluster are closer to that centroid than to
    // any other (by construction of assign_point).
    let centroids = model.centroids();
    for (p, &l) in block.records().iter().zip(&labels).take(200) {
        let d_assigned = p.dist(&centroids[l]);
        for (j, c) in centroids.iter().enumerate() {
            assert!(
                d_assigned <= p.dist(c) + 1e-9,
                "point closer to cluster {j} than its label {l}"
            );
        }
    }
}

#[test]
fn cluster_model_serde_roundtrip_through_gemm_shelf() {
    let dim = 2;
    let mut g = gen(3, dim, 31);
    let maintainer = ClusterMaintainer::new(params(dim, 3));
    let dir = std::env::temp_dir().join(format!("demon-cluster-shelf-{}", std::process::id()));
    let mut gemm = Gemm::new(maintainer, 3, BlockSelector::all())
        .unwrap()
        .with_shelf(demon::core::ShelfMode::Disk(dir.clone()))
        .unwrap();
    for id in 1..=5u64 {
        gemm.add_block(PointBlock::new(BlockId(id), g.take_points(800)))
            .unwrap();
    }
    // Future-window trees are loadable from the shelf and consistent.
    let newest = gemm.future_model(BlockId(5)).unwrap();
    assert_eq!(newest.n_points(), 800);
    newest.check_invariants();
    std::fs::remove_dir_all(&dir).ok();
}
