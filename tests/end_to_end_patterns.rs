//! End-to-end integration test of pattern detection: the synthetic web
//! trace's planted calendar structure must be recovered by the compact
//! sequence miner, and the anomalous Monday must be isolated.

use demon::core::report;
use demon::datagen::webtrace::{self, Regime, WebTraceConfig, WebTraceGen};
use demon::focus::{CompactSequenceMiner, ItemsetSimilarity, SimilarityConfig};
use demon::types::calendar::is_working_day;
use demon::types::{BlockId, MinSupport, Timestamp};

fn mine_trace(
    granularity: u64,
    days: u64,
    segment_start: Timestamp,
) -> (CompactSequenceMiner<ItemsetSimilarity>, Vec<demon::types::BlockInterval>) {
    let mut gen = WebTraceGen::new(WebTraceConfig {
        days,
        base_rate: 300.0,
        ..WebTraceConfig::default()
    });
    let requests = gen.generate();
    let blocks = webtrace::segment_into_blocks(&requests, granularity, segment_start);
    let intervals: Vec<_> = blocks.iter().map(|b| b.interval().unwrap()).collect();
    let oracle = ItemsetSimilarity::new(
        webtrace::N_ITEMS,
        MinSupport::new(0.01).unwrap(),
        SimilarityConfig::Threshold { alpha: 0.12 },
    );
    let mut miner = CompactSequenceMiner::new(oracle);
    for b in blocks {
        miner.add_block(b);
    }
    miner.check_invariants();
    (miner, intervals)
}

#[test]
fn daily_blocks_recover_working_day_pattern_excluding_anomaly() {
    let (miner, intervals) = mine_trace(24, 21, Timestamp::from_day_hour(1, 0));
    assert_eq!(intervals.len(), 20);
    let descriptions: Vec<String> = miner
        .maximal_sequences()
        .into_iter()
        .filter(|s| s.len() >= 4)
        .map(|seq| {
            let ivs: Vec<_> = seq.iter().map(|id| intervals[id.index()]).collect();
            report::describe(&ivs).description
        })
        .collect();
    assert!(
        descriptions
            .iter()
            .any(|d| d.contains("all working days except 9-9-1996")),
        "no working-day pattern excluding the anomaly; got {descriptions:?}"
    );
}

#[test]
fn anomalous_monday_is_similar_to_no_earlier_block() {
    let (miner, intervals) = mine_trace(24, 14, Timestamp::from_day_hour(1, 0));
    // Find the block covering day 7 (Monday 9-9-1996).
    let idx = intervals
        .iter()
        .position(|iv| iv.start.day() == webtrace::ANOMALY_DAY)
        .expect("anomaly day block exists");
    for j in 0..intervals.len() {
        if j != idx {
            assert!(
                !miner.is_similar(idx, j),
                "anomalous block {idx} judged similar to block {j}"
            );
        }
    }
}

#[test]
fn weekend_and_holiday_blocks_group_together() {
    let (miner, intervals) = mine_trace(24, 14, Timestamp::from_day_hour(1, 0));
    let leisure: Vec<usize> = (0..intervals.len())
        .filter(|&i| {
            let day = intervals[i].start.day();
            !is_working_day(day) && day != webtrace::ANOMALY_DAY
        })
        .collect();
    assert!(leisure.len() >= 4, "need several leisure blocks");
    for (a, &i) in leisure.iter().enumerate() {
        for &j in &leisure[a + 1..] {
            assert!(
                miner.is_similar(i, j),
                "leisure blocks {i} and {j} not similar"
            );
        }
    }
    // And a leisure block must differ from a mid-week working block.
    let working = (0..intervals.len())
        .find(|&i| {
            let day = intervals[i].start.day();
            is_working_day(day) && day != webtrace::ANOMALY_DAY
        })
        .unwrap();
    assert!(!miner.is_similar(leisure[0], working));
}

#[test]
fn regime_schedule_drives_block_similarity_at_fine_granularity() {
    let (miner, intervals) = mine_trace(4, 7, Timestamp::from_day_hour(0, 12));
    // Two business blocks on different working days are similar; a
    // business block and a night block on the same day are not.
    let business: Vec<usize> = (0..intervals.len())
        .filter(|&i| {
            let iv = intervals[i];
            webtrace::regime(iv.start.day(), iv.start.hour()) == Regime::Business
                && webtrace::regime(iv.start.day(), iv.start.hour() + 3) == Regime::Business
        })
        .collect();
    assert!(business.len() >= 4);
    assert!(miner.is_similar(business[0], business[1]));

    let night = (0..intervals.len())
        .find(|&i| {
            let iv = intervals[i];
            webtrace::regime(iv.start.day(), iv.start.hour()) == Regime::Night
                && webtrace::regime(iv.start.day(), iv.start.hour() + 3) == Regime::Night
        })
        .unwrap();
    assert!(!miner.is_similar(business[0], night));
}

#[test]
fn block_ids_and_intervals_stay_aligned_through_mining() {
    let (miner, intervals) = mine_trace(12, 7, Timestamp::from_day_hour(0, 12));
    for (i, b) in miner.blocks().iter().enumerate() {
        assert_eq!(b.id(), BlockId(i as u64 + 1));
        assert_eq!(b.interval().unwrap(), intervals[i]);
    }
}
