//! End-to-end tests of the `demon-serve` daemon: a golden block stream
//! over a real TCP socket must produce exactly the model the batch path
//! produces, snapshots must be loadable, and shutdown must be clean.

use demon::clustering::{phase2_model, BirchParams};
use demon::clustering::DbscanParams;
use demon::core::{ClusterMaintainer, DbscanMaintainer, ModelMaintainer, TreeMaintainer};
use demon::itemsets::persist::{
    load_store_configured, save_store, verify_store, RecoveryPolicy,
};
use demon::itemsets::{FrequentItemsets, TxStore};
use demon::serve::{Client, ClusterModel, DbscanModel, ServableModel, ServeConfig, Server};
use demon::store::StoreConfig;
use demon::trees::{LabeledPoint, TreeParams};
use demon::types::{
    Block, BlockId, DemonError, MinSupport, ModelClass, Point, Tid, Transaction, TxBlock,
};
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_demon-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demon-serve-test-{name}-{}", std::process::id()))
}

const N_ITEMS: u32 = 64;
const MINSUP: f64 = 0.05;

/// The golden stream: five deterministic blocks with overlapping item
/// patterns, TIDs globally monotonic.
fn golden_blocks() -> Vec<TxBlock> {
    let mut tid = 0u64;
    (1..=5u64)
        .map(|id| {
            let txs = (0..40)
                .map(|i| {
                    tid += 1;
                    let mut items = vec![(i % 7) as u32, 7 + (i % 5) as u32];
                    if i % 3 == 0 {
                        items.push(20 + (id as u32 % 4));
                    }
                    items.sort_unstable();
                    items.dedup();
                    Transaction::new(
                        Tid(tid),
                        items.into_iter().map(demon::types::Item).collect(),
                    )
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect()
}

/// The batch model over the golden stream, as the canonical JSON the
/// server answers with.
fn batch_model_json() -> String {
    let mut store = TxStore::new(N_ITEMS);
    let ids: Vec<BlockId> = golden_blocks()
        .into_iter()
        .map(|b| {
            let id = b.id();
            store.add_block(b);
            id
        })
        .collect();
    let model =
        FrequentItemsets::mine_from(&store, &ids, MinSupport::new(MINSUP).unwrap()).unwrap();
    serde_json::to_string(&model).unwrap()
}

/// Spawns `demon-cli serve` on an ephemeral port and parses the resolved
/// address from its startup line. The returned reader holds the stdout
/// pipe open — dropping it early would break the daemon's final print.
fn spawn_daemon(extra: &[&str]) -> (Child, String, impl std::io::BufRead) {
    let mut child = cli()
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--items",
            &N_ITEMS.to_string(),
            "--minsup",
            &MINSUP.to_string(),
        ])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .strip_prefix("demon-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .trim()
        .to_string();
    (child, addr, reader)
}

#[test]
fn daemon_stream_matches_batch_mine_snapshot_loads_and_shutdown_is_clean() {
    let dir = tmp("e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let (mut child, addr, _daemon_out) = spawn_daemon(&[]);

    // Stream the golden blocks over the socket.
    let mut client = Client::connect(&addr).expect("connect");
    for block in golden_blocks() {
        client.ingest(N_ITEMS, &block).expect("ingest acked");
    }

    // The served model is byte-identical to a batch mine over the same
    // stream.
    let served = client.query_model_json().expect("query-model");
    assert_eq!(served, batch_model_json(), "served model diverged from batch");

    // `client query-model` prints exactly what `mine` prints. Persist
    // the stream as a store so `mine` can replay it.
    let store_dir = dir.join("store");
    {
        let mut store = TxStore::new(N_ITEMS);
        for b in golden_blocks() {
            store.add_block(b);
        }
        save_store(&store, &store_dir).unwrap();
    }
    let mine_out = cli()
        .args(["mine", store_dir.to_str().unwrap(), "--minsup", &MINSUP.to_string()])
        .output()
        .expect("mine runs");
    assert!(mine_out.status.success());
    let query_out = cli()
        .args(["client", &addr, "query-model"])
        .output()
        .expect("client runs");
    assert!(query_out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&mine_out.stdout),
        String::from_utf8_lossy(&query_out.stdout),
        "client query-model must print exactly what mine prints"
    );

    // Stats reflect the stream.
    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"blocks\":5"), "{stats}");
    assert!(stats.contains("\"serve.requests\":"), "{stats}");

    // A snapshot lands on disk as a clean, strictly-loadable store.
    let snap = dir.join("snap");
    let blocks = client.snapshot(snap.to_str().unwrap()).expect("snapshot");
    assert_eq!(blocks, 5);
    let report = verify_store(&snap).expect("verify runs");
    assert!(report.is_clean(), "snapshot store damaged: {report:?}");
    let (loaded, _) =
        load_store_configured(&snap, RecoveryPolicy::Strict, &StoreConfig::InMemory)
            .expect("snapshot loads under Strict");
    assert_eq!(loaded.len(), 5);
    let ids = loaded.block_ids().to_vec();
    let remined =
        FrequentItemsets::mine_from(&loaded, &ids, MinSupport::new(MINSUP).unwrap()).unwrap();
    assert_eq!(serde_json::to_string(&remined).unwrap(), served);

    // Shutdown drains and the daemon exits 0.
    client.shutdown().expect("shutdown acked");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon must exit 0 after Shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replayed_block_is_a_typed_remote_error_and_daemon_keeps_serving() {
    let (mut child, addr, _daemon_out) = spawn_daemon(&[]);
    let mut client = Client::connect(&addr).expect("connect");
    let blocks = golden_blocks();
    client.ingest(N_ITEMS, &blocks[0]).unwrap();
    client.ingest(N_ITEMS, &blocks[1]).unwrap();

    // Replaying D2 is a typed remote error, not a dropped connection.
    let err = client.ingest(N_ITEMS, &blocks[1]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("duplicate block"), "{msg}");
    assert!(msg.contains("D2"), "{msg}");

    // The connection and the daemon both survive: the stream continues.
    client.ingest(N_ITEMS, &blocks[2]).expect("stream continues");
    let stats = client.stats_json().unwrap();
    assert!(stats.contains("\"blocks\":3"), "{stats}");
    client.shutdown().unwrap();
    assert!(child.wait().unwrap().success());
}

/// The served model must not depend on the worker count or the storage
/// engine: 1 and 8 workers, with and without a memory budget, all
/// byte-identical to the batch reference.
#[test]
fn served_model_invariant_across_workers_and_memory_budget() {
    let reference = batch_model_json();
    let spill = tmp("spill");
    let budgets: [Option<StoreConfig>; 2] = [
        None,
        Some(StoreConfig::budget(spill.clone(), 4 * 1024)),
    ];
    for workers in [1usize, 8] {
        for budget in &budgets {
            let mut config =
                ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(MINSUP).unwrap());
            config.workers = workers;
            if let Some(b) = budget {
                config.store_config = b.clone();
            }
            let server = Server::bind(config).expect("bind");
            let addr = server.local_addr();
            let handle = std::thread::spawn(move || server.run());
            let mut client = Client::connect(addr).expect("connect");
            for block in golden_blocks() {
                client.ingest(N_ITEMS, &block).expect("ingest");
            }
            let served = client.query_model_json().expect("query");
            assert_eq!(
                served, reference,
                "model diverged at workers={workers}, budget={:?}",
                budget.is_some()
            );
            client.shutdown().expect("shutdown");
            let summary = handle.join().expect("server thread").expect("run ok");
            assert_eq!(summary.blocks, 5);
        }
    }
    std::fs::remove_dir_all(&spill).ok();
}

// ---- the generic daemon: clusters and trees over the same socket ----

const DIM: usize = 2;
const K: usize = 4;
const CLASSES: u32 = 2;

/// A clusters daemon config over a 2-d stream with 4 centroids.
fn cluster_config() -> ServeConfig {
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(MINSUP).unwrap());
    config.model = ModelClass::Clusters;
    config.dim = DIM;
    config.k = K;
    config
}

/// Deterministic point blocks: four tight groups on the diagonal with a
/// small per-block jitter, so the CF-tree has real structure.
fn golden_point_blocks() -> Vec<Block<Point>> {
    (1..=4u64)
        .map(|id| {
            let pts = (0..60u64)
                .map(|i| {
                    let c = (i % 4) as f64 * 25.0;
                    let j = ((id * 13 + i * 7) % 11) as f64 * 0.1;
                    Point::new(vec![c + j, c - j])
                })
                .collect();
            Block::new(BlockId(id), pts)
        })
        .collect()
}

/// The batch BIRCH+ pipeline over the golden points: register + absorb
/// each block in stream order, then the phase-2 model as canonical JSON.
fn batch_cluster_model_json() -> String {
    let params = BirchParams::new(DIM, K);
    let mut maintainer =
        ClusterMaintainer::with_store_config(params, &StoreConfig::InMemory).unwrap();
    let mut model = maintainer.fresh();
    for block in golden_point_blocks() {
        let id = block.id();
        maintainer.register_block(block);
        maintainer.absorb(&mut model, id);
    }
    serde_json::to_string(&phase2_model(&model, &params)).unwrap()
}

/// Deterministic labeled blocks: two well-separated classes with a
/// per-block jitter, so the refitted tree actually splits.
fn golden_labeled_blocks() -> Vec<Block<LabeledPoint>> {
    (1..=3u64)
        .map(|id| {
            let recs = (0..40u64)
                .map(|i| {
                    let label = (i % 2) as u32;
                    let base = f64::from(label) * 50.0;
                    let j = ((id * 17 + i * 5) % 13) as f64 * 0.3;
                    LabeledPoint::new(vec![base + j, base - j], label)
                })
                .collect();
            Block::new(BlockId(id), recs)
        })
        .collect()
}

#[test]
fn birch_daemon_matches_batch_and_snapshot_loads_strict() {
    let dir = tmp("birch");
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::bind(cluster_config()).expect("bind clusters daemon");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    for block in golden_point_blocks() {
        client.ingest_points(DIM as u32, &block).expect("ingest acked");
    }

    // The served cluster model is byte-identical to the batch BIRCH+
    // pipeline over the same stream.
    let served = client
        .query_model_json_for(ModelClass::Clusters)
        .expect("query-model");
    assert_eq!(served, batch_cluster_model_json(), "served model diverged from batch");

    // Class pinning is typed in both directions: a query pinned to the
    // wrong class and an itemset ingest are both refused, and the
    // connection survives.
    let err = client.query_model_json_for(ModelClass::Trees).unwrap_err();
    assert!(matches!(err, DemonError::ModelClassMismatch { .. }), "{err}");
    let err = client.ingest(N_ITEMS, &golden_blocks()[0]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("clusters") && msg.contains("itemsets"), "{msg}");

    // A snapshot lands in the generic framed layout and loads strictly,
    // record-identical to the stream.
    let snap = dir.join("snap");
    let n = client.snapshot(snap.to_str().unwrap()).expect("snapshot");
    assert_eq!(n, 4);
    let loaded = ClusterModel::load_snapshot(&snap, &cluster_config())
        .expect("snapshot loads under Strict");
    assert_eq!(loaded.len(), 4);
    for (got, want) in loaded.iter().zip(golden_point_blocks()) {
        assert_eq!(got.id(), want.id());
        assert_eq!(got.records(), want.records());
    }

    client.shutdown().expect("shutdown");
    let summary = handle.join().expect("server thread").expect("run ok");
    assert_eq!(summary.blocks, 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// A density daemon config over the same 2-d stream. ε = 1.0 reaches
/// across the jitter inside each diagonal group but not between groups.
fn dbscan_config() -> ServeConfig {
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(MINSUP).unwrap());
    config.model = ModelClass::Density;
    config.dim = DIM;
    config.eps = 1.0;
    config.min_pts = 4;
    config
}

/// The batch incremental-DBSCAN pipeline over the golden points:
/// register + absorb each block in stream order, then the windowed
/// summary as canonical JSON — exactly what the daemon renders.
fn batch_dbscan_model_json() -> String {
    let params = DbscanParams::new(DIM, 1.0, 4);
    let mut maintainer =
        DbscanMaintainer::with_store_config(params, &StoreConfig::InMemory).unwrap();
    let mut model = maintainer.fresh();
    for block in golden_point_blocks() {
        let id = block.id();
        maintainer.register_block(block);
        maintainer.absorb(&mut model, id);
    }
    serde_json::to_string(&model.summary()).unwrap()
}

#[test]
fn dbscan_daemon_matches_batch_and_snapshot_loads_strict() {
    let dir = tmp("dbscan");
    std::fs::create_dir_all(&dir).unwrap();
    let server = Server::bind(dbscan_config()).expect("bind density daemon");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    for block in golden_point_blocks() {
        client.ingest_density(DIM as u32, &block).expect("ingest acked");
    }

    // The served density model is byte-identical to the batch
    // incremental-DBSCAN pipeline over the same stream, and the summary
    // sees the four diagonal groups as four clusters.
    let served = client
        .query_model_json_for(ModelClass::Density)
        .expect("query-model");
    assert_eq!(served, batch_dbscan_model_json(), "served model diverged from batch");
    assert!(served.contains("\"n_clusters\":4"), "{served}");
    assert!(served.contains("\"n_noise\":0"), "{served}");

    // Class pinning is typed in both directions: a query pinned to the
    // wrong class and an itemset ingest are both refused, and the
    // connection survives.
    let err = client.query_model_json_for(ModelClass::Clusters).unwrap_err();
    assert!(matches!(err, DemonError::ModelClassMismatch { .. }), "{err}");
    let err = client.ingest(N_ITEMS, &golden_blocks()[0]).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("dbscan") && msg.contains("itemsets"), "{msg}");

    // A snapshot lands in the generic framed layout and loads strictly,
    // record-identical to the stream.
    let snap = dir.join("snap");
    let n = client.snapshot(snap.to_str().unwrap()).expect("snapshot");
    assert_eq!(n, 4);
    let loaded = DbscanModel::load_snapshot(&snap, &dbscan_config())
        .expect("snapshot loads under Strict");
    assert_eq!(loaded.len(), 4);
    for (got, want) in loaded.iter().zip(golden_point_blocks()) {
        assert_eq!(got.id(), want.id());
        assert_eq!(got.records(), want.records());
    }

    client.shutdown().expect("shutdown");
    let summary = handle.join().expect("server thread").expect("run ok");
    assert_eq!(summary.blocks, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tree_daemon_matches_batch_refit() {
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(MINSUP).unwrap());
    config.model = ModelClass::Trees;
    config.dim = DIM;
    config.classes = CLASSES;
    let server = Server::bind(config).expect("bind trees daemon");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    for block in golden_labeled_blocks() {
        client.ingest_labeled(DIM as u32, &block).expect("ingest acked");
    }

    let served = client
        .query_model_json_for(ModelClass::Trees)
        .expect("query-model");
    let batch = {
        let mut maintainer = TreeMaintainer::with_store_config(
            DIM,
            TreeParams::new(CLASSES),
            &StoreConfig::InMemory,
        )
        .unwrap();
        let mut model = maintainer.fresh();
        for block in golden_labeled_blocks() {
            let id = block.id();
            maintainer.register_block(block);
            maintainer.absorb(&mut model, id);
        }
        serde_json::to_string(&model).unwrap()
    };
    assert_eq!(served, batch, "served tree diverged from batch refit");

    client.shutdown().expect("shutdown");
    let summary = handle.join().expect("server thread").expect("run ok");
    assert_eq!(summary.blocks, 3);
}

/// Sharding needs an exact merge; clusters, trees and density models
/// don't have one, so `--shards ≥ 2` is a typed refusal at bind time,
/// not a wrong answer.
#[test]
fn sharding_is_refused_for_classes_without_exact_merge() {
    for class in [ModelClass::Clusters, ModelClass::Trees, ModelClass::Density] {
        let mut config = cluster_config();
        config.model = class;
        config.classes = CLASSES;
        config.shards = 4;
        let err = match Server::bind(config) {
            Ok(_) => panic!("bind must refuse --shards 4 for {}", class.name()),
            Err(e) => e,
        };
        assert!(matches!(err, DemonError::ShardsUnsupported { .. }), "{err}");
        let msg = err.to_string();
        assert!(
            msg.contains(class.name()) && msg.contains("--shards 1"),
            "{msg}"
        );
    }
}

/// WAL records carry the model class: a daemon of another class refuses
/// to replay them (typed, at bind), while the rightful class recovers.
#[test]
fn cross_class_wal_replay_is_refused() {
    let wal_dir = tmp("cross-class-wal");
    std::fs::remove_dir_all(&wal_dir).ok();
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(MINSUP).unwrap());
    config.wal_dir = Some(wal_dir.clone());
    let server = Server::bind(config).expect("bind durable itemsets daemon");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    for block in golden_blocks().into_iter().take(2) {
        client.ingest(N_ITEMS, &block).expect("ingest acked");
    }
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("run ok");

    // A clusters daemon pointed at the itemset WAL refuses to start.
    let mut config = cluster_config();
    config.wal_dir = Some(wal_dir.clone());
    let err = match Server::bind(config) {
        Ok(_) => panic!("cross-class replay must be refused"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, DemonError::ModelClassMismatch { expected, got }
            if expected == "clusters" && got == "itemsets"),
        "{err}"
    );

    // So does a density daemon: the WAL class byte distinguishes all
    // four model classes, not just the original pair.
    let mut config = dbscan_config();
    config.wal_dir = Some(wal_dir.clone());
    let err = match Server::bind(config) {
        Ok(_) => panic!("cross-class replay must be refused for dbscan"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, DemonError::ModelClassMismatch { expected, got }
            if expected == "dbscan" && got == "itemsets"),
        "{err}"
    );

    // The rightful class still recovers every acked block.
    let mut config = ServeConfig::new("127.0.0.1:0", N_ITEMS, MinSupport::new(MINSUP).unwrap());
    config.wal_dir = Some(wal_dir.clone());
    let server = Server::bind(config).expect("same-class recovery");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect after recovery");
    let stats = client.stats_json().expect("stats");
    assert!(stats.contains("\"blocks\":2"), "{stats}");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("run ok");
    std::fs::remove_dir_all(&wal_dir).ok();
}
