//! Property-based tests of the core invariants, across crates.

use demon::clustering::cftree::CfTreeParams;
use demon::clustering::{CfTree, ClusterFeature};
use demon::core::bss::{BlockSelector, WrBss};
use demon::core::{Gemm, ItemsetMaintainer};
use demon::focus::compact::CompactSequenceMiner;
use demon::focus::similarity::SimilarityOracle;
use demon::itemsets::apriori;
use demon::itemsets::counter::count_supports;
use demon::itemsets::tidlist::intersect_all;
use demon::itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon::types::{Block, BlockId, Item, ItemSet, MinSupport, Point, Tid, Transaction, TxBlock};
use proptest::prelude::*;
use std::collections::BTreeSet;

const UNIVERSE: u32 = 12;

/// A strategy for a stream of small random blocks over a 12-item universe.
fn blocks_strategy(max_blocks: usize) -> impl Strategy<Value = Vec<TxBlock>> {
    prop::collection::vec(
        prop::collection::vec(
            prop::collection::vec(0..UNIVERSE, 1..6),
            5..40,
        ),
        1..=max_blocks,
    )
    .prop_map(|raw_blocks| {
        let mut tid = 1u64;
        raw_blocks
            .into_iter()
            .enumerate()
            .map(|(i, txs)| {
                let records: Vec<Transaction> = txs
                    .into_iter()
                    .map(|items| {
                        let t = Transaction::new(Tid(tid), items.into_iter().map(Item).collect());
                        tid += 1;
                        t
                    })
                    .collect();
                Block::new(BlockId(i as u64 + 1), records)
            })
            .collect()
    })
}

fn minsup_strategy() -> impl Strategy<Value = MinSupport> {
    (0.05f64..0.5).prop_map(|k| MinSupport::new(k).unwrap())
}

fn store_of(blocks: &[TxBlock]) -> TxStore {
    let mut store = TxStore::new(UNIVERSE);
    for b in blocks {
        store.add_block(b.clone());
    }
    store
}

fn freq_of(m: &FrequentItemsets) -> Vec<(ItemSet, u64)> {
    m.frequent_sorted()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BORDERS absorbing block-by-block reaches exactly the batch-mined
    /// model, for every counter.
    #[test]
    fn incremental_equals_batch(blocks in blocks_strategy(4), minsup in minsup_strategy()) {
        let store = store_of(&blocks);
        let batch = FrequentItemsets::mine_from(&store, store.block_ids(), minsup).unwrap();
        for counter in [CounterKind::PtScan, CounterKind::Ecut] {
            let mut inc = FrequentItemsets::empty(minsup, UNIVERSE);
            for b in &blocks {
                inc.absorb_block(&store, b.id(), counter).unwrap();
            }
            prop_assert_eq!(freq_of(&inc), freq_of(&batch));
            inc.check_invariants(&store);
        }
    }

    /// Absorbing then removing a block is the identity on the model.
    #[test]
    fn remove_inverts_absorb(blocks in blocks_strategy(3), minsup in minsup_strategy()) {
        prop_assume!(blocks.len() >= 2);
        let store = store_of(&blocks);
        let mut model = FrequentItemsets::empty(minsup, UNIVERSE);
        for b in blocks.iter().take(blocks.len() - 1) {
            model.absorb_block(&store, b.id(), CounterKind::Ecut).unwrap();
        }
        let before = freq_of(&model);
        let last = blocks.last().unwrap().id();
        model.absorb_block(&store, last, CounterKind::Ecut).unwrap();
        model.remove_block(&store, last, CounterKind::Ecut).unwrap();
        prop_assert_eq!(freq_of(&model), before);
        model.check_invariants(&store);
    }

    /// All three counters agree with naive counting on arbitrary candidates.
    #[test]
    fn counters_agree_with_naive(
        blocks in blocks_strategy(3),
        cands in prop::collection::vec(prop::collection::vec(0..UNIVERSE, 1..4), 1..10),
    ) {
        let mut store = store_of(&blocks);
        let all_pairs: Vec<(Item, Item)> = (0..UNIVERSE)
            .flat_map(|a| (a + 1..UNIVERSE).map(move |b| (Item(a), Item(b))))
            .collect();
        for b in &blocks {
            store.materialize_pairs(b.id(), &all_pairs, None);
        }
        let ids = store.block_ids();
        let candidates: Vec<ItemSet> = {
            let mut seen = BTreeSet::new();
            cands
                .into_iter()
                .map(|v| ItemSet::new(v.into_iter().map(Item).collect()))
                .filter(|s| seen.insert(s.clone()))
                .collect()
        };
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        for kind in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
            let r = count_supports(kind, &store, ids, &candidates);
            for (cand, &got) in candidates.iter().zip(&r.counts) {
                prop_assert_eq!(got, apriori::naive_support(cand, &refs), "{}", kind.name());
            }
        }
    }

    /// k-way TID-list intersection equals set intersection.
    #[test]
    fn intersection_equals_set_semantics(
        lists in prop::collection::vec(prop::collection::btree_set(0u64..200, 0..40), 1..5),
    ) {
        let vecs: Vec<Vec<Tid>> = lists
            .iter()
            .map(|s| s.iter().map(|&v| Tid(v)).collect())
            .collect();
        let slices: Vec<&[Tid]> = vecs.iter().map(|v| v.as_slice()).collect();
        let got: BTreeSet<u64> = intersect_all(&slices).into_iter().map(|t| t.0).collect();
        let expected = lists
            .iter()
            .skip(1)
            .fold(lists[0].clone(), |acc, s| acc.intersection(s).copied().collect());
        prop_assert_eq!(got, expected);
    }

    /// GEMM's current model matches scratch-mining the selected window,
    /// for an arbitrary window-relative BSS.
    #[test]
    fn gemm_matches_scratch_for_random_wr_bss(
        blocks in blocks_strategy(6),
        bits in prop::collection::vec(any::<bool>(), 2..4),
        minsup in minsup_strategy(),
    ) {
        prop_assume!(bits.iter().any(|&b| b));
        let w = bits.len();
        let selector = BlockSelector::WindowRelative(WrBss::new(bits));
        let maintainer = ItemsetMaintainer::new(UNIVERSE, minsup, CounterKind::Ecut);
        let mut gemm = Gemm::new(maintainer, w, selector.clone())
            .unwrap()
            .with_retirement(false);
        let store = store_of(&blocks);
        for b in &blocks {
            gemm.add_block(b.clone()).unwrap();
        }
        let t = blocks.len() as u64;
        let start = BlockId(t.saturating_sub(w as u64 - 1).max(1));
        let selected = selector.selected_in_window(start, w, BlockId(t));
        let batch = FrequentItemsets::mine_from(&store, &selected, minsup).unwrap();
        prop_assert_eq!(
            freq_of(gemm.current_model().unwrap()),
            freq_of(&batch)
        );
    }

    /// GEMM's current model matches scratch-mining under an arbitrary
    /// *window-independent* periodic BSS too.
    #[test]
    fn gemm_matches_scratch_for_random_wi_bss(
        blocks in blocks_strategy(6),
        pattern in prop::collection::vec(any::<bool>(), 1..4),
        w in 2usize..4,
        minsup in minsup_strategy(),
    ) {
        use demon::core::bss::WiBss;
        prop_assume!(pattern.iter().any(|&b| b));
        let selector = BlockSelector::WindowIndependent(WiBss::Periodic {
            pattern: pattern.clone(),
        });
        let maintainer = ItemsetMaintainer::new(UNIVERSE, minsup, CounterKind::Ecut);
        let mut gemm = Gemm::new(maintainer, w, selector.clone())
            .unwrap()
            .with_retirement(false);
        let store = store_of(&blocks);
        for b in &blocks {
            gemm.add_block(b.clone()).unwrap();
        }
        let t = blocks.len() as u64;
        let start = BlockId(t.saturating_sub(w as u64 - 1).max(1));
        let selected = selector.selected_in_window(start, w, BlockId(t));
        let batch = FrequentItemsets::mine_from(&store, &selected, minsup).unwrap();
        prop_assert_eq!(freq_of(gemm.current_model().unwrap()), freq_of(&batch));
    }

    /// GEMM and AuM agree on the maintained model for arbitrary
    /// window-relative BSS — two very different algorithms, one result.
    #[test]
    fn gemm_and_aum_agree(
        blocks in blocks_strategy(6),
        bits in prop::collection::vec(any::<bool>(), 2..4),
        minsup in minsup_strategy(),
    ) {
        use demon::core::aum::AumWindow;
        prop_assume!(bits.iter().any(|&b| b));
        let w = bits.len();
        let selector = BlockSelector::WindowRelative(WrBss::new(bits));
        let mut gemm = Gemm::new(
            ItemsetMaintainer::new(UNIVERSE, minsup, CounterKind::Ecut),
            w,
            selector.clone(),
        )
        .unwrap();
        let mut aum = AumWindow::new(
            ItemsetMaintainer::new(UNIVERSE, minsup, CounterKind::Ecut),
            w,
            selector,
        )
        .unwrap();
        for b in &blocks {
            gemm.add_block(b.clone()).unwrap();
            aum.add_block(b.clone()).unwrap();
        }
        prop_assert_eq!(
            freq_of(gemm.current_model().unwrap()),
            freq_of(aum.model())
        );
    }

    /// The CF-tree conserves mass and keeps its summaries consistent under
    /// arbitrary insertion orders.
    #[test]
    fn cftree_conserves_mass(
        points in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 2), 1..120),
        threshold2 in 0.0f64..25.0,
    ) {
        let params = CfTreeParams {
            branching: 4,
            leaf_capacity: 4,
            threshold2,
            max_leaf_entries: 64,
            dim: 2,
        };
        let mut tree = CfTree::new(params);
        let mut sum = [0.0f64; 2];
        for p in &points {
            tree.insert_point(&Point::new(p.clone()));
            sum[0] += p[0];
            sum[1] += p[1];
        }
        tree.check_invariants();
        prop_assert_eq!(tree.n_points(), points.len() as u64);
        let total: ClusterFeature = {
            let mut acc = ClusterFeature::empty(2);
            for cf in tree.leaf_entries() {
                acc.merge(&cf);
            }
            acc
        };
        // Linear sums survive arbitrary splits/rebuilds.
        prop_assert!((total.linear_sum()[0] - sum[0]).abs() < 1e-6);
        prop_assert!((total.linear_sum()[1] - sum[1]).abs() < 1e-6);
    }

    /// Compact-sequence mining keeps the Definition 4.1 invariants for an
    /// arbitrary (deterministic) similarity relation.
    #[test]
    fn compact_sequences_respect_definition(seed in 0u64..5000, n in 2usize..12) {
        struct HashOracle(u64);
        impl SimilarityOracle for HashOracle {
            fn similar(&mut self, a: &TxBlock, b: &TxBlock) -> (bool, f64) {
                let (x, y) = (a.id().value().min(b.id().value()), a.id().value().max(b.id().value()));
                // A fixed pseudo-random symmetric relation.
                let h = x
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(y.wrapping_mul(0xD1B54A32D192ED03))
                    .wrapping_add(self.0);
                let sim = (h >> 7) % 3 == 0;
                (sim, if sim { 0.0 } else { 1.0 })
            }
        }
        let mut miner = CompactSequenceMiner::new(HashOracle(seed));
        for id in 1..=n as u64 {
            miner.add_block(TxBlock::new(BlockId(id), vec![]));
        }
        miner.check_invariants();
        // One sequence per block, and each block belongs to at least one.
        prop_assert_eq!(miner.sequences().len(), n);
        let maximal = miner.maximal_sequences();
        for id in 1..=n as u64 {
            prop_assert!(
                maximal.iter().any(|s| s.contains(&BlockId(id))),
                "block {id} not covered by any maximal sequence"
            );
        }
    }

    /// FUP and BORDERS (all counters) agree with batch mining on arbitrary
    /// block streams.
    #[test]
    fn fup_equals_borders_equals_batch(
        blocks in blocks_strategy(3),
        minsup in minsup_strategy(),
    ) {
        use demon::itemsets::FupModel;
        let store = store_of(&blocks);
        let batch = FrequentItemsets::mine_from(&store, store.block_ids(), minsup).unwrap();
        let mut fup = FupModel::empty(minsup, UNIVERSE);
        for b in &blocks {
            fup.absorb_block(&store, b.id()).unwrap();
        }
        prop_assert_eq!(fup.frequent(), batch.frequent());
    }

    /// Every derived association rule has exact statistics and respects
    /// the confidence threshold; antecedent and consequent partition the
    /// source itemset.
    #[test]
    fn rules_have_exact_statistics(
        blocks in blocks_strategy(2),
        minconf in 0.0f64..1.0,
    ) {
        use demon::itemsets::derive_rules;
        let store = store_of(&blocks);
        let minsup = MinSupport::new(0.1).unwrap();
        let model = FrequentItemsets::mine_from(&store, store.block_ids(), minsup).unwrap();
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        let n = model.n_transactions();
        for rule in derive_rules(&model, minconf) {
            prop_assert!(rule.confidence >= minconf);
            prop_assert!(rule.confidence <= 1.0 + 1e-12);
            let z = rule.antecedent.union(&rule.consequent);
            prop_assert_eq!(
                z.len(),
                rule.antecedent.len() + rule.consequent.len(),
                "antecedent and consequent must be disjoint"
            );
            let sz = apriori::naive_support(&z, &refs);
            let sa = apriori::naive_support(&rule.antecedent, &refs);
            prop_assert!((rule.support - sz as f64 / n as f64).abs() < 1e-9);
            prop_assert!((rule.confidence - sz as f64 / sa as f64).abs() < 1e-9);
        }
    }

    /// The windowed compact miner over a full-history oracle agrees with
    /// the unrestricted miner restricted to the window, for sequences
    /// entirely inside the window.
    #[test]
    fn windowed_miner_bounds_live_blocks(seed in 0u64..2000, n in 3usize..14, w in 2usize..6) {
        use demon::focus::similarity::SimilarityOracle;
        use demon::focus::WindowedCompactMiner;
        struct HashOracle(u64);
        impl SimilarityOracle for HashOracle {
            fn similar(&mut self, a: &TxBlock, b: &TxBlock) -> (bool, f64) {
                let (x, y) = (
                    a.id().value().min(b.id().value()),
                    a.id().value().max(b.id().value()),
                );
                let h = x
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(y.wrapping_mul(0xD1B54A32D192ED03))
                    .wrapping_add(self.0);
                ((h >> 5) % 2 == 0, 0.5)
            }
        }
        let mut miner = WindowedCompactMiner::new(HashOracle(seed), w);
        for id in 1..=n as u64 {
            miner.add_block(TxBlock::new(BlockId(id), vec![]));
            miner.check_invariants();
            prop_assert!(miner.n_live() <= w);
        }
        // Every live sequence references only in-window blocks.
        let window_start = (n as u64).saturating_sub(w as u64 - 1).max(1);
        for seq in miner.sequences() {
            for b in seq {
                prop_assert!(b.value() >= window_start);
            }
        }
    }

    /// The TID-list codec round-trips arbitrary sorted lists and its
    /// streamed intersection equals the in-memory one.
    #[test]
    fn codec_roundtrip_and_intersection(
        a in prop::collection::btree_set(0u64..100_000, 0..200),
        b in prop::collection::btree_set(0u64..100_000, 0..200),
    ) {
        use demon::itemsets::codec;
        let va: Vec<Tid> = a.iter().map(|&v| Tid(v)).collect();
        let vb: Vec<Tid> = b.iter().map(|&v| Tid(v)).collect();
        let (ea, eb) = (codec::encode(&va), codec::encode(&vb));
        prop_assert_eq!(codec::decode(&ea).unwrap(), va.clone());
        let expected: Vec<Tid> = a.intersection(&b).map(|&v| Tid(v)).collect();
        prop_assert_eq!(codec::intersect_encoded(&ea, &eb), expected);
    }

    /// Store persistence round-trips arbitrary block streams, including
    /// block intervals and materialized pair TID-lists.
    #[test]
    fn persistence_roundtrips(blocks in blocks_strategy(3), case in 0u64..1_000_000) {
        use demon::itemsets::persist::{load_store, save_store, verify_store};
        use demon::types::{BlockInterval, Timestamp};
        let mut store = TxStore::new(UNIVERSE);
        for (i, b) in blocks.iter().enumerate() {
            // Odd blocks carry a validity interval, even ones do not —
            // both shapes must survive the round-trip.
            let block = if i % 2 == 1 {
                let s = i as u64 * 100;
                Block::with_interval(
                    b.id(),
                    BlockInterval::new(Timestamp(s), Timestamp(s + 100)),
                    b.records().to_vec(),
                )
            } else {
                b.clone()
            };
            store.add_block(block);
        }
        let pairs = [(Item(0), Item(1)), (Item(2), Item(5))];
        for b in &blocks {
            store.materialize_pairs(b.id(), &pairs, None);
        }
        let dir = std::env::temp_dir().join(format!(
            "demon-proptest-persist-{}-{case}",
            std::process::id()
        ));
        save_store(&store, &dir).unwrap();
        prop_assert!(verify_store(&dir).unwrap().is_clean());
        let back = load_store(&dir).unwrap();
        prop_assert_eq!(back.block_ids(), store.block_ids());
        prop_assert_eq!(back.n_items(), store.n_items());
        for &id in store.block_ids() {
            prop_assert_eq!(
                back.block(id).unwrap().records(),
                store.block(id).unwrap().records()
            );
            prop_assert_eq!(
                back.block(id).unwrap().interval(),
                store.block(id).unwrap().interval()
            );
            let (orig, reloaded) = (store.tidlists().block(id), back.tidlists().block(id));
            match (orig, reloaded) {
                (Some(o), Some(r)) => {
                    for i in 0..UNIVERSE {
                        prop_assert_eq!(o.item_list(Item(i)), r.item_list(Item(i)));
                    }
                    for &(a, b) in &pairs {
                        prop_assert_eq!(o.pair_list(a, b), r.pair_list(a, b));
                    }
                }
                (o, r) => prop_assert_eq!(o.is_some(), r.is_some()),
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corrupting any single byte (or truncating at any length) of any
    /// store file yields an error under `Strict` — never a panic — and
    /// `SalvagePrefix` still produces a loadable store.
    #[test]
    fn persistence_survives_arbitrary_corruption(
        blocks in blocks_strategy(2),
        case in 0u64..1_000_000,
        damage in 0usize..10_000,
        flip in prop::bool::ANY,
    ) {
        use demon::itemsets::persist::{
            load_store, load_store_with, save_store, RecoveryPolicy,
        };
        let store = store_of(&blocks);
        let dir = std::env::temp_dir().join(format!(
            "demon-proptest-corrupt-{}-{case}",
            std::process::id()
        ));
        save_store(&store, &dir).unwrap();
        // Pick a file and an offset pseudo-randomly from the damage seed.
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        let path = &files[damage % files.len()];
        let mut bytes = std::fs::read(path).unwrap();
        let offset = (damage / files.len()) % bytes.len().max(1);
        if flip {
            bytes[offset] ^= 0xFF;
        } else {
            bytes.truncate(offset);
        }
        std::fs::write(path, &bytes).unwrap();
        // Strict: typed error or (for benign damage like truncating a
        // file to its exact old length) success — but never a panic.
        let _ = load_store(&dir);
        // Salvage: always lands on a loadable store.
        match load_store_with(&dir, RecoveryPolicy::SalvagePrefix) {
            Ok((salvaged, _report)) => {
                let (reloaded, report) =
                    load_store_with(&dir, RecoveryPolicy::SalvagePrefix).unwrap();
                prop_assert!(report.is_clean(), "second salvage must be clean");
                prop_assert_eq!(reloaded.block_ids(), salvaged.block_ids());
            }
            Err(e) => {
                // Only unreadable directories may fail salvage outright.
                prop_assert!(
                    matches!(e, demon::types::DemonError::Io(_)),
                    "salvage failed with non-I/O error: {e}"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Cyclic subsequences really are arithmetic and really are subsets.
    #[test]
    fn cyclic_subsequences_are_arithmetic_subsets(
        ids in prop::collection::btree_set(1u64..60, 3..20),
    ) {
        use demon::focus::cyclic_subsequences;
        let seq: Vec<BlockId> = ids.iter().map(|&v| BlockId(v)).collect();
        for cyc in cyclic_subsequences(&seq, 3) {
            prop_assert!(cyc.len() >= 3);
            for w in cyc.blocks.windows(2) {
                prop_assert_eq!(w[1].value() - w[0].value(), cyc.period);
            }
            for b in &cyc.blocks {
                prop_assert!(seq.contains(b));
            }
        }
    }

    /// Negative-border definition holds for arbitrary data: every minimal
    /// infrequent itemset (over sets of size ≤ 3) is tracked in the border.
    #[test]
    fn border_is_complete_for_small_itemsets(
        blocks in blocks_strategy(2),
        minsup in minsup_strategy(),
    ) {
        let store = store_of(&blocks);
        let model = FrequentItemsets::mine_from(&store, store.block_ids(), minsup).unwrap();
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        let thresh = minsup.count_for(model.n_transactions());
        // Enumerate all itemsets of size ≤ 3 and check the definition.
        let items: Vec<u32> = (0..UNIVERSE).collect();
        let mut all: Vec<ItemSet> = Vec::new();
        for i in 0..items.len() {
            all.push(ItemSet::from_ids(&[items[i]]));
            for j in i + 1..items.len() {
                all.push(ItemSet::from_ids(&[items[i], items[j]]));
                for l in j + 1..items.len() {
                    all.push(ItemSet::from_ids(&[items[i], items[j], items[l]]));
                }
            }
        }
        for set in &all {
            let support = apriori::naive_support(set, &refs);
            let infrequent = support < thresh;
            let subsets_frequent = set
                .proper_maximal_subsets()
                .all(|s| s.is_empty() || model.is_frequent(&s));
            if infrequent && subsets_frequent {
                prop_assert!(
                    model.border().contains_key(set),
                    "minimal infrequent {set} missing from border"
                );
            }
            if !infrequent {
                prop_assert!(
                    model.is_frequent(set) || !subsets_frequent,
                    "frequent {set} with frequent subsets missing from L"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Observability-layer properties.
//
// The recorder is process-global, so these tests serialize on OBS_LOCK:
// at most one of them has the recorder enabled at a time. Counter
// assertions only read counters no *other* test in this binary touches
// (bootstrap resamples, phase-2 iterations), so the concurrent mining
// proptests above cannot pollute them.
// ---------------------------------------------------------------------

static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Builds `depth` nested spans, then unwinds them.
fn nested_spans(names: &[&'static str], depth: usize) {
    if depth == 0 {
        return;
    }
    let _span = demon::types::obs::span(names[depth % names.len()]);
    nested_spans(names, depth - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Obs counter totals are identical at 1, 2 and 8 threads.
    #[test]
    fn obs_counter_totals_thread_invariant(
        blocks in blocks_strategy(2),
        n_resamples in 1usize..12,
        kseed in 0u64..1000,
    ) {
        use demon::clustering::global::kmeans;
        use demon::clustering::ClusterFeature;
        use demon::focus::bootstrap_significance_with;
        use demon::types::obs::{self, Counter};
        use demon::types::{Parallelism, Point};
        prop_assume!(blocks.len() >= 2);

        let features: Vec<ClusterFeature> = (0..20)
            .map(|i| {
                ClusterFeature::from_point(&Point::new(vec![
                    f64::from(i % 4) * 10.0,
                    f64::from(i / 4),
                ]))
            })
            .collect();

        let guard = obs_guard();
        let mut deltas = Vec::new();
        for threads in [1usize, 2, 8] {
            let before = (
                obs::counter_value(Counter::BootstrapResamples),
                obs::counter_value(Counter::Phase2Iterations),
            );
            obs::enable();
            let _ = bootstrap_significance_with(
                &blocks[0],
                &blocks[1],
                UNIVERSE,
                MinSupport::new(0.2).unwrap(),
                n_resamples,
                7,
                Parallelism::new(threads),
            );
            demon::types::parallel::set_global(Parallelism::new(threads));
            let _ = kmeans(&features, 3, kseed, 16);
            demon::types::parallel::set_global(Parallelism::new(0));
            obs::disable();
            let after = (
                obs::counter_value(Counter::BootstrapResamples),
                obs::counter_value(Counter::Phase2Iterations),
            );
            deltas.push((after.0 - before.0, after.1 - before.1));
        }
        drop(guard);
        prop_assert_eq!(deltas[0].0, n_resamples as u64);
        prop_assert!(deltas[0].1 > 0, "k-means never iterated");
        prop_assert_eq!(deltas[0], deltas[1], "totals diverged at 2 threads");
        prop_assert_eq!(deltas[0], deltas[2], "totals diverged at 8 threads");
    }

    /// Arbitrary span nestings render as well-formed JSONL: every line
    /// parses, `seq` is dense from 0, and begin/end pairs nest like a
    /// Dyck word with matching names.
    #[test]
    fn obs_span_nesting_is_well_formed(
        shape in prop::collection::vec(0usize..5, 1..6),
    ) {
        use demon::types::obs;
        const NAMES: [&str; 3] = ["load", "count", "merge"];

        let guard = obs_guard();
        let _ = obs::drain_events();
        obs::enable();
        for &depth in &shape {
            nested_spans(&NAMES, depth);
        }
        obs::emit_counters_event();
        obs::disable();
        let jsonl = obs::events_jsonl();
        let events = obs::drain_events();
        drop(guard);

        let expected = 2 * shape.iter().sum::<usize>() + 1;
        prop_assert_eq!(events.len(), expected);
        prop_assert_eq!(jsonl.lines().count(), expected);

        let mut stack: Vec<String> = Vec::new();
        for (i, line) in jsonl.lines().enumerate() {
            let v: serde_json::Value =
                serde_json::from_str(line).expect("every event line is valid JSON");
            prop_assert_eq!(v.get("seq").and_then(|s| s.as_u64()), Some(i as u64));
            let kind = v.get("type").and_then(|t| t.as_str()).unwrap_or("");
            match kind {
                "span_begin" => {
                    stack.push(v.get("name").and_then(|n| n.as_str()).unwrap().to_string());
                }
                "span_end" => {
                    let name = v.get("name").and_then(|n| n.as_str()).unwrap();
                    prop_assert_eq!(stack.pop().as_deref(), Some(name), "mismatched span end");
                    prop_assert!(v.get("us").and_then(|u| u.as_u64()).is_some());
                }
                "counters" => prop_assert!(stack.is_empty(), "counters event inside a span"),
                other => prop_assert!(false, "unexpected event type {:?}", other),
            }
        }
        prop_assert!(stack.is_empty(), "unclosed spans: {:?}", stack);
    }

    /// With the recorder disabled, arbitrary instrumented work emits no
    /// events and moves no counters.
    #[test]
    fn obs_disabled_records_nothing(blocks in blocks_strategy(2), depth in 1usize..5) {
        use demon::types::obs;
        let guard = obs_guard();
        let _ = obs::drain_events();
        let before = obs::snapshot();
        nested_spans(&["idle"], depth);
        let refs: Vec<&TxBlock> = blocks.iter().collect();
        let _ = FrequentItemsets::mine_blocks(&refs, UNIVERSE, MinSupport::new(0.2).unwrap());
        let events = obs::drain_events();
        let after = obs::snapshot();
        drop(guard);
        prop_assert!(events.is_empty(), "disabled recorder buffered {} events", events.len());
        prop_assert_eq!(before, after);
    }
}

/// A sorted, deduplicated TID-list with one of four window densities —
/// from bitmap-friendly dense to gallop-friendly sparse — so the kernel
/// dispatcher's whole decision table gets exercised.
fn tid_list_strategy() -> impl Strategy<Value = Vec<Tid>> {
    (1u64..=4, prop::collection::vec(0u64..10_000_000, 0..200)).prop_map(|(density, raw)| {
        let span = match density {
            1 => 64u64,
            2 => 2_000,
            3 => 100_000,
            _ => 10_000_000,
        };
        let mut v: Vec<u64> = raw.into_iter().map(|x| x % span).collect();
        v.sort_unstable();
        v.dedup();
        v.into_iter().map(Tid).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every pairwise intersection kernel — naive two-pointer merge,
    /// galloping, bitset-chunk — plus the dispatching entry points and
    /// the count-only variants produce the identical intersection on
    /// arbitrary TID-lists (empty, disjoint, dense and sparse included).
    #[test]
    fn intersection_kernels_agree(a in tid_list_strategy(), b in tid_list_strategy()) {
        use demon::itemsets::tidlist::{
            intersect_bitset_into, intersect_count, intersect_gallop_into, intersect_into,
            intersect_merge_into, intersect_sorted_count, IntersectScratch,
        };
        let mut scratch = IntersectScratch::new();
        let (mut merge, mut gallop, mut bitset, mut dispatch) =
            (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        intersect_merge_into(&a, &b, &mut merge);
        intersect_gallop_into(&a, &b, &mut gallop);
        intersect_bitset_into(&a, &b, &mut bitset, &mut scratch);
        intersect_into(&a, &b, &mut dispatch, &mut scratch);

        // Ground truth via set intersection.
        let sa: BTreeSet<Tid> = a.iter().copied().collect();
        let sb: BTreeSet<Tid> = b.iter().copied().collect();
        let expect: Vec<Tid> = sa.intersection(&sb).copied().collect();

        prop_assert_eq!(&merge, &expect, "merge kernel");
        prop_assert_eq!(&gallop, &expect, "gallop kernel");
        prop_assert_eq!(&bitset, &expect, "bitset kernel");
        prop_assert_eq!(&dispatch, &expect, "dispatched kernel");
        prop_assert_eq!(intersect_count(&a, &b, &mut scratch), expect.len() as u64);

        // The multiway count-only fold agrees on a 3-list conjunction
        // (a ∩ b ∩ a = a ∩ b) with dirty, reused scratch buffers.
        let mut lists: Vec<&[Tid]> = vec![&a, &b, &a];
        prop_assert_eq!(
            intersect_sorted_count(&mut lists, &mut scratch),
            expect.len() as u64
        );
    }
}
