//! End-to-end integration tests of the frequent-itemset stack: Quest data
//! flowing through engines, cross-validated against batch mining.

use demon::core::bss::{BlockSelector, WiBss, WrBss};
use demon::core::engine::{DataSpan, DemonEngine};
use demon::core::{Gemm, ItemsetMaintainer, ShelfMode};
use demon::datagen::{QuestGen, QuestParams};
use demon::itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon::types::{Block, BlockId, MinSupport, Tid, Transaction, TxBlock};

const N_ITEMS: u32 = 120;

fn quest_stream(n_blocks: u64, per_block: usize, seed: u64) -> Vec<TxBlock> {
    let params = QuestParams {
        n_transactions: 0,
        avg_tx_len: 6.0,
        n_items: N_ITEMS,
        n_patterns: 40,
        avg_pattern_len: 3.0,
        ..QuestParams::default()
    };
    let mut gen = QuestGen::new(params, seed);
    let mut tid = 1u64;
    (1..=n_blocks)
        .map(|id| {
            let txs: Vec<Transaction> = gen
                .take_transactions(per_block)
                .into_iter()
                .map(|t| {
                    let tx = Transaction::from_sorted(Tid(tid), t.items().to_vec());
                    tid += 1;
                    tx
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect()
}

fn k(v: f64) -> MinSupport {
    MinSupport::new(v).unwrap()
}

fn assert_models_equal(a: &FrequentItemsets, b: &FrequentItemsets, ctx: &str) {
    assert_eq!(a.n_transactions(), b.n_transactions(), "{ctx}: n differs");
    assert_eq!(a.frequent(), b.frequent(), "{ctx}: frequent sets differ");
}

#[test]
fn every_counter_reaches_the_same_model() {
    let blocks = quest_stream(5, 400, 11);
    let mut reference: Option<FrequentItemsets> = None;
    for counter in [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus] {
        let mut engine = DemonEngine::new(
            ItemsetMaintainer::new(N_ITEMS, k(0.02), counter),
            DataSpan::Unrestricted(WiBss::All),
        )
        .unwrap();
        for b in blocks.clone() {
            engine.add_block(b).unwrap();
        }
        let model = engine.current_model().unwrap().clone();
        model.check_invariants(engine.maintainer().store());
        match &reference {
            None => reference = Some(model),
            Some(r) => assert_models_equal(r, &model, counter.name()),
        }
    }
}

#[test]
fn incremental_uw_equals_batch_mining() {
    let blocks = quest_stream(6, 300, 13);
    let mut engine = DemonEngine::new(
        ItemsetMaintainer::new(N_ITEMS, k(0.03), CounterKind::Ecut),
        DataSpan::Unrestricted(WiBss::All),
    )
    .unwrap();
    let mut store = TxStore::new(N_ITEMS);
    for b in blocks {
        store.add_block(b.clone());
        engine.add_block(b).unwrap();
    }
    let batch = FrequentItemsets::mine_from(&store, store.block_ids(), k(0.03)).unwrap();
    assert_models_equal(engine.current_model().unwrap(), &batch, "UW vs batch");
}

#[test]
fn gemm_sliding_window_equals_batch_mining_at_every_step() {
    let blocks = quest_stream(8, 250, 17);
    let w = 3;
    let mut gemm = Gemm::new(
        ItemsetMaintainer::new(N_ITEMS, k(0.03), CounterKind::Ecut),
        w,
        BlockSelector::all(),
    )
    .unwrap();
    let mut store = TxStore::new(N_ITEMS);
    for (i, b) in blocks.into_iter().enumerate() {
        store.add_block(b.clone());
        gemm.add_block(b).unwrap();
        let t = i as u64 + 1;
        let start = t.saturating_sub(w as u64 - 1).max(1);
        let window: Vec<BlockId> = (start..=t).map(BlockId).collect();
        let batch = FrequentItemsets::mine_from(&store, &window, k(0.03)).unwrap();
        assert_models_equal(
            gemm.current_model().unwrap(),
            &batch,
            &format!("window ending at D{t}"),
        );
    }
}

#[test]
fn gemm_with_window_relative_bss_and_disk_shelf() {
    let blocks = quest_stream(7, 200, 19);
    let dir = std::env::temp_dir().join(format!("demon-e2e-shelf-{}", std::process::id()));
    let bss = WrBss::new(vec![true, false, true, true]);
    let mut gemm = Gemm::new(
        ItemsetMaintainer::new(N_ITEMS, k(0.03), CounterKind::EcutPlus),
        4,
        BlockSelector::WindowRelative(bss.clone()),
    )
    .unwrap()
    .with_shelf(ShelfMode::Disk(dir.clone()))
    .unwrap()
    .with_retirement(false);

    let mut store = TxStore::new(N_ITEMS);
    for b in blocks {
        store.add_block(b.clone());
        gemm.add_block(b).unwrap();
    }
    // Window D[4,7]; BSS ⟨1011⟩ selects positions 1,3,4 → blocks 4,6,7.
    let selected = BlockSelector::WindowRelative(bss)
        .selected_in_window(BlockId(4), 4, BlockId(7));
    assert_eq!(selected, vec![BlockId(4), BlockId(6), BlockId(7)]);
    let batch = FrequentItemsets::mine_from(&store, &selected, k(0.03)).unwrap();
    assert_models_equal(gemm.current_model().unwrap(), &batch, "WR BSS + shelf");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_survives_serde_roundtrip_mid_stream() {
    let blocks = quest_stream(4, 300, 23);
    let maintainer = ItemsetMaintainer::new(N_ITEMS, k(0.03), CounterKind::Ecut);
    let mut engine = DemonEngine::new(maintainer, DataSpan::Unrestricted(WiBss::All)).unwrap();
    for b in blocks.iter().take(2).cloned() {
        engine.add_block(b).unwrap();
    }
    // Serialize the model, deserialize, and continue maintaining it by hand.
    let json = serde_json::to_string(engine.current_model().unwrap()).unwrap();
    let mut revived: FrequentItemsets = serde_json::from_str(&json).unwrap();
    let mut store = TxStore::new(N_ITEMS);
    for b in &blocks {
        store.add_block(b.clone());
    }
    revived
        .absorb_block(&store, BlockId(3), CounterKind::Ecut)
        .unwrap();
    revived
        .absorb_block(&store, BlockId(4), CounterKind::Ecut)
        .unwrap();
    let batch = FrequentItemsets::mine_from(&store, store.block_ids(), k(0.03)).unwrap();
    assert_models_equal(&revived, &batch, "post-serde maintenance");
}

#[test]
fn min_support_change_mid_stream_stays_consistent() {
    let blocks = quest_stream(4, 300, 29);
    let maintainer = ItemsetMaintainer::new(N_ITEMS, k(0.05), CounterKind::Ecut);
    let mut store = TxStore::new(N_ITEMS);
    let mut model = FrequentItemsets::empty(k(0.05), N_ITEMS);
    for (i, b) in blocks.iter().enumerate() {
        store.add_block(b.clone());
        model
            .absorb_block(&store, b.id(), CounterKind::Ecut)
            .unwrap();
        if i == 1 {
            // The analyst lowers κ mid-stream (paper §3.1.1).
            model.set_min_support(&store, k(0.02), CounterKind::Ecut);
        }
    }
    drop(maintainer);
    model.check_invariants(&store);
    let batch = FrequentItemsets::mine_from(&store, store.block_ids(), k(0.02)).unwrap();
    assert_models_equal(&model, &batch, "κ change mid-stream");
}
