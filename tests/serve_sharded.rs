//! Differential tests of the partitioned (`--shards N`) daemon: at
//! every stream prefix, for shards ∈ {1, 2, 8} and all three counting
//! backends, the sharded runtime's query responses must be
//! byte-identical to the 1-shard daemon's — the partitioning is an
//! execution strategy, never an answer change. Snapshots persisted by
//! a sharded daemon must likewise be byte-identical on disk to the
//! 1-shard snapshot of the same stream.

use demon::itemsets::persist::{load_store_configured, verify_store, RecoveryPolicy};
use demon::itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon::serve::{Client, ServeConfig, Server, ServeSummary};
use demon::store::StoreConfig;
use demon::types::{Block, BlockId, Item, MinSupport, Tid, Transaction, TxBlock};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const UNIVERSE: u32 = 12;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];
const COUNTERS: [CounterKind; 3] =
    [CounterKind::PtScan, CounterKind::Ecut, CounterKind::EcutPlus];

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demon-sharded-test-{name}-{}", std::process::id()))
}

/// An in-process daemon plus the join handle that yields its summary.
struct Daemon {
    client: Client,
    handle: std::thread::JoinHandle<demon::types::Result<ServeSummary>>,
}

fn spawn(shards: usize, counter: CounterKind, minsup: MinSupport, n_items: u32) -> Daemon {
    let mut config = ServeConfig::new("127.0.0.1:0", n_items, minsup);
    config.shards = shards;
    config.counter = counter;
    config.workers = 2;
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let client = Client::connect(addr).expect("connect");
    Daemon { client, handle }
}

impl Daemon {
    fn finish(mut self) -> ServeSummary {
        self.client.shutdown().expect("shutdown acked");
        self.handle.join().expect("server thread").expect("run ok")
    }
}

/// A stream of small random blocks over a 12-item universe, TIDs
/// globally monotonic (same shape as `differential_counting.rs`).
fn blocks_strategy(max_blocks: usize) -> impl Strategy<Value = Vec<TxBlock>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0..UNIVERSE, 1..6), 5..25),
        1..=max_blocks,
    )
    .prop_map(|raw_blocks| {
        let mut tid = 1u64;
        raw_blocks
            .into_iter()
            .enumerate()
            .map(|(i, txs)| {
                let records: Vec<Transaction> = txs
                    .into_iter()
                    .map(|items| {
                        let t = Transaction::new(Tid(tid), items.into_iter().map(Item).collect());
                        tid += 1;
                        t
                    })
                    .collect();
                Block::new(BlockId(i as u64 + 1), records)
            })
            .collect()
    })
}

/// Every file under `dir`, keyed by its path relative to `dir`.
/// Byte-level equality of two snapshot directories is the strongest
/// form of the "sharding never changes answers" contract.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).expect("read_dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path.strip_prefix(dir).unwrap().to_string_lossy().into_owned();
                out.insert(rel, std::fs::read(&path).expect("read file"));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The core differential property: for every counting backend, a
    /// 2-shard and an 8-shard daemon answer `QueryModel` and
    /// `QuerySequences` byte-identically to the 1-shard daemon at
    /// *every* stream prefix — including prefix 0, before any block
    /// has arrived.
    #[test]
    fn sharded_answers_match_single_shard_at_every_prefix(
        blocks in blocks_strategy(3),
        minsup in (0.05f64..0.4).prop_map(|k| MinSupport::new(k).unwrap()),
    ) {
        for counter in COUNTERS {
            let mut daemons: Vec<Daemon> = SHARD_COUNTS
                .iter()
                .map(|&s| spawn(s, counter, minsup, UNIVERSE))
                .collect();

            // Prefix 0: the empty model must already agree.
            let reference_empty = daemons[0].client.query_model_json().unwrap();
            for d in daemons.iter_mut().skip(1) {
                prop_assert_eq!(&d.client.query_model_json().unwrap(), &reference_empty);
            }

            for (prefix, block) in blocks.iter().enumerate() {
                for d in daemons.iter_mut() {
                    d.client.ingest(UNIVERSE, block).expect("ingest acked");
                }
                let model_1 = daemons[0].client.query_model_json().unwrap();
                let seqs_1 = daemons[0].client.query_sequences().unwrap();
                for (i, d) in daemons.iter_mut().enumerate().skip(1) {
                    let model_n = d.client.query_model_json().unwrap();
                    prop_assert_eq!(
                        &model_n, &model_1,
                        "model diverged: shards={} counter={} prefix={}",
                        SHARD_COUNTS[i], counter.name(), prefix + 1
                    );
                    let seqs_n = d.client.query_sequences().unwrap();
                    prop_assert_eq!(
                        &seqs_n, &seqs_1,
                        "sequences diverged: shards={} counter={} prefix={}",
                        SHARD_COUNTS[i], counter.name(), prefix + 1
                    );
                }
            }

            // The agreed-on final answer is also the batch answer — the
            // daemons do not share a common divergence from the engine.
            let mut store = TxStore::new(UNIVERSE);
            for b in &blocks {
                store.add_block(b.clone());
            }
            let ids = store.block_ids().to_vec();
            let batch = FrequentItemsets::mine_from(&store, &ids, minsup).unwrap();
            let final_model = daemons[0].client.query_model_json().unwrap();
            prop_assert_eq!(&final_model, &serde_json::to_string(&batch).unwrap());

            for d in daemons {
                let summary = d.finish();
                prop_assert_eq!(summary.blocks, blocks.len() as u64);
            }
        }
    }
}

/// A deterministic five-block stream over a larger universe exercises
/// the snapshot path: every shard count persists a byte-identical
/// store directory, and the store loads under `Strict`.
#[test]
fn sharded_snapshots_are_byte_identical_across_shard_counts() {
    let n_items = 64u32;
    let minsup = MinSupport::new(0.05).unwrap();
    let mut tid = 0u64;
    let blocks: Vec<TxBlock> = (1..=5u64)
        .map(|id| {
            let txs = (0..40)
                .map(|i| {
                    tid += 1;
                    let mut items = vec![(i % 7) as u32, 7 + (i % 5) as u32];
                    if i % 3 == 0 {
                        items.push(20 + (id as u32 % 4));
                    }
                    items.sort_unstable();
                    items.dedup();
                    Transaction::new(Tid(tid), items.into_iter().map(Item).collect())
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect();

    let root = tmp("snap-eq");
    std::fs::create_dir_all(&root).unwrap();
    let mut reference: Option<BTreeMap<String, Vec<u8>>> = None;
    for shards in SHARD_COUNTS {
        let mut d = spawn(shards, CounterKind::EcutPlus, minsup, n_items);
        for b in &blocks {
            d.client.ingest(n_items, b).expect("ingest");
        }
        let snap = root.join(format!("snap-{shards}"));
        let persisted = d.client.snapshot(snap.to_str().unwrap()).expect("snapshot");
        assert_eq!(persisted, blocks.len() as u64);

        let report = verify_store(&snap).expect("verify runs");
        assert!(report.is_clean(), "snapshot damaged at shards={shards}: {report:?}");
        let (loaded, _) =
            load_store_configured(&snap, RecoveryPolicy::Strict, &StoreConfig::InMemory)
                .expect("snapshot loads under Strict");
        assert_eq!(loaded.len(), blocks.len());

        let bytes = dir_bytes(&snap);
        match &reference {
            None => reference = Some(bytes),
            Some(want) => {
                assert_eq!(
                    bytes.keys().collect::<Vec<_>>(),
                    want.keys().collect::<Vec<_>>(),
                    "snapshot file set diverged at shards={shards}"
                );
                for (name, data) in &bytes {
                    assert_eq!(
                        data, &want[name],
                        "snapshot file {name} diverged at shards={shards}"
                    );
                }
            }
        }
        d.finish();
    }
    std::fs::remove_dir_all(&root).ok();
}

/// Config validation: zero shards is rejected, and the GEMM window
/// (which the sharded runtime does not partition) demands `--shards 1`.
#[test]
fn invalid_shard_configs_are_typed_errors() {
    let minsup = MinSupport::new(0.1).unwrap();

    let mut zero = ServeConfig::new("127.0.0.1:0", UNIVERSE, minsup);
    zero.shards = 0;
    let err = match Server::bind(zero) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("shards=0 must be rejected"),
    };
    assert!(err.contains("--shards"), "{err}");

    let mut windowed = ServeConfig::new("127.0.0.1:0", UNIVERSE, minsup);
    windowed.shards = 2;
    windowed.window = Some(4);
    let err = match Server::bind(windowed) {
        Err(e) => e.to_string(),
        Ok(_) => panic!("shards=2 with a window must be rejected"),
    };
    assert!(err.contains("--shards 1"), "{err}");
}

/// Duplicate and out-of-order blocks stay typed protocol errors under
/// sharding — the sequencer enforces the same systematic-evolution
/// contract as the single-lock daemon, and the daemon keeps serving.
#[test]
fn sharded_daemon_rejects_replays_and_gaps_like_single_shard() {
    let minsup = MinSupport::new(0.1).unwrap();
    let blocks: Vec<TxBlock> = (1..=3u64)
        .map(|id| {
            let txs = (0..8)
                .map(|i| Transaction::new(Tid(id * 10 + i), vec![Item((i % 4) as u32)]))
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect();
    let mut d = spawn(4, CounterKind::Ecut, minsup, UNIVERSE);
    d.client.ingest(UNIVERSE, &blocks[0]).unwrap();

    // Replay of D1 is a typed duplicate, exactly like the 1-shard text.
    let err = d.client.ingest(UNIVERSE, &blocks[0]).unwrap_err().to_string();
    assert!(err.contains("duplicate block"), "{err}");
    assert!(err.contains("D1"), "{err}");

    // Skipping D2 is a typed sequencing error naming the expected id.
    let err = d.client.ingest(UNIVERSE, &blocks[2]).unwrap_err().to_string();
    assert!(err.contains("expected block D2"), "{err}");

    // The stream continues on the same connection.
    d.client.ingest(UNIVERSE, &blocks[1]).expect("stream continues");
    let stats = d.client.stats_json().unwrap();
    assert!(stats.contains("\"blocks\":2"), "{stats}");
    assert!(stats.contains("\"shards\":4"), "{stats}");
    assert!(stats.contains("\"shard_blocks\":"), "{stats}");
    let summary = d.finish();
    assert_eq!(summary.blocks, 2);
}
