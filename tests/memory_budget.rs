//! Memory-budget acceptance: replays that exceed `--memory-budget` must
//! evict (`store.evictions > 0`) yet produce **byte-identical** models —
//! frequent itemsets, BIRCH+ trees, and GEMM window models — versus the
//! unbounded in-memory run, at 1 and 8 threads.
//!
//! The budget/thread sweeps live in one `#[test]` because they read the
//! process-wide thread default and the global obs counters, and Rust
//! runs tests of one binary concurrently (same reasoning as
//! `tests/determinism.rs`). The retire/evict interplay tests below do
//! not touch globals and run as ordinary tests.

use demon::core::bss::BlockSelector;
use demon::core::{ClusterMaintainer, Gemm, ItemsetMaintainer, ModelMaintainer};
use demon::datagen::{QuestGen, QuestParams};
use demon::itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon::store::StoreConfig;
use demon::types::obs::{self, Counter};
use demon::types::parallel::set_global;
use demon::types::{
    Block, BlockId, MinSupport, Parallelism, Point, Tid, Transaction, TxBlock,
};
use std::path::PathBuf;

const N_ITEMS: u32 = 80;
/// Far below the footprint of even one block: every fetch cycles disk.
const BUDGET: u64 = 4096;

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("demon-membudget-{}-{name}", std::process::id()))
}

fn budget_config(name: &str) -> StoreConfig {
    StoreConfig::budget(tmp(name), BUDGET)
}

fn quest_stream(n_blocks: u64, per_block: usize) -> Vec<TxBlock> {
    let params = QuestParams {
        n_transactions: 0,
        avg_tx_len: 6.0,
        n_items: N_ITEMS,
        n_patterns: 25,
        avg_pattern_len: 3.0,
        ..QuestParams::default()
    };
    let mut gen = QuestGen::new(params, 7);
    let mut tid = 1u64;
    (1..=n_blocks)
        .map(|id| {
            let txs: Vec<Transaction> = gen
                .take_transactions(per_block)
                .into_iter()
                .map(|t| {
                    let tx = Transaction::from_sorted(Tid(tid), t.items().to_vec());
                    tid += 1;
                    tx
                })
                .collect();
            Block::new(BlockId(id), txs)
        })
        .collect()
}

fn point_stream(n_blocks: u64, per_block: usize) -> Vec<Block<Point>> {
    (1..=n_blocks)
        .map(|id| {
            let pts = (0..per_block)
                .map(|i| {
                    let t = (id * 1000 + i as u64) as f64;
                    Point::new(vec![(t * 0.37).sin() * 5.0, (t * 0.11).cos() * 5.0])
                })
                .collect();
            Block::new(BlockId(id), pts)
        })
        .collect()
}

fn json<T: serde::Serialize>(v: &T) -> String {
    serde_json::to_string(v).expect("model serializes")
}

fn k(v: f64) -> MinSupport {
    MinSupport::new(v).unwrap()
}

#[test]
fn budgeted_runs_evict_but_match_unbounded_models() {
    let blocks = quest_stream(6, 150);
    let points = point_stream(4, 120);
    let minsup = k(0.02);

    // Unbounded references, computed once at the serial default.
    set_global(Parallelism::new(1));
    let reference_mine = {
        let mut store = TxStore::new(N_ITEMS);
        for b in &blocks {
            store.add_block(b.clone());
        }
        let ids: Vec<BlockId> = store.block_ids().to_vec();
        json(&FrequentItemsets::mine_from(&store, &ids, minsup).unwrap())
    };
    let reference_gemm = gemm_current_models(
        ItemsetMaintainer::new(N_ITEMS, minsup, CounterKind::EcutPlus),
        &blocks,
        1,
    );
    let reference_birch = {
        let maintainer = ClusterMaintainer::new(demon::clustering::BirchParams::new(2, 4));
        json(&birch_tree(maintainer, &points))
    };

    for threads in [1usize, 8] {
        set_global(Parallelism::new(threads));
        obs::reset();
        obs::enable();

        // Frequent itemsets mined over a budget-bound store.
        let mined = {
            let mut store =
                TxStore::with_config(N_ITEMS, &budget_config(&format!("mine-{threads}")))
                    .unwrap();
            for b in &blocks {
                store.add_block(b.clone());
            }
            assert!(
                store.resident_bytes() <= BUDGET,
                "store must honor the budget at rest ({} > {BUDGET})",
                store.resident_bytes()
            );
            let ids: Vec<BlockId> = store.block_ids().to_vec();
            json(&FrequentItemsets::mine_from(&store, &ids, minsup).unwrap())
        };

        // GEMM window models over a budget-bound maintainer store.
        let maintainer = ItemsetMaintainer::with_store_config(
            N_ITEMS,
            minsup,
            CounterKind::EcutPlus,
            &budget_config(&format!("gemm-{threads}")),
        )
        .unwrap();
        let windowed = gemm_current_models(maintainer, &blocks, threads);

        // BIRCH+ CF-tree over budget-bound point blocks.
        let budgeted_birch = {
            let maintainer = ClusterMaintainer::with_store_config(
                demon::clustering::BirchParams::new(2, 4),
                &budget_config(&format!("birch-{threads}")),
            )
            .unwrap();
            json(&birch_tree(maintainer, &points))
        };

        let evictions = obs::counter_value(Counter::StoreEvictions);
        let spilled = obs::counter_value(Counter::StoreBytesSpilled);
        obs::disable();

        assert!(evictions > 0, "nothing evicted at {threads} threads");
        assert!(spilled > 0, "nothing spilled at {threads} threads");
        assert_eq!(mined, reference_mine, "mine differs at {threads} threads");
        assert_eq!(
            windowed, reference_gemm,
            "GEMM window models differ at {threads} threads"
        );
        assert_eq!(
            budgeted_birch, reference_birch,
            "BIRCH+ tree differs at {threads} threads"
        );
    }
    set_global(Parallelism::new(0));
}

/// Replays `blocks` through a w=3 GEMM (retirement on) and returns the
/// JSON of the current window model after every block.
fn gemm_current_models(
    maintainer: ItemsetMaintainer,
    blocks: &[TxBlock],
    threads: usize,
) -> Vec<String> {
    let mut gemm = Gemm::new(maintainer, 3, BlockSelector::all())
        .unwrap()
        .with_parallelism(Parallelism::new(threads));
    blocks
        .iter()
        .map(|b| {
            gemm.add_block(b.clone()).unwrap();
            json(gemm.current_model().expect("model after add"))
        })
        .collect()
}

fn birch_tree(
    maintainer: ClusterMaintainer,
    points: &[Block<Point>],
) -> <ClusterMaintainer as ModelMaintainer>::Model {
    let mut maintainer = maintainer;
    let mut tree = maintainer.fresh();
    for b in points {
        maintainer.register_block(b.clone());
        maintainer.absorb(&mut tree, b.id());
    }
    tree
}

/// MRW + retirement over a long replay: retired blocks leave the store
/// entirely, and the resident footprint stays bounded by the window —
/// not by the stream length.
#[test]
fn retirement_keeps_resident_bytes_window_bounded() {
    let blocks = quest_stream(16, 60);

    // Footprint of the whole stream when nothing retires or spills.
    let total_bytes = {
        let mut store = TxStore::new(N_ITEMS);
        for b in &blocks {
            store.add_block(b.clone());
        }
        store.resident_bytes()
    };

    let maintainer = ItemsetMaintainer::with_store_config(
        N_ITEMS,
        k(0.02),
        CounterKind::Ecut,
        &budget_config("retire"),
    )
    .unwrap();
    let mut gemm = Gemm::new(maintainer, 3, BlockSelector::all()).unwrap();
    for b in &blocks {
        gemm.add_block(b.clone()).unwrap();
        assert!(
            gemm.maintainer().store().resident_bytes() <= total_bytes / 2,
            "resident bytes track the stream, not the window"
        );
    }
    let store = gemm.maintainer().store();
    // Window start is 14: every block below it was retired and dropped.
    for id in 1..=13u64 {
        assert!(
            store.block(BlockId(id)).is_none(),
            "retired block {id} still present"
        );
    }
    assert!(store.block(BlockId(14)).is_some());
    assert_eq!(store.len(), 3, "exactly the window blocks remain");
}

/// Retiring a block someone still holds pinned must not invalidate the
/// reader: the engine defers the removal until the pin drops. (At the
/// `TxStore` level the borrow checker already forbids `remove_block`
/// while a `BlockRef` is alive; maintainers like `ClusterMaintainer`
/// retire through `&self` engine handles, where deferral matters.)
#[test]
fn retiring_a_pinned_block_is_deferred() {
    use demon::clustering::PointBlockEntry;
    use demon::store::BlockStore;

    let store: BlockStore<PointBlockEntry> = budget_config("pinned")
        .build("points")
        .unwrap();
    for b in point_stream(2, 40) {
        store.insert(b.id(), PointBlockEntry(b));
    }

    let guard = store.get(BlockId(1)).unwrap().expect("block 1 present");
    let seen_before = guard.0.len();
    assert!(store.remove(BlockId(1)), "removal is accepted");
    // The pinned reader still sees the full block...
    assert_eq!(guard.0.len(), seen_before);
    assert!(!guard.0.is_empty());
    // ...but the store has already delisted it.
    assert_eq!(store.len(), 1);
    assert!(!store.contains(BlockId(1)));
    drop(guard);
    // Once unpinned the block is gone for good.
    assert!(store.get(BlockId(1)).unwrap().is_none());
    assert!(store.get(BlockId(2)).unwrap().is_some());
}
