//! Gaussian cluster data generator in the style of Agrawal et al.
//! (SIGMOD '98), used for the BIRCH / BIRCH+ experiments.
//!
//! The paper denotes datasets `NM.Kc.dd`: `N` million points, `K` clusters,
//! `d` dimensions, distributed over all dimensions, with a configurable
//! fraction of uniformly-distributed noise points ("2% uniformly distributed
//! noise points to perturb the cluster centers", §5.2).

use demon_types::Point;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Parameters of the cluster generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// Number of points to generate (`N` in `NM`).
    pub n_points: usize,
    /// Number of clusters (`K` in `Kc`).
    pub k: usize,
    /// Dimensionality (`d` in `dd`).
    pub dim: usize,
    /// Fraction of points drawn uniformly from the domain instead of a
    /// cluster (the paper uses 0.02).
    pub noise_fraction: f64,
    /// Standard deviation of each Gaussian cluster.
    pub sigma: f64,
    /// The data domain is the hyper-cube `[0, domain]^d`.
    pub domain: f64,
}

impl ClusterParams {
    /// Builds parameters from the paper's `NM.Kc.dd` notation, e.g.
    /// `"1M.50c.5d"`. `scale` multiplies the point count.
    pub fn parse(spec: &str, scale: f64) -> Result<Self, String> {
        let mut p = ClusterParams::default();
        for part in spec.split('.') {
            let end = part
                .char_indices()
                .take_while(|(_, c)| c.is_ascii_digit())
                .map(|(i, c)| i + c.len_utf8())
                .last()
                .ok_or_else(|| format!("malformed component {part:?} in {spec:?}"))?;
            let num: f64 = part[..end]
                .parse()
                .map_err(|_| format!("bad number in {part:?}"))?;
            match &part[end..] {
                "M" => p.n_points = (num * 1_000_000.0 * scale).round() as usize,
                "K" => p.n_points = (num * 1_000.0 * scale).round() as usize,
                "c" => p.k = num as usize,
                "d" => p.dim = num as usize,
                other => return Err(format!("unknown suffix {other:?} in {spec:?}")),
            }
        }
        if p.n_points == 0 || p.k == 0 || p.dim == 0 {
            return Err(format!("degenerate parameters parsed from {spec:?}"));
        }
        Ok(p)
    }
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams {
            n_points: 10_000,
            k: 10,
            dim: 2,
            noise_fraction: 0.02,
            sigma: 1.0,
            domain: 100.0,
        }
    }
}

/// The generator: fixes `k` well-separated centers at construction, then
/// streams points. Blocks of the same evolving database are successive
/// slices of one generator, so all blocks share the same ground truth.
pub struct ClusterDataGen {
    params: ClusterParams,
    centers: Vec<Point>,
    normal: Normal<f64>,
    rng: StdRng,
}

impl ClusterDataGen {
    /// Builds the generator, drawing `k` centers uniformly in the domain
    /// subject to a minimum pairwise separation of `4·σ` (best effort:
    /// after a bounded number of rejections the separation constraint is
    /// relaxed so construction always terminates).
    pub fn new(params: ClusterParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centers: Vec<Point> = Vec::with_capacity(params.k);
        let min_sep2 = (4.0 * params.sigma) * (4.0 * params.sigma);
        let mut attempts = 0usize;
        while centers.len() < params.k {
            let c = Point::new((0..params.dim).map(|_| rng.gen_range(0.0..params.domain)).collect());
            attempts += 1;
            let ok = attempts > 100 * params.k
                || centers.iter().all(|existing| existing.dist2(&c) >= min_sep2);
            if ok {
                centers.push(c);
            }
        }
        let normal = Normal::new(0.0, params.sigma).expect("sigma must be finite positive");
        ClusterDataGen {
            params,
            centers,
            normal,
            rng,
        }
    }

    /// The ground-truth cluster centers.
    pub fn centers(&self) -> &[Point] {
        &self.centers
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Generates the next point: uniform noise with probability
    /// `noise_fraction`, otherwise Gaussian around a random center.
    pub fn next_point(&mut self) -> Point {
        self.next_labeled().0
    }

    /// Generates the next point together with its ground-truth label: the
    /// index of the generating center, or the nearest center for noise
    /// points. Feeds the decision-tree experiments, where the cluster of
    /// origin doubles as the class.
    pub fn next_labeled(&mut self) -> (Point, u32) {
        if self.rng.gen::<f64>() < self.params.noise_fraction {
            let p = Point::new(
                (0..self.params.dim)
                    .map(|_| self.rng.gen_range(0.0..self.params.domain))
                    .collect(),
            );
            let label = self
                .centers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.dist2(&p).total_cmp(&b.1.dist2(&p)))
                .map(|(i, _)| i as u32)
                .unwrap_or(0);
            return (p, label);
        }
        let ci = self.rng.gen_range(0..self.centers.len());
        let center = self.centers[ci].coords();
        let p = Point::new(
            (0..self.params.dim)
                .map(|d| center[d] + self.normal.sample(&mut self.rng))
                .collect(),
        );
        (p, ci as u32)
    }

    /// Generates the next `n` labeled points.
    pub fn take_labeled(&mut self, n: usize) -> Vec<(Point, u32)> {
        (0..n).map(|_| self.next_labeled()).collect()
    }

    /// Generates the next `n` points.
    pub fn take_points(&mut self, n: usize) -> Vec<Point> {
        (0..n).map(|_| self.next_point()).collect()
    }

    /// Generates all `params.n_points` points.
    pub fn generate_all(&mut self) -> Vec<Point> {
        self.take_points(self.params.n_points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> ClusterParams {
        ClusterParams {
            n_points: 1000,
            k: 5,
            dim: 3,
            sigma: 1.0,
            domain: 100.0,
            noise_fraction: 0.02,
        }
    }

    #[test]
    fn parse_paper_notation() {
        let p = ClusterParams::parse("1M.50c.5d", 1.0).unwrap();
        assert_eq!(p.n_points, 1_000_000);
        assert_eq!(p.k, 50);
        assert_eq!(p.dim, 5);
        let q = ClusterParams::parse("800K.50c.5d", 0.5).unwrap();
        assert_eq!(q.n_points, 400_000);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ClusterParams::parse("1M.xc", 1.0).is_err());
        assert!(ClusterParams::parse("blah", 1.0).is_err());
        assert!(ClusterParams::parse("0M.5c.2d", 1.0).is_err());
    }

    #[test]
    fn deterministic_in_seed() {
        let mut a = ClusterDataGen::new(small_params(), 42);
        let mut b = ClusterDataGen::new(small_params(), 42);
        assert_eq!(a.centers(), b.centers());
        assert_eq!(a.take_points(100), b.take_points(100));
    }

    #[test]
    fn centers_are_separated() {
        let g = ClusterDataGen::new(small_params(), 1);
        let cs = g.centers();
        assert_eq!(cs.len(), 5);
        for i in 0..cs.len() {
            for j in i + 1..cs.len() {
                assert!(cs[i].dist(&cs[j]) >= 4.0, "centers {i},{j} too close");
            }
        }
    }

    #[test]
    fn points_are_in_or_near_domain() {
        let mut g = ClusterDataGen::new(small_params(), 2);
        for p in g.take_points(500) {
            assert_eq!(p.dim(), 3);
            for &c in p.coords() {
                // Gaussian tails can exceed the domain slightly.
                assert!(c > -10.0 && c < 110.0, "coordinate {c} far out of domain");
            }
        }
    }

    #[test]
    fn labels_point_at_generating_center() {
        let mut g = ClusterDataGen::new(
            ClusterParams {
                noise_fraction: 0.0,
                ..small_params()
            },
            9,
        );
        let centers = g.centers().to_vec();
        for (p, label) in g.take_labeled(300) {
            // With σ=1 and 4σ-separated centers, the generating center is
            // the nearest one.
            let nearest = centers
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.dist2(&p).total_cmp(&b.1.dist2(&p)))
                .map(|(i, _)| i as u32)
                .unwrap();
            assert_eq!(label, nearest);
        }
    }

    #[test]
    fn noise_points_get_nearest_center_label() {
        let mut g = ClusterDataGen::new(
            ClusterParams {
                noise_fraction: 1.0,
                ..small_params()
            },
            10,
        );
        for (_, label) in g.take_labeled(50) {
            assert!((label as usize) < 5);
        }
    }

    #[test]
    fn most_points_lie_near_some_center() {
        let mut g = ClusterDataGen::new(small_params(), 3);
        let centers = g.centers().to_vec();
        let pts = g.take_points(1000);
        let near = pts
            .iter()
            .filter(|p| centers.iter().any(|c| p.dist(c) <= 4.0))
            .count();
        // ~98% of points are cluster members; with σ=1 and d=3 almost all
        // members fall within 4σ of their center.
        assert!(near >= 900, "only {near}/1000 points near a center");
    }
}
