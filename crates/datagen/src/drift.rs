//! A Quest stream with scheduled **concept drift** — the data-generating
//! process behind the paper's §2.2 motivation: "Popularity of most toys
//! is short-lived … mining over the entire database may dilute some
//! patterns that may be visible if only the most recent window is
//! analyzed."
//!
//! The generator holds several independently seeded pattern pools
//! ("regimes") and a schedule assigning one regime to each block. Blocks
//! within a regime are statistically exchangeable; regime switches change
//! the frequent itemsets.

use crate::quest::{QuestGen, QuestParams};
use demon_types::{Block, BlockId, Tid, Transaction, TxBlock};

/// A Quest stream whose pattern pool switches per block according to a
/// schedule.
pub struct DriftingQuestGen {
    regimes: Vec<QuestGen>,
    /// `schedule[i]` = regime of block `i+1`; blocks beyond the schedule
    /// reuse its last entry.
    schedule: Vec<usize>,
    next_block: u64,
    next_tid: u64,
}

impl DriftingQuestGen {
    /// Builds `n_regimes` pools from `params` with seeds
    /// `seed, seed+1, …`, following `schedule`.
    pub fn new(params: QuestParams, n_regimes: usize, seed: u64, schedule: Vec<usize>) -> Self {
        assert!(n_regimes >= 1, "need at least one regime");
        assert!(
            schedule.iter().all(|&r| r < n_regimes),
            "schedule references an unknown regime"
        );
        assert!(!schedule.is_empty(), "schedule cannot be empty");
        let regimes = (0..n_regimes)
            .map(|r| QuestGen::new(params.clone(), seed + r as u64))
            .collect();
        DriftingQuestGen {
            regimes,
            schedule,
            next_block: 1,
            next_tid: 1,
        }
    }

    /// A two-regime schedule that switches once after `switch_at` blocks —
    /// the "new toy line launches" scenario.
    pub fn switch_once(params: QuestParams, seed: u64, switch_at: usize, total: usize) -> Self {
        assert!(switch_at < total, "switch must fall inside the stream");
        let mut schedule = vec![0usize; switch_at];
        schedule.extend(std::iter::repeat_n(1, total - switch_at));
        Self::new(params, 2, seed, schedule)
    }

    /// The regime of block `id`.
    pub fn regime_of(&self, id: BlockId) -> usize {
        let i = id.index().min(self.schedule.len() - 1);
        self.schedule[i]
    }

    /// Generates the next block with `n` transactions.
    pub fn next_block(&mut self, n: usize) -> TxBlock {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        let regime = self.regime_of(id);
        let txs: Vec<Transaction> = self.regimes[regime]
            .take_transactions(n)
            .into_iter()
            .map(|t| {
                let tx = Transaction::from_sorted(Tid(self.next_tid), t.items().to_vec());
                self.next_tid += 1;
                tx
            })
            .collect();
        Block::new(id, txs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::Item;

    fn params() -> QuestParams {
        QuestParams {
            n_transactions: 0,
            avg_tx_len: 6.0,
            n_items: 100,
            n_patterns: 30,
            avg_pattern_len: 3.0,
            ..QuestParams::default()
        }
    }

    fn item_histogram(block: &TxBlock) -> Vec<u32> {
        let mut h = vec![0u32; 100];
        for tx in block.records() {
            for &it in tx.items() {
                h[it.index()] += 1;
            }
        }
        h
    }

    fn l1_distance(a: &[u32], b: &[u32]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| u64::from(x.abs_diff(y)))
            .sum()
    }

    #[test]
    fn schedule_controls_the_regime() {
        let g = DriftingQuestGen::new(params(), 2, 5, vec![0, 0, 1, 0]);
        assert_eq!(g.regime_of(BlockId(1)), 0);
        assert_eq!(g.regime_of(BlockId(3)), 1);
        assert_eq!(g.regime_of(BlockId(4)), 0);
        // Past the schedule: last entry repeats.
        assert_eq!(g.regime_of(BlockId(9)), 0);
    }

    #[test]
    fn switch_once_builds_expected_schedule() {
        let g = DriftingQuestGen::switch_once(params(), 5, 2, 5);
        assert_eq!(g.regime_of(BlockId(1)), 0);
        assert_eq!(g.regime_of(BlockId(2)), 0);
        assert_eq!(g.regime_of(BlockId(3)), 1);
        assert_eq!(g.regime_of(BlockId(5)), 1);
    }

    #[test]
    fn same_regime_blocks_are_closer_than_cross_regime() {
        let mut g = DriftingQuestGen::new(params(), 2, 7, vec![0, 0, 1]);
        let b1 = g.next_block(2000);
        let b2 = g.next_block(2000);
        let b3 = g.next_block(2000);
        let (h1, h2, h3) = (item_histogram(&b1), item_histogram(&b2), item_histogram(&b3));
        let same = l1_distance(&h1, &h2);
        let cross = l1_distance(&h1, &h3);
        assert!(
            cross > same * 2,
            "cross-regime distance {cross} should dwarf same-regime {same}"
        );
    }

    #[test]
    fn tids_and_block_ids_are_globally_monotonic() {
        let mut g = DriftingQuestGen::switch_once(params(), 1, 1, 3);
        let mut last_tid = 0u64;
        for expect_id in 1..=3u64 {
            let b = g.next_block(50);
            assert_eq!(b.id(), BlockId(expect_id));
            for tx in b.records() {
                assert!(tx.tid().value() > last_tid);
                last_tid = tx.tid().value();
            }
        }
    }

    #[test]
    fn items_stay_in_domain_across_regimes() {
        let mut g = DriftingQuestGen::new(params(), 3, 2, vec![0, 1, 2]);
        for _ in 0..3 {
            let b = g.next_block(200);
            for tx in b.records() {
                assert!(tx.items().iter().all(|i| *i < Item(100)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown regime")]
    fn rejects_bad_schedule() {
        DriftingQuestGen::new(params(), 2, 0, vec![0, 2]);
    }
}
