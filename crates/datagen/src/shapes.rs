//! Non-Gaussian **shape** generators for the density-model experiments:
//! interleaving moons and concentric rings, plus a planted density-drift
//! stream that switches between them.
//!
//! Gaussian blobs (the [`crate::clusters`] generator) are the easy case
//! for centroid-based models; the DBSCAN experiments need clusters whose
//! *shape* carries the signal. Both families below are centered at the
//! origin with comparable spatial extent and centroid mass, so a
//! centroid-ball view (BIRCH) sees little change across a moons→rings
//! switch while a density view (incremental DBSCAN core-reachability)
//! sees a new regime.
//!
//! Every generator is deterministic given its seed; block `i`'s points
//! depend only on `(seed, i)`, not on how many blocks were drawn before.

use demon_types::{Block, BlockId, Point, PointBlock};
use rand::prelude::*;

/// The planted shape family of one regime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Shape {
    /// Two interleaving half-circles ("two moons").
    Moons,
    /// Two concentric circles.
    Rings,
}

/// Geometry knobs shared by both shape families.
#[derive(Clone, Copy, Debug)]
pub struct ShapeParams {
    /// Overall size: the outer structure has radius `scale`.
    pub scale: f64,
    /// Standard deviation of the isotropic Gaussian jitter added to every
    /// point (as a fraction of nothing — absolute units).
    pub noise: f64,
}

impl ShapeParams {
    /// Shapes of radius `scale` with jitter `noise`.
    pub fn new(scale: f64, noise: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        assert!(noise >= 0.0, "noise cannot be negative");
        ShapeParams { scale, noise }
    }
}

/// `n` points of `shape` under `params`, drawn from `rng`.
///
/// Points alternate between the two sub-structures (the two moons, or the
/// two rings), so any prefix of the output covers both.
pub fn shape_points(shape: Shape, params: ShapeParams, n: usize, rng: &mut StdRng) -> Vec<Point> {
    let s = params.scale;
    (0..n)
        .map(|i| {
            let t = rng.gen_range(0.0..1.0);
            let (x, y) = match (shape, i % 2) {
                // Outer moon: upper half-circle, shifted to center the pair.
                (Shape::Moons, 0) => {
                    let a = t * std::f64::consts::PI;
                    (s * a.cos() - 0.5 * s, s * a.sin() - 0.25 * s)
                }
                // Inner moon: lower half-circle interleaving the outer.
                (Shape::Moons, _) => {
                    let a = t * std::f64::consts::PI;
                    (s - s * a.cos() - 0.5 * s, 0.5 * s - s * a.sin() - 0.25 * s)
                }
                // Outer ring: full circle of radius `scale`.
                (Shape::Rings, 0) => {
                    let a = t * std::f64::consts::TAU;
                    (s * a.cos(), s * a.sin())
                }
                // Inner ring: concentric at 45% of the radius.
                (Shape::Rings, _) => {
                    let a = t * std::f64::consts::TAU;
                    (0.45 * s * a.cos(), 0.45 * s * a.sin())
                }
            };
            let jx = rng.gen_range(-params.noise..=params.noise);
            let jy = rng.gen_range(-params.noise..=params.noise);
            Point::new(vec![x + jx, y + jy])
        })
        .collect()
}

/// A point-block stream whose shape family switches per block according
/// to a schedule — the density analogue of [`crate::drift::DriftingQuestGen`].
pub struct DensityDriftGen {
    params: ShapeParams,
    /// `schedule[i]` = shape of block `i+1`; blocks beyond the schedule
    /// reuse its last entry.
    schedule: Vec<Shape>,
    seed: u64,
    next_block: u64,
}

impl DensityDriftGen {
    /// A stream following `schedule`, jittered from `seed`.
    pub fn new(params: ShapeParams, seed: u64, schedule: Vec<Shape>) -> Self {
        assert!(!schedule.is_empty(), "schedule cannot be empty");
        DensityDriftGen {
            params,
            schedule,
            seed,
            next_block: 1,
        }
    }

    /// A two-regime schedule that switches moons→rings once after
    /// `switch_at` blocks.
    pub fn switch_once(params: ShapeParams, seed: u64, switch_at: usize, total: usize) -> Self {
        assert!(switch_at < total, "switch must fall inside the stream");
        let mut schedule = vec![Shape::Moons; switch_at];
        schedule.extend(std::iter::repeat_n(Shape::Rings, total - switch_at));
        Self::new(params, seed, schedule)
    }

    /// The shape family of block `id`.
    pub fn regime_of(&self, id: BlockId) -> Shape {
        let i = id.index().min(self.schedule.len() - 1);
        self.schedule[i]
    }

    /// Generates the next block with `n` points.
    pub fn next_block(&mut self, n: usize) -> PointBlock {
        let id = BlockId(self.next_block);
        self.next_block += 1;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ id.value().wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        Block::new(id, shape_points(self.regime_of(id), self.params, n, &mut rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ShapeParams {
        ShapeParams::new(4.0, 0.1)
    }

    #[test]
    fn switch_once_builds_expected_schedule() {
        let g = DensityDriftGen::switch_once(params(), 5, 2, 5);
        assert_eq!(g.regime_of(BlockId(1)), Shape::Moons);
        assert_eq!(g.regime_of(BlockId(2)), Shape::Moons);
        assert_eq!(g.regime_of(BlockId(3)), Shape::Rings);
        // Past the schedule: last entry repeats.
        assert_eq!(g.regime_of(BlockId(9)), Shape::Rings);
    }

    #[test]
    fn blocks_are_deterministic_and_ids_monotonic() {
        let mk = || {
            let mut g = DensityDriftGen::switch_once(params(), 11, 1, 3);
            (g.next_block(50), g.next_block(50), g.next_block(50))
        };
        let (a1, a2, a3) = mk();
        let (b1, _, _) = mk();
        assert_eq!(a1.id(), BlockId(1));
        assert_eq!(a3.id(), BlockId(3));
        assert_eq!(a1.records(), b1.records(), "same seed, same block");
        assert_ne!(a2.records(), a3.records(), "fresh jitter per block");
    }

    #[test]
    fn both_families_share_centroid_but_not_shape() {
        // The design property the golden experiment rests on: moons and
        // rings agree in bulk statistics (centroid near origin, similar
        // extent) but their point sets are far apart pointwise.
        let mut rng = StdRng::seed_from_u64(3);
        let moons = shape_points(Shape::Moons, params(), 400, &mut rng);
        let rings = shape_points(Shape::Rings, params(), 400, &mut rng);
        let centroid = |pts: &[Point]| -> Vec<f64> {
            let mut c = vec![0.0; 2];
            for p in pts {
                for (ci, x) in c.iter_mut().zip(p.coords()) {
                    *ci += x / pts.len() as f64;
                }
            }
            c
        };
        let (cm, cr) = (centroid(&moons), centroid(&rings));
        assert!(cm.iter().all(|c| c.abs() < 1.0), "moons centroid {cm:?}");
        assert!(cr.iter().all(|c| c.abs() < 1.0), "rings centroid {cr:?}");
        // Most ring points are not near any moon point at jitter scale.
        let far = rings
            .iter()
            .filter(|r| moons.iter().all(|m| r.dist2(m) > 0.25))
            .count();
        assert!(far > 100, "only {far} ring points far from every moon point");
    }

    #[test]
    fn shapes_form_clusters_under_dbscan() {
        use demon_clustering::{DbscanParams, IncrementalDbscan};
        for shape in [Shape::Moons, Shape::Rings] {
            let mut rng = StdRng::seed_from_u64(7);
            let pts = shape_points(shape, params(), 300, &mut rng);
            let mut m = IncrementalDbscan::with_params(DbscanParams::new(2, 0.9, 4));
            for p in &pts {
                m.insert(p.clone());
            }
            assert_eq!(m.n_clusters(), 2, "{shape:?} should form two clusters");
        }
    }
}
