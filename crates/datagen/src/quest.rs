//! The IBM Quest synthetic transaction generator (Agrawal & Srikant, VLDB '94).
//!
//! The generator first builds a pool of *potentially large itemsets*
//! ("patterns"): itemset sizes are Poisson-distributed around the mean
//! pattern length, consecutive patterns share a geometrically-decaying
//! fraction of items (the *correlation level*), each pattern carries an
//! exponentially-distributed selection weight, and a per-pattern *corruption
//! level* drawn from a clipped normal. Transactions are then assembled by
//! repeatedly picking weighted patterns, dropping items from them according
//! to the corruption level, and packing them until the Poisson-distributed
//! transaction length is reached.
//!
//! The DEMON paper names datasets `NM.tlL.|I|I.NpPats.pPlen`; the
//! [`QuestParams::parse`] constructor accepts exactly that notation.

use demon_types::{Item, Tid, Transaction};
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Exp1, Normal, Poisson};
use serde::{Deserialize, Serialize};

/// Parameters of the Quest generator.
///
/// Defaults mirror AS94: correlation 0.5, corruption mean 0.5 / σ 0.1.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QuestParams {
    /// Number of transactions to generate (`N` in `NM`).
    pub n_transactions: usize,
    /// Average transaction length (`tl` in `tlL`), Poisson mean.
    pub avg_tx_len: f64,
    /// Number of distinct items (`|I|` in `|I|I`, stored un-multiplied).
    pub n_items: u32,
    /// Number of potentially large itemsets (`Np` in `NpPats`).
    pub n_patterns: usize,
    /// Average pattern length (`p` in `pPlen`), Poisson mean.
    pub avg_pattern_len: f64,
    /// Fraction of items a pattern shares with its predecessor.
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
    /// Std-dev of the per-pattern corruption level.
    pub corruption_dev: f64,
}

impl QuestParams {
    /// Builds parameters from the paper's dataset notation, e.g.
    /// `"2M.20L.1I.4pats.4plen"` = 2 M transactions, average length 20,
    /// 1 000 items, 4 000 patterns, average pattern length 4.
    ///
    /// `scale` multiplies the transaction count (the paper's absolute sizes
    /// target 1996 hardware; benches default to a laptop-friendly scale).
    pub fn parse(spec: &str, scale: f64) -> Result<Self, String> {
        let mut p = QuestParams::default();
        for part in spec.split('.') {
            let (num, suffix) = split_numeric_prefix(part)
                .ok_or_else(|| format!("malformed component {part:?} in {spec:?}"))?;
            match suffix {
                "M" => p.n_transactions = (num * 1_000_000.0 * scale).round() as usize,
                "K" => p.n_transactions = (num * 1_000.0 * scale).round() as usize,
                "L" => p.avg_tx_len = num,
                "I" => p.n_items = (num * 1000.0).round() as u32,
                "pats" => p.n_patterns = (num * 1000.0).round() as usize,
                "plen" | "npl" => p.avg_pattern_len = num,
                other => return Err(format!("unknown suffix {other:?} in {spec:?}")),
            }
        }
        if p.n_transactions == 0 || p.n_items == 0 {
            return Err(format!("degenerate parameters parsed from {spec:?}"));
        }
        Ok(p)
    }
}

impl Default for QuestParams {
    fn default() -> Self {
        QuestParams {
            n_transactions: 10_000,
            avg_tx_len: 10.0,
            n_items: 1000,
            n_patterns: 2000,
            avg_pattern_len: 4.0,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_dev: 0.1,
        }
    }
}

fn split_numeric_prefix(part: &str) -> Option<(f64, &str)> {
    let end = part
        .char_indices()
        .take_while(|(_, c)| c.is_ascii_digit() || *c == '-')
        .map(|(i, c)| i + c.len_utf8())
        .last()?;
    let num: f64 = part[..end].parse().ok()?;
    Some((num, &part[end..]))
}

/// One potentially-large itemset of the pattern pool.
#[derive(Clone, Debug)]
struct Pattern {
    items: Vec<Item>,
    /// Cumulative selection weight (prefix sum over the pool).
    cum_weight: f64,
    corruption: f64,
}

/// The Quest generator. Construct once (building the pattern pool), then
/// pull any number of transactions; generation is deterministic in
/// `(params, seed)` and *streamable* — blocks of the same evolving database
/// are successive slices of one generator.
pub struct QuestGen {
    params: QuestParams,
    patterns: Vec<Pattern>,
    total_weight: f64,
    tx_len_dist: Poisson<f64>,
    rng: StdRng,
    next_tid: Tid,
}

impl QuestGen {
    /// Builds the pattern pool from `params` with the given `seed`.
    pub fn new(params: QuestParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let patterns = Self::build_patterns(&params, &mut rng);
        let total_weight = patterns.last().map_or(0.0, |p| p.cum_weight);
        let tx_len_dist =
            Poisson::new(params.avg_tx_len.max(0.5)).expect("positive Poisson mean");
        QuestGen {
            params,
            patterns,
            total_weight,
            tx_len_dist,
            rng,
            next_tid: Tid(1),
        }
    }

    /// The parameters this generator was built with.
    pub fn params(&self) -> &QuestParams {
        &self.params
    }

    fn build_patterns(params: &QuestParams, rng: &mut StdRng) -> Vec<Pattern> {
        let len_dist = poisson_at_least_one(params.avg_pattern_len);
        let corr_dist = Normal::new(params.corruption_mean, params.corruption_dev)
            .expect("corruption_dev must be finite and non-negative");
        let mut patterns: Vec<Pattern> = Vec::with_capacity(params.n_patterns);
        let mut cum = 0.0;
        let mut prev_items: Vec<Item> = Vec::new();
        for _ in 0..params.n_patterns {
            let len = len_dist(rng).min(params.n_items as usize).max(1);
            let mut items: Vec<Item> = Vec::with_capacity(len);
            if !prev_items.is_empty() {
                // Share an exponentially-distributed fraction (mean =
                // correlation) of items with the previous pattern, as AS94
                // prescribes.
                let frac = (params.correlation * rng.sample::<f64, _>(Exp1)).min(1.0);
                let n_shared = ((len as f64) * frac).round() as usize;
                let mut prev = prev_items.clone();
                prev.shuffle(rng);
                items.extend(prev.into_iter().take(n_shared.min(len)));
            }
            while items.len() < len {
                let it = Item(rng.gen_range(0..params.n_items));
                if !items.contains(&it) {
                    items.push(it);
                }
            }
            items.sort_unstable();
            items.dedup();
            // Exponential weight with unit mean; normalization is implicit
            // in sampling against the running total.
            let w: f64 = rng.sample::<f64, _>(Exp1) + 1e-9;
            cum += w;
            let corruption = rng.sample(corr_dist).clamp(0.0, 1.0);
            prev_items.clone_from(&items);
            patterns.push(Pattern {
                items,
                cum_weight: cum,
                corruption,
            });
        }
        patterns
    }

    /// Picks a pattern index by weight (binary search over prefix sums).
    fn pick_pattern(&mut self) -> usize {
        let x = self.rng.gen_range(0.0..self.total_weight);
        self.patterns
            .partition_point(|p| p.cum_weight <= x)
            .min(self.patterns.len() - 1)
    }

    /// Generates the next transaction of the stream.
    pub fn next_transaction(&mut self) -> Transaction {
        let target = (self.tx_len_dist.sample(&mut self.rng) as usize)
            .max(1)
            .min(self.params.n_items as usize);
        let mut items: Vec<Item> = Vec::with_capacity(target + 4);
        // Guard against pathological parameter corners (e.g. patterns whose
        // corrupted form is always empty) with a bounded number of attempts.
        let mut attempts = 0usize;
        while items.len() < target && attempts < 8 * (target + 1) {
            attempts += 1;
            let pi = self.pick_pattern();
            let corruption = self.patterns[pi].corruption;
            let mut picked: Vec<Item> = self.patterns[pi].items.clone();
            // AS94 corruption: keep dropping a random item as long as a
            // uniform draw stays below the pattern's corruption level
            // (expected drops ≈ c/(1−c) — most of the pattern survives,
            // which is what makes its sub-itemsets frequent).
            while !picked.is_empty() && self.rng.gen::<f64>() < corruption {
                let idx = self.rng.gen_range(0..picked.len());
                picked.swap_remove(idx);
            }
            if picked.is_empty() {
                continue;
            }
            if items.len() + picked.len() > target {
                // AS94: an overflowing pattern is kept in half the cases,
                // otherwise deferred to the next transaction.
                if self.rng.gen::<bool>() {
                    items.extend(picked);
                }
                break;
            }
            items.extend(picked);
        }
        if items.is_empty() {
            // Never emit an empty basket; fall back to one random item.
            items.push(Item(self.rng.gen_range(0..self.params.n_items)));
        }
        let tid = self.next_tid;
        self.next_tid = tid.next();
        Transaction::new(tid, items)
    }

    /// Generates the next `n` transactions.
    pub fn take_transactions(&mut self, n: usize) -> Vec<Transaction> {
        (0..n).map(|_| self.next_transaction()).collect()
    }

    /// Generates all `params.n_transactions` transactions.
    pub fn generate_all(&mut self) -> Vec<Transaction> {
        self.take_transactions(self.params.n_transactions)
    }
}

/// A Poisson sampler clamped to ≥ 1 (both transaction and pattern lengths
/// in AS94 are "picked from a Poisson distribution" and must be non-empty).
fn poisson_at_least_one(mean: f64) -> impl Fn(&mut StdRng) -> usize {
    let dist = Poisson::new(mean.max(0.5)).expect("positive Poisson mean");
    move |rng: &mut StdRng| (dist.sample(rng) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> QuestParams {
        QuestParams {
            n_transactions: 500,
            avg_tx_len: 8.0,
            n_items: 100,
            n_patterns: 50,
            avg_pattern_len: 3.0,
            ..QuestParams::default()
        }
    }

    #[test]
    fn parse_paper_notation() {
        let p = QuestParams::parse("2M.20L.1I.4pats.4plen", 1.0).unwrap();
        assert_eq!(p.n_transactions, 2_000_000);
        assert_eq!(p.avg_tx_len, 20.0);
        assert_eq!(p.n_items, 1000);
        assert_eq!(p.n_patterns, 4000);
        assert_eq!(p.avg_pattern_len, 4.0);
    }

    #[test]
    fn parse_applies_scale_and_k_suffix() {
        let p = QuestParams::parse("2M.20L.1I.4pats.4plen", 0.01).unwrap();
        assert_eq!(p.n_transactions, 20_000);
        let q = QuestParams::parse("400K.20L.1I.8pats.4npl", 1.0).unwrap();
        assert_eq!(q.n_transactions, 400_000);
        assert_eq!(q.n_patterns, 8000);
        assert_eq!(q.avg_pattern_len, 4.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(QuestParams::parse("2M.xyz", 1.0).is_err());
        assert!(QuestParams::parse("nonsense", 1.0).is_err());
        assert!(QuestParams::parse("0M.20L.1I.4pats.4plen", 1.0).is_err());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = QuestGen::new(small_params(), 7).take_transactions(50);
        let b = QuestGen::new(small_params(), 7).take_transactions(50);
        assert_eq!(a, b);
        let c = QuestGen::new(small_params(), 8).take_transactions(50);
        assert_ne!(a, c);
    }

    #[test]
    fn tids_increase_monotonically_from_one() {
        let txs = QuestGen::new(small_params(), 1).take_transactions(20);
        for (i, t) in txs.iter().enumerate() {
            assert_eq!(t.tid(), Tid(i as u64 + 1));
        }
    }

    #[test]
    fn transactions_are_nonempty_and_in_domain() {
        let p = small_params();
        let txs = QuestGen::new(p.clone(), 3).take_transactions(300);
        for t in &txs {
            assert!(!t.is_empty());
            for &it in t.items() {
                assert!(it.id() < p.n_items);
            }
        }
    }

    #[test]
    fn average_length_tracks_parameter() {
        let p = small_params();
        let txs = QuestGen::new(p.clone(), 11).take_transactions(2000);
        let mean: f64 = txs.iter().map(|t| t.len() as f64).sum::<f64>() / txs.len() as f64;
        // Corruption and packing shift the mean; it should land in a broad
        // band around the target.
        assert!(
            mean > p.avg_tx_len * 0.4 && mean < p.avg_tx_len * 1.6,
            "mean length {mean} vs target {}",
            p.avg_tx_len
        );
    }

    #[test]
    fn patterns_create_skew() {
        // With patterns, some items must be markedly more frequent than the
        // uniform baseline — that skew is what frequent-itemset mining eats.
        let p = small_params();
        let txs = QuestGen::new(p.clone(), 5).take_transactions(2000);
        let mut counts = vec![0u32; p.n_items as usize];
        for t in &txs {
            for &it in t.items() {
                counts[it.index()] += 1;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        assert!(max > 2.0 * mean, "max {max} should exceed 2× mean {mean}");
    }

    #[test]
    fn streaming_equals_batch() {
        // Two consecutive take_transactions calls are the same stream as one.
        let mut g1 = QuestGen::new(small_params(), 9);
        let mut head = g1.take_transactions(30);
        head.extend(g1.take_transactions(20));
        let g2 = QuestGen::new(small_params(), 9).take_transactions(50);
        assert_eq!(head, g2);
    }
}
