//! A synthetic web-proxy request stream standing in for the 1996 DEC traces.
//!
//! The paper's pattern-detection experiments (§5.3) run on 21 days of web
//! proxy requests (8 AM 9-2-1996 through midnight 9-22-1996), where each
//! request is reduced to a 2-item transaction: the requested **object type**
//! (10 classes) and the **response-size bucket** (10 000-byte buckets).
//! The real traces are no longer a reasonable dependency, so this generator
//! plants exactly the structure those experiments detect:
//!
//! * working-day **business hours** (8 AM – 4 PM) have their own request
//!   mix, different from **evenings** and **nights**;
//! * **Tuesday/Thursday evenings** differ from other weekday evenings
//!   (the paper reports a "4 PM - 12 PM on all Tuesdays and Thursdays"
//!   pattern);
//! * **weekends** and the labor-day holiday share a leisure mix, and
//!   weekday **nights** resemble it (the paper found late-night weekday
//!   blocks similar to weekend blocks);
//! * **Monday 9-9-1996** is anomalous all day (the paper's "surprising"
//!   block).
//!
//! Blocks are cut at 4/6/8/12/24-hour granularity starting from noon of
//! day 0, matching the paper's 82 six-hour blocks.

use demon_types::{Block, BlockId, BlockInterval, Item, Tid, Timestamp, Transaction, TxBlock};
use demon_types::calendar::{is_working_day, Weekday};
use demon_types::timestamp::HOUR;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Poisson};
use serde::{Deserialize, Serialize};

/// Number of object-type classes (paper: "classified into 10 different
/// types").
pub const N_OBJECT_TYPES: u32 = 10;
/// Number of response-size buckets (paper: "1000 consecutive intervals of
/// size 10000 bytes").
pub const N_SIZE_BUCKETS: u32 = 1000;
/// Total item universe when requests are encoded as transactions.
pub const N_ITEMS: u32 = N_OBJECT_TYPES + N_SIZE_BUCKETS;

/// One web-proxy request, already reduced to the fields the experiment
/// uses: a timestamp, the object type, and the response-size bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Request arrival time.
    pub ts: Timestamp,
    /// Object type, `0..N_OBJECT_TYPES`.
    pub object_type: u32,
    /// Response-size bucket, `0..N_SIZE_BUCKETS`.
    pub size_bucket: u32,
}

impl Request {
    /// Encodes the request as a 2-item transaction: item `object_type` and
    /// item `N_OBJECT_TYPES + size_bucket`.
    pub fn to_transaction(self, tid: Tid) -> Transaction {
        Transaction::from_sorted(
            tid,
            vec![
                Item(self.object_type),
                Item(N_OBJECT_TYPES + self.size_bucket),
            ],
        )
    }
}

/// The traffic regime in force during a given hour.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// Working-day business hours, 8 AM – 4 PM.
    Business,
    /// Working-day evening, 4 PM – midnight (Mon/Wed/Fri).
    Evening,
    /// Tuesday/Thursday evening, 4 PM – midnight.
    TueThuEvening,
    /// Weekday night, midnight – 8 AM.
    Night,
    /// Weekend or holiday, all day.
    Leisure,
    /// The anomalous Monday (day 7 = 9-9-1996), all day.
    Anomaly,
}

/// Day index of the planted anomalous Monday (9-9-1996).
pub const ANOMALY_DAY: u64 = 7;

/// The regime in force on `day` at `hour`.
pub fn regime(day: u64, hour: u64) -> Regime {
    if day == ANOMALY_DAY {
        return Regime::Anomaly;
    }
    if !is_working_day(day) {
        return Regime::Leisure;
    }
    match hour {
        8..=15 => Regime::Business,
        16..=23 => match Weekday::of_day(day) {
            Weekday::Tue | Weekday::Thu => Regime::TueThuEvening,
            _ => Regime::Evening,
        },
        _ => Regime::Night,
    }
}

/// Per-regime request mix: relative weights of the 10 object types and the
/// mean size bucket of each type (buckets are geometric around the mean).
struct RegimeMix {
    /// Cumulative type weights for sampling.
    type_cdf: [f64; N_OBJECT_TYPES as usize],
    /// Mean size bucket per type.
    mean_bucket: [f64; N_OBJECT_TYPES as usize],
    /// Mean requests per hour, as a multiple of the configured base rate.
    intensity: f64,
}

fn build_mix(weights: [f64; 10], mean_bucket: [f64; 10], intensity: f64) -> RegimeMix {
    let total: f64 = weights.iter().sum();
    let mut type_cdf = [0.0; 10];
    let mut acc = 0.0;
    for (cdf, w) in type_cdf.iter_mut().zip(weights.iter()) {
        acc += w / total;
        *cdf = acc;
    }
    RegimeMix {
        type_cdf,
        mean_bucket,
        intensity,
    }
}

impl Regime {
    fn mix(self) -> RegimeMix {
        // Object types, loosely: 0=html 1=gif 2=jpg 3=cgi 4=text 5=audio
        // 6=video 7=zip 8=exe 9=other. The exact semantics don't matter —
        // only that regimes induce *different* frequent (type, bucket)
        // itemsets at κ=1%.
        match self {
            Regime::Business => build_mix(
                [30.0, 25.0, 10.0, 15.0, 10.0, 2.0, 1.0, 3.0, 2.0, 2.0],
                [2.0, 1.5, 4.0, 1.0, 2.0, 30.0, 80.0, 50.0, 40.0, 5.0],
                1.0,
            ),
            Regime::Evening => build_mix(
                [20.0, 30.0, 20.0, 5.0, 5.0, 8.0, 6.0, 3.0, 1.0, 2.0],
                [2.5, 2.0, 5.0, 1.0, 2.0, 35.0, 90.0, 55.0, 45.0, 6.0],
                0.55,
            ),
            Regime::TueThuEvening => build_mix(
                // Video/audio-heavy evenings, shifting both the type mix
                // and the heavy size buckets.
                [10.0, 15.0, 15.0, 3.0, 3.0, 20.0, 25.0, 5.0, 2.0, 2.0],
                [2.5, 2.0, 5.0, 1.0, 2.0, 40.0, 120.0, 60.0, 50.0, 6.0],
                0.6,
            ),
            Regime::Night => build_mix(
                // Close to Leisure: big automated downloads, few pages.
                [8.0, 10.0, 12.0, 2.0, 3.0, 15.0, 20.0, 18.0, 8.0, 4.0],
                [3.0, 2.0, 6.0, 1.0, 2.0, 45.0, 110.0, 70.0, 60.0, 8.0],
                0.18,
            ),
            Regime::Leisure => build_mix(
                [9.0, 11.0, 13.0, 2.0, 3.0, 16.0, 19.0, 16.0, 7.0, 4.0],
                [3.0, 2.0, 6.0, 1.0, 2.0, 44.0, 108.0, 68.0, 58.0, 8.0],
                0.3,
            ),
            Regime::Anomaly => build_mix(
                // A crawler hammering cgi endpoints with tiny responses.
                [5.0, 3.0, 2.0, 70.0, 10.0, 1.0, 1.0, 3.0, 3.0, 2.0],
                [1.0, 1.0, 1.0, 0.3, 0.5, 10.0, 20.0, 15.0, 12.0, 2.0],
                1.4,
            ),
        }
    }
}

/// Configuration of the web-trace generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WebTraceConfig {
    /// Number of days in the trace (the paper's trace spans 21).
    pub days: u64,
    /// Hour of day 0 at which the trace starts (paper: 8 AM).
    pub start_hour: u64,
    /// Mean requests per hour in the business regime; other regimes scale
    /// by their intensity factor.
    pub base_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WebTraceConfig {
    fn default() -> Self {
        WebTraceConfig {
            days: 21,
            start_hour: 8,
            base_rate: 2000.0,
            seed: 0xDEC_1996,
        }
    }
}

/// The web-trace generator.
pub struct WebTraceGen {
    config: WebTraceConfig,
    rng: StdRng,
}

impl WebTraceGen {
    /// Builds a generator for `config`.
    pub fn new(config: WebTraceConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        WebTraceGen { config, rng }
    }

    /// The configuration.
    pub fn config(&self) -> &WebTraceConfig {
        &self.config
    }

    /// End of the trace: midnight after the last day.
    pub fn end(&self) -> Timestamp {
        Timestamp::from_day_hour(self.config.days, 0)
    }

    /// Generates the full request stream, sorted by timestamp.
    pub fn generate(&mut self) -> Vec<Request> {
        let start = Timestamp::from_day_hour(0, self.config.start_hour);
        let end = self.end();
        let mut out = Vec::new();
        let mut hour_start = start;
        while hour_start < end {
            let day = hour_start.day();
            let hour = hour_start.hour();
            let mix = regime(day, hour).mix();
            let rate = (self.config.base_rate * mix.intensity).max(1.0);
            let n = Poisson::new(rate).expect("positive rate").sample(&mut self.rng) as usize;
            let mut stamps: Vec<u64> = (0..n)
                .map(|_| hour_start.secs() + self.rng.gen_range(0..HOUR))
                .collect();
            stamps.sort_unstable();
            for s in stamps {
                out.push(self.sample_request(Timestamp(s), &mix));
            }
            hour_start = hour_start.plus_secs(HOUR);
        }
        out
    }

    fn sample_request(&mut self, ts: Timestamp, mix: &RegimeMix) -> Request {
        let x: f64 = self.rng.gen();
        let object_type = mix.type_cdf.iter().position(|&c| x <= c).unwrap_or(9) as u32;
        // Geometric bucket with the regime/type-specific mean: bucket =
        // floor(Exp(mean)) has the right tail shape for response sizes.
        let mean = mix.mean_bucket[object_type as usize];
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let bucket = ((-u.ln()) * mean).floor() as u32;
        Request {
            ts,
            object_type,
            size_bucket: bucket.min(N_SIZE_BUCKETS - 1),
        }
    }
}

/// Segments a request stream into transaction blocks of
/// `granularity_hours`, starting at `segment_start` (the paper numbers its
/// 6-hour blocks from **noon** of day 0). Requests before `segment_start`
/// are dropped, mirroring the paper's block numbering. TIDs are assigned
/// sequentially across the whole stream, so the additivity/0-1 properties
/// of per-block TID-lists hold.
pub fn segment_into_blocks(
    requests: &[Request],
    granularity_hours: u64,
    segment_start: Timestamp,
) -> Vec<TxBlock> {
    assert!(granularity_hours > 0, "granularity must be positive");
    let mut blocks = Vec::new();
    let span = granularity_hours * HOUR;
    let mut tid = Tid(1);
    let mut idx = requests.partition_point(|r| r.ts < segment_start);
    let mut window_start = segment_start;
    let last_ts = match requests.last() {
        Some(r) => r.ts,
        None => return blocks,
    };
    let mut id = BlockId::FIRST;
    while window_start <= last_ts {
        let window_end = window_start.plus_secs(span);
        let mut txs = Vec::new();
        while idx < requests.len() && requests[idx].ts < window_end {
            txs.push(requests[idx].to_transaction(tid));
            tid = tid.next();
            idx += 1;
        }
        blocks.push(Block::with_interval(
            id,
            BlockInterval::new(window_start, window_end),
            txs,
        ));
        id = id.next();
        window_start = window_end;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WebTraceConfig {
        WebTraceConfig {
            days: 7,
            start_hour: 8,
            base_rate: 50.0,
            seed: 11,
        }
    }

    #[test]
    fn regime_schedule_matches_plan() {
        // Day 0 is the labor-day holiday.
        assert_eq!(regime(0, 10), Regime::Leisure);
        // Day 1 is a Tuesday: business by day, TueThu in the evening.
        assert_eq!(regime(1, 10), Regime::Business);
        assert_eq!(regime(1, 20), Regime::TueThuEvening);
        assert_eq!(regime(1, 3), Regime::Night);
        // Day 2 is a Wednesday evening.
        assert_eq!(regime(2, 20), Regime::Evening);
        // Day 5/6 are the weekend.
        assert_eq!(regime(5, 12), Regime::Leisure);
        assert_eq!(regime(6, 12), Regime::Leisure);
        // Day 7 is the anomalous Monday, whatever the hour.
        assert_eq!(regime(ANOMALY_DAY, 12), Regime::Anomaly);
        assert_eq!(regime(ANOMALY_DAY, 3), Regime::Anomaly);
        // Day 8 is a normal Tuesday again.
        assert_eq!(regime(8, 10), Regime::Business);
    }

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let a = WebTraceGen::new(small_config()).generate();
        let b = WebTraceGen::new(small_config()).generate();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(!a.is_empty());
    }

    #[test]
    fn requests_are_in_domain() {
        let reqs = WebTraceGen::new(small_config()).generate();
        for r in &reqs {
            assert!(r.object_type < N_OBJECT_TYPES);
            assert!(r.size_bucket < N_SIZE_BUCKETS);
        }
    }

    #[test]
    fn trace_respects_start_and_end() {
        let mut g = WebTraceGen::new(small_config());
        let end = g.end();
        let reqs = g.generate();
        assert!(reqs.first().unwrap().ts >= Timestamp::from_day_hour(0, 8));
        assert!(reqs.last().unwrap().ts < end);
    }

    #[test]
    fn business_hours_are_busier_than_nights() {
        let reqs = WebTraceGen::new(small_config()).generate();
        // Day 1 (working Tuesday): compare 10:00-11:00 vs 02:00-03:00 volume.
        let count = |day, hour| {
            reqs.iter()
                .filter(|r| r.ts.day() == day && r.ts.hour() == hour)
                .count()
        };
        assert!(count(1, 10) > 2 * count(1, 2));
    }

    #[test]
    fn request_encodes_to_two_item_transaction() {
        let r = Request {
            ts: Timestamp(0),
            object_type: 3,
            size_bucket: 17,
        };
        let t = r.to_transaction(Tid(5));
        assert_eq!(t.tid(), Tid(5));
        assert_eq!(t.items(), &[Item(3), Item(N_OBJECT_TYPES + 17)]);
    }

    #[test]
    fn segmentation_produces_contiguous_blocks() {
        let reqs = WebTraceGen::new(small_config()).generate();
        let noon = Timestamp::from_day_hour(0, 12);
        let blocks = segment_into_blocks(&reqs, 6, noon);
        // 7 days minus the first 12 hours = 6.5 days = 26 six-hour blocks.
        assert_eq!(blocks.len(), 26);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.id(), BlockId(i as u64 + 1));
            let iv = b.interval().unwrap();
            assert_eq!(iv.duration_secs(), 6 * HOUR);
            assert_eq!(iv.start, noon.plus_secs(i as u64 * 6 * HOUR));
            for tx in b.records() {
                assert_eq!(tx.len(), 2);
            }
        }
        // TIDs increase across block boundaries.
        let mut last = Tid(0);
        for b in &blocks {
            for tx in b.records() {
                assert!(tx.tid() > last);
                last = tx.tid();
            }
        }
    }

    #[test]
    fn paper_scale_block_count_is_82() {
        // 21 days from noon day-0 to midnight day-21 = 20.5 days = 82 blocks.
        let cfg = WebTraceConfig {
            days: 21,
            base_rate: 2.0,
            ..small_config()
        };
        let reqs = WebTraceGen::new(cfg).generate();
        let noon = Timestamp::from_day_hour(0, 12);
        let blocks = segment_into_blocks(&reqs, 6, noon);
        assert_eq!(blocks.len(), 82);
    }

    #[test]
    fn segmentation_drops_pre_start_requests() {
        let reqs = vec![
            Request {
                ts: Timestamp::from_day_hour(0, 9),
                object_type: 0,
                size_bucket: 0,
            },
            Request {
                ts: Timestamp::from_day_hour(0, 13),
                object_type: 1,
                size_bucket: 1,
            },
        ];
        let noon = Timestamp::from_day_hour(0, 12);
        let blocks = segment_into_blocks(&reqs, 6, noon);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 1);
    }

    #[test]
    fn empty_stream_yields_no_blocks() {
        let blocks = segment_into_blocks(&[], 6, Timestamp(0));
        assert!(blocks.is_empty());
    }
}
