//! Synthetic data generators for the DEMON experiments.
//!
//! Three generators reproduce the paper's data sources:
//!
//! * [`quest`] — the IBM Quest market-basket generator of Agrawal &
//!   Srikant (VLDB '94), with the paper's `NM.tlL.|I|I.NpPats.pPlen`
//!   parameterization (e.g. `2M.20L.1I.4pats.4plen`);
//! * [`clusters`] — the Gaussian-cluster generator in the style of Agrawal
//!   et al. (SIGMOD '98) used for the BIRCH experiments (`NM.Kc.dd` plus a
//!   uniform-noise fraction);
//! * [`webtrace`] — a synthetic web-proxy request stream standing in for
//!   the 1996 DEC traces, with planted diurnal/weekly/holiday structure so
//!   that the compact-sequence experiments exercise the same code path.
//!
//! A fourth generator, [`drift`], schedules regime switches over a Quest
//! stream — the data process behind the paper's "popularity of most toys
//! is short-lived" motivation. Its density analogue, [`shapes`], plants a
//! moons→rings shape switch in a point stream: a drift that centroid-based
//! models barely see but density models flag.
//!
//! Every generator is deterministic given its seed.
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §6.1 | Quest datasets (`2M.20L.1I.4pats.4plen` notation) | [`quest`] |
//! | §6.1 | Gaussian-cluster datasets | [`clusters`] |
//! | §5 | DEC web-proxy traces (synthetic stand-in) | [`webtrace`] |
//! | §1 (motivation) | drifting regimes | [`drift`] |
//! | §3.2.4 | planted density drift (moons → rings) | [`shapes`] |
//!
//! # Example
//!
//! ```
//! use demon_datagen::{QuestGen, QuestParams};
//!
//! // The paper's dataset notation, scaled to laptop size.
//! let params = QuestParams::parse("2M.20L.1I.4pats.4plen", 0.001).unwrap();
//! assert_eq!(params.n_transactions, 2_000);
//! let mut gen = QuestGen::new(params, 42);
//! let txs = gen.take_transactions(100);
//! assert_eq!(txs.len(), 100);
//! // TIDs increase in arrival order — the property per-block TID-lists
//! // are built on.
//! assert!(txs.windows(2).all(|w| w[0].tid() < w[1].tid()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod clusters;
pub mod drift;
pub mod quest;
pub mod shapes;
pub mod webtrace;

pub use clusters::{ClusterDataGen, ClusterParams};
pub use drift::DriftingQuestGen;
pub use quest::{QuestGen, QuestParams};
pub use shapes::{shape_points, DensityDriftGen, Shape, ShapeParams};
pub use webtrace::{Request, WebTraceConfig, WebTraceGen};
