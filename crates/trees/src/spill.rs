//! Storage-engine adapter: lets labeled-point blocks live in a
//! memory-bounded [`demon_store::BlockStore`], spilling to disk in the
//! framed [`demon_types::durable`] format when a `--memory-budget` is
//! set.

use crate::LabeledPoint;
use demon_store::Spillable;
use demon_types::durable::FrameClass;
use demon_types::{Block, BlockId, BlockInterval, DemonError, Point, Result, Timestamp};

/// A labeled-point block wrapped for the block storage engine.
#[derive(Clone, Debug)]
pub struct LabeledBlockEntry(pub Block<LabeledPoint>);

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DemonError::Serde(format!("truncated u64 at offset {pos}")))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

impl Spillable for LabeledBlockEntry {
    fn frame_class() -> FrameClass {
        FrameClass::LABELED
    }

    fn encode(&self) -> Result<Vec<u8>> {
        let block = &self.0;
        let mut buf = Vec::new();
        put_u64(&mut buf, block.id().value());
        match block.interval() {
            None => buf.push(0),
            Some(iv) => {
                buf.push(1);
                put_u64(&mut buf, iv.start.secs());
                put_u64(&mut buf, iv.end.secs());
            }
        }
        let dim = block
            .records()
            .first()
            .map_or(0, |r| r.point.coords().len());
        put_u64(&mut buf, dim as u64);
        put_u64(&mut buf, block.len() as u64);
        for r in block.records() {
            if r.point.coords().len() != dim {
                return Err(DemonError::Serde(format!(
                    "block {}: mixed point dimensions {} and {dim}",
                    block.id(),
                    r.point.coords().len()
                )));
            }
            put_u64(&mut buf, u64::from(r.label));
            for &c in r.point.coords() {
                put_u64(&mut buf, c.to_bits());
            }
        }
        Ok(buf)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let id = BlockId(read_u64(bytes, &mut pos)?);
        let tag = *bytes
            .get(pos)
            .ok_or_else(|| DemonError::Serde("truncated interval tag".into()))?;
        pos += 1;
        let interval = match tag {
            0 => None,
            1 => {
                let start = read_u64(bytes, &mut pos)?;
                let end = read_u64(bytes, &mut pos)?;
                Some(BlockInterval::new(Timestamp(start), Timestamp(end)))
            }
            other => return Err(DemonError::Serde(format!("invalid interval tag {other}"))),
        };
        let dim = usize::try_from(read_u64(bytes, &mut pos)?)
            .map_err(|_| DemonError::Serde("point dimension overflows usize".into()))?;
        let count = read_u64(bytes, &mut pos)?;
        let need = count
            .checked_mul(1 + dim as u64)
            .and_then(|w| w.checked_mul(8));
        if need != Some((bytes.len() - pos) as u64) {
            return Err(DemonError::Serde(format!(
                "labeled payload size mismatch: {count} records of dim {dim}"
            )));
        }
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let label_raw = read_u64(bytes, &mut pos)?;
            let label = u32::try_from(label_raw)
                .map_err(|_| DemonError::Serde(format!("label {label_raw} overflows u32")))?;
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                coords.push(f64::from_bits(read_u64(bytes, &mut pos)?));
            }
            records.push(LabeledPoint {
                point: Point::new(coords),
                label,
            });
        }
        let block = match interval {
            Some(iv) => Block::with_interval(id, iv, records),
            None => Block::new(id, records),
        };
        Ok(LabeledBlockEntry(block))
    }

    fn resident_bytes(&self) -> u64 {
        let dim = self
            .0
            .records()
            .first()
            .map_or(0, |r| r.point.coords().len());
        64 + self.0.len() as u64 * (40 + 8 * dim as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_block_roundtrips() {
        let block = Block::with_interval(
            BlockId(9),
            BlockInterval::new(Timestamp(5), Timestamp(6)),
            vec![
                LabeledPoint::new(vec![0.5, -1.5], 0),
                LabeledPoint::new(vec![2.0, 3.0], 1),
            ],
        );
        let entry = LabeledBlockEntry(block);
        let back = LabeledBlockEntry::decode(&entry.encode().unwrap()).unwrap();
        assert_eq!(back.0.id(), entry.0.id());
        assert_eq!(back.0.interval(), entry.0.interval());
        assert_eq!(back.0.records(), entry.0.records());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let entry = LabeledBlockEntry(Block::new(
            BlockId(1),
            vec![LabeledPoint::new(vec![1.0], 0)],
        ));
        let bytes = entry.encode().unwrap();
        assert!(LabeledBlockEntry::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
