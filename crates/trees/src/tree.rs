//! A greedy binary decision tree (CART-style, Gini impurity).

use demon_types::Point;
use serde::{Deserialize, Serialize};

/// A labeled training record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LabeledPoint {
    /// The feature vector.
    pub point: Point,
    /// The class label, `0..n_classes`.
    pub label: u32,
}

impl LabeledPoint {
    /// Convenience constructor.
    pub fn new(coords: Vec<f64>, label: u32) -> Self {
        LabeledPoint {
            point: Point::new(coords),
            label,
        }
    }
}

/// Tree-growing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Number of classes in the label domain.
    pub n_classes: u32,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer records than this.
    pub min_leaf: usize,
    /// Candidate thresholds per dimension (quantile cuts).
    pub n_thresholds: usize,
}

impl TreeParams {
    /// Reasonable defaults for `n_classes` classes.
    pub fn new(n_classes: u32) -> Self {
        TreeParams {
            n_classes,
            max_depth: 8,
            min_leaf: 4,
            n_thresholds: 16,
        }
    }
}

type NodeId = usize;

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Split {
        dim: usize,
        threshold: f64,
        /// Records with `point[dim] <= threshold` go left.
        left: NodeId,
        right: NodeId,
    },
    Leaf {
        /// Per-class record counts at this leaf.
        counts: Vec<u64>,
    },
}

/// An axis-aligned leaf region: per-dimension `(lower, upper]` bounds
/// (infinite where the path never constrained the dimension), with the
/// leaf's class distribution. This is the structural + measure component
/// FOCUS consumes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Exclusive lower bounds per dimension (`-∞` as `f64::NEG_INFINITY`).
    pub lower: Vec<f64>,
    /// Inclusive upper bounds per dimension (`+∞` as `f64::INFINITY`).
    pub upper: Vec<f64>,
    /// Per-class counts of the training records that landed here.
    pub counts: Vec<u64>,
}

impl Region {
    /// Whether `p` falls inside the region.
    pub fn contains(&self, p: &Point) -> bool {
        p.coords()
            .iter()
            .zip(self.lower.iter().zip(&self.upper))
            .all(|(&x, (&lo, &hi))| x > lo && x <= hi)
    }

    /// Total records in the region.
    pub fn n(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The majority class of the region (ties: lowest label).
    pub fn majority(&self) -> u32 {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i as u32)
            .unwrap_or(0)
    }
}

/// The decision-tree model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DecisionTree {
    params: TreeParams,
    dim: usize,
    nodes: Vec<Node>,
    root: NodeId,
    n_records: u64,
}

impl DecisionTree {
    /// Grows a tree over `records` (all of dimension `dim`).
    pub fn fit(records: &[LabeledPoint], dim: usize, params: TreeParams) -> Self {
        assert!(params.n_classes >= 2, "need at least two classes");
        let mut tree = DecisionTree {
            params,
            dim,
            nodes: Vec::new(),
            root: 0,
            n_records: records.len() as u64,
        };
        let idx: Vec<usize> = (0..records.len()).collect();
        tree.root = tree.grow(records, idx, 0);
        tree
    }

    /// The tree-growing parameters.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Training-set size.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    fn grow(&mut self, records: &[LabeledPoint], idx: Vec<usize>, depth: usize) -> NodeId {
        let counts = self.class_counts(records, &idx);
        let impure = counts.iter().filter(|&&c| c > 0).count() > 1;
        if depth >= self.params.max_depth || idx.len() < 2 * self.params.min_leaf || !impure {
            return self.push(Node::Leaf { counts });
        }
        match self.best_split(records, &idx, &counts) {
            None => self.push(Node::Leaf { counts }),
            Some((dim, threshold)) => {
                let (l, r): (Vec<usize>, Vec<usize>) = idx
                    .into_iter()
                    .partition(|&i| records[i].point.coords()[dim] <= threshold);
                if l.len() < self.params.min_leaf || r.len() < self.params.min_leaf {
                    return self.push(Node::Leaf { counts });
                }
                let left = self.grow(records, l, depth + 1);
                let right = self.grow(records, r, depth + 1);
                self.push(Node::Split {
                    dim,
                    threshold,
                    left,
                    right,
                })
            }
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn class_counts(&self, records: &[LabeledPoint], idx: &[usize]) -> Vec<u64> {
        let mut counts = vec![0u64; self.params.n_classes as usize];
        for &i in idx {
            counts[records[i].label as usize] += 1;
        }
        counts
    }

    /// Gini impurity of a count vector.
    fn gini(counts: &[u64]) -> f64 {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let nf = n as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / nf;
                p * p
            })
            .sum::<f64>()
    }

    /// The `(dim, threshold)` minimizing the weighted child Gini, over
    /// quantile-candidate thresholds; `None` when no split improves.
    fn best_split(
        &self,
        records: &[LabeledPoint],
        idx: &[usize],
        parent_counts: &[u64],
    ) -> Option<(usize, f64)> {
        let parent_gini = Self::gini(parent_counts);
        let n = idx.len() as f64;
        let mut best: Option<(f64, usize, f64)> = None;
        for dim in 0..self.dim {
            let mut values: Vec<f64> = idx
                .iter()
                .map(|&i| records[i].point.coords()[dim])
                .collect();
            values.sort_by(f64::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            // Small nodes: try every boundary; large nodes: quantile cuts.
            let step = if values.len() <= 4 * self.params.n_thresholds {
                1
            } else {
                values.len() / (self.params.n_thresholds + 1)
            };
            for cut in (step..values.len()).step_by(step) {
                let threshold = (values[cut - 1] + values[cut]) / 2.0;
                let mut left = vec![0u64; self.params.n_classes as usize];
                let mut right = vec![0u64; self.params.n_classes as usize];
                for &i in idx {
                    if records[i].point.coords()[dim] <= threshold {
                        left[records[i].label as usize] += 1;
                    } else {
                        right[records[i].label as usize] += 1;
                    }
                }
                let (nl, nr) = (
                    left.iter().sum::<u64>() as f64,
                    right.iter().sum::<u64>() as f64,
                );
                if nl == 0.0 || nr == 0.0 {
                    continue;
                }
                let weighted =
                    (nl / n) * Self::gini(&left) + (nr / n) * Self::gini(&right);
                if weighted < parent_gini - 1e-12
                    && best.is_none_or(|(b, _, _)| weighted < b)
                {
                    best = Some((weighted, dim, threshold));
                }
            }
        }
        best.map(|(_, d, t)| (d, t))
    }

    /// Predicts the class of a point (majority label of its leaf).
    pub fn predict(&self, p: &Point) -> u32 {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Split {
                    dim,
                    threshold,
                    left,
                    right,
                } => {
                    node = if p.coords()[*dim] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf { counts } => {
                    return counts
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
                        .map(|(i, _)| i as u32)
                        .unwrap_or(0);
                }
            }
        }
    }

    /// Accuracy over a labeled set.
    pub fn accuracy(&self, records: &[LabeledPoint]) -> f64 {
        if records.is_empty() {
            return 1.0;
        }
        let hits = records
            .iter()
            .filter(|r| self.predict(&r.point) == r.label)
            .count();
        hits as f64 / records.len() as f64
    }

    /// The leaf regions — FOCUS's structural component with per-class
    /// measures. Regions partition the space.
    pub fn regions(&self) -> Vec<Region> {
        let mut out = Vec::with_capacity(self.n_leaves());
        let lower = vec![f64::NEG_INFINITY; self.dim];
        let upper = vec![f64::INFINITY; self.dim];
        self.collect_regions(self.root, lower, upper, &mut out);
        out
    }

    fn collect_regions(
        &self,
        node: NodeId,
        lower: Vec<f64>,
        upper: Vec<f64>,
        out: &mut Vec<Region>,
    ) {
        match &self.nodes[node] {
            Node::Leaf { counts } => out.push(Region {
                lower,
                upper,
                counts: counts.clone(),
            }),
            Node::Split {
                dim,
                threshold,
                left,
                right,
            } => {
                let mut lu = upper.clone();
                lu[*dim] = threshold.min(upper[*dim]);
                self.collect_regions(*left, lower.clone(), lu, out);
                let mut rl = lower;
                rl[*dim] = threshold.max(rl[*dim]);
                self.collect_regions(*right, rl, upper, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// Two Gaussian-ish classes separated along dimension 0.
    fn two_class_data(n_per: usize, seed: u64) -> Vec<LabeledPoint> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        for _ in 0..n_per {
            data.push(LabeledPoint::new(
                vec![rng.gen_range(-5.0..-1.0), rng.gen_range(-3.0..3.0)],
                0,
            ));
            data.push(LabeledPoint::new(
                vec![rng.gen_range(1.0..5.0), rng.gen_range(-3.0..3.0)],
                1,
            ));
        }
        data.shuffle(&mut rng);
        data
    }

    #[test]
    fn learns_linearly_separable_data() {
        let data = two_class_data(100, 1);
        let tree = DecisionTree::fit(&data, 2, TreeParams::new(2));
        // Quantile threshold candidates may miss the exact class boundary
        // by a few records; near-perfect accuracy is the contract.
        assert!(tree.accuracy(&data) >= 0.99, "accuracy {}", tree.accuracy(&data));
        assert_eq!(tree.predict(&Point::new(vec![-3.0, 0.0])), 0);
        assert_eq!(tree.predict(&Point::new(vec![3.0, 0.0])), 1);
        assert!(tree.n_leaves() >= 2);
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let x: f64 = rng.gen_range(-1.0..1.0);
            let y: f64 = rng.gen_range(-1.0..1.0);
            let label = u32::from((x > 0.0) != (y > 0.0));
            data.push(LabeledPoint::new(vec![x, y], label));
        }
        let tree = DecisionTree::fit(&data, 2, TreeParams::new(2));
        assert!(tree.accuracy(&data) > 0.95, "xor accuracy {}", tree.accuracy(&data));
    }

    #[test]
    fn pure_data_yields_single_leaf() {
        let data: Vec<LabeledPoint> = (0..20)
            .map(|i| LabeledPoint::new(vec![i as f64], 1))
            .collect();
        let tree = DecisionTree::fit(&data, 1, TreeParams::new(2));
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&Point::new(vec![100.0])), 1);
    }

    #[test]
    fn max_depth_caps_growth() {
        let data = two_class_data(200, 3);
        let mut params = TreeParams::new(2);
        params.max_depth = 1;
        let tree = DecisionTree::fit(&data, 2, params);
        assert!(tree.n_leaves() <= 2);
    }

    #[test]
    fn min_leaf_prevents_sliver_splits() {
        let data = two_class_data(6, 4);
        let mut params = TreeParams::new(2);
        params.min_leaf = 100;
        let tree = DecisionTree::fit(&data, 2, params);
        assert_eq!(tree.n_leaves(), 1);
    }

    #[test]
    fn regions_partition_the_space() {
        let data = two_class_data(80, 5);
        let tree = DecisionTree::fit(&data, 2, TreeParams::new(2));
        let regions = tree.regions();
        assert_eq!(regions.len(), tree.n_leaves());
        // Every training point falls in exactly one region, and the
        // region's majority equals the prediction.
        for r in &data {
            let homes: Vec<&Region> = regions.iter().filter(|g| g.contains(&r.point)).collect();
            assert_eq!(homes.len(), 1, "point in {} regions", homes.len());
            assert_eq!(homes[0].majority(), tree.predict(&r.point));
        }
        // Region counts sum to the training size.
        let total: u64 = regions.iter().map(Region::n).sum();
        assert_eq!(total, tree.n_records());
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let data = two_class_data(60, 6);
        let tree = DecisionTree::fit(&data, 2, TreeParams::new(2));
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        for r in &data {
            assert_eq!(tree.predict(&r.point), back.predict(&r.point));
        }
    }

    #[test]
    fn three_classes_supported() {
        let mut data = Vec::new();
        for i in 0..60 {
            let x = (i % 3) as f64 * 10.0 + (i as f64 * 0.01);
            data.push(LabeledPoint::new(vec![x], (i % 3) as u32));
        }
        let tree = DecisionTree::fit(&data, 1, TreeParams::new(3));
        assert_eq!(tree.predict(&Point::new(vec![0.1])), 0);
        assert_eq!(tree.predict(&Point::new(vec![10.1])), 1);
        assert_eq!(tree.predict(&Point::new(vec![20.1])), 2);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class_config() {
        let data = vec![LabeledPoint::new(vec![0.0], 0)];
        DecisionTree::fit(&data, 1, TreeParams::new(1));
    }
}
