//! Decision-tree classifiers for the DEMON framework.
//!
//! The FOCUS deviation framework (paper §4) "can be instantiated with any
//! one of three popular data mining models: frequent itemsets, decision
//! tree classifiers, and clusters". This crate supplies the third model
//! class: a greedy binary CART-style classifier over numeric points with
//! class labels, whose leaves expose the *structural component* FOCUS
//! needs — axis-aligned regions with per-class measures.
//!
//! (Incremental decision-tree *maintenance* is the authors' separate BOAT
//! line of work, which the paper explicitly does not revisit; here the
//! tree is the model FOCUS compares across blocks.)
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §4 (FOCUS model classes) | decision-tree model | [`DecisionTree`] |
//! | §4 | structural component (leaf regions) | [`Region`] |
//! | §4 | labeled numeric records | [`LabeledPoint`] |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod tree;

pub mod spill;

pub use spill::LabeledBlockEntry;
pub use tree::{DecisionTree, LabeledPoint, Region, TreeParams};
