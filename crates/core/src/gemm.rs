//! **GEMM** — the GEneric Model Maintainer for the most recent window
//! (paper §3.2, Algorithm 3.1).
//!
//! The window `D[t−w+1, t]` evolves in `w` steps, so the model of any
//! future window can be grown incrementally from the prefix it shares
//! with the current window. GEMM therefore maintains `w` models: the
//! current one plus one per overlapping future window, each extracted
//! with respect to the projected (window-independent) or right-shifted
//! (window-relative) BSS. When block `D_{t+1}` arrives:
//!
//! * the model covering `D[t−w+2, t]` absorbs the block (iff its BSS bit
//!   is 1) and *becomes the new current model* — the cost of exactly this
//!   one update is the **response time**;
//! * every other future-window model absorbs the block off-line (these
//!   updates may run in parallel and the models may live on disk — "main
//!   memory is not a limitation as long as a single model fits");
//! * a fresh model is started for the newest future window.
//!
//! ## Shelf durability
//!
//! Shelved models (`slot_<start>.model`) are written atomically as framed
//! checksummed files ([`demon_types::durable`]), so a crash mid-shelving
//! never leaves a torn model. Reads retry transient I/O errors a bounded
//! number of times. A shelf file that is missing or fails its checksum is
//! not fatal: GEMM **rebuilds** the model by replaying the window's block
//! stream through the maintainer (every block a maintained window can
//! reach is still registered), counts the event in
//! [`GemmStats::models_rebuilt`] / [`Gemm::shelf_rebuilds`], and carries
//! on.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::bss::BlockSelector;
use crate::maintainer::ModelMaintainer;
use demon_store::{BlockStore, Spillable, SpillPolicy};
use demon_types::durable::FrameClass;
use demon_types::parallel::{self, par_for_each_mut};
use demon_types::{obs, Block, BlockId, DemonError, Parallelism, Result};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many times a shelf read retries a transient I/O error before the
/// error is surfaced.
const SHELF_READ_ATTEMPTS: u32 = 3;

/// Where the off-line (non-current) models live between blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShelfMode {
    /// Keep every model in memory.
    Memory,
    /// Serialize off-line models to JSON files under this directory,
    /// loading each only for its update — the paper's disk shelf.
    Disk(PathBuf),
}

/// Timing of one GEMM step.
#[derive(Clone, Copy, Debug, Default)]
pub struct GemmStats {
    /// Time to produce the new *required* model (update of the slot that
    /// becomes current). This is the response time of §3.2.3.
    pub response_time: Duration,
    /// Time spent updating the remaining future-window models.
    pub offline_time: Duration,
    /// Whether the arriving block was selected into the current model.
    pub absorbed_into_current: bool,
    /// Number of off-line models that absorbed the block.
    pub offline_absorbed: usize,
    /// Shelved models that were rebuilt from the block stream during this
    /// step because their shelf file was missing or corrupt.
    pub models_rebuilt: usize,
}

/// One off-line model as held by the shelf's storage engine, keyed by
/// its future window's start block. On disk it is the same framed JSON
/// `slot_<start>.model` file the shelf has always written — the engine
/// supplies the atomic writes, checksums and residency tracking.
struct ShelfModel<T>(T);

impl<T: Clone + Send + Sync + serde::Serialize + serde::de::DeserializeOwned> Spillable
    for ShelfModel<T>
{
    fn frame_class() -> FrameClass {
        FrameClass::SHELF
    }

    fn spill_file_name(id: BlockId) -> String {
        format!("slot_{}.model", id.value())
    }

    fn encode(&self) -> Result<Vec<u8>> {
        let bytes = serde_json::to_vec(&self.0).map_err(|e| DemonError::Serde(e.to_string()))?;
        obs::add(obs::Counter::ShelfBytesWritten, bytes.len() as u64);
        Ok(bytes)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        obs::incr(obs::Counter::ShelfHits);
        obs::add(obs::Counter::ShelfBytesRead, bytes.len() as u64);
        serde_json::from_slice(bytes)
            .map(ShelfModel)
            .map_err(|e| DemonError::Serde(format!("shelved model does not parse: {e}")))
    }

    fn resident_bytes(&self) -> u64 {
        // Shelved models are not block data; the disk shelf evicts them
        // unconditionally (SpillPolicy::Always), so they contribute
        // nothing to the block-residency gauge.
        0
    }
}

/// Whether a shelf-load failure can be healed by replaying the block
/// stream: corruption in any form, or the file simply being gone.
/// Persistent I/O failures (permissions, exhausted retries) cannot.
fn shelf_loss_is_recoverable(e: &DemonError) -> bool {
    match e {
        DemonError::Corrupt { .. } | DemonError::ChecksumMismatch { .. } | DemonError::Serde(_) => {
            true
        }
        DemonError::Io(io) => io.kind() == std::io::ErrorKind::NotFound,
        _ => false,
    }
}

/// An I/O failure worth retrying a bounded number of times (anything
/// but a plainly-missing file, which the rebuild path handles instead).
fn shelf_loss_is_transient(e: &DemonError) -> bool {
    matches!(e, DemonError::Io(io) if io.kind() != std::io::ErrorKind::NotFound)
}

/// The generic most-recent-window maintainer.
pub struct Gemm<M: ModelMaintainer> {
    maintainer: M,
    selector: BlockSelector,
    w: usize,
    shelf: ShelfMode,
    /// The off-line models (every slot but the current one), held in a
    /// block storage engine: in-memory for [`ShelfMode::Memory`], spill
    /// with [`SpillPolicy::Always`] for [`ShelfMode::Disk`].
    store: BlockStore<ShelfModel<M::Model>>,
    par: Parallelism,
    retire: bool,
    /// Starts of the maintained future windows, ascending; the first is
    /// the current window.
    starts: Vec<BlockId>,
    /// The current window's model — always pinned in memory.
    current: Option<M::Model>,
    latest: Option<BlockId>,
    /// Lifetime count of shelved models rebuilt from the block stream
    /// (atomic because [`Gemm::future_model`] rebuilds through `&self`).
    rebuilds: AtomicU64,
}

impl<M: ModelMaintainer + Sync> Gemm<M> {
    /// A GEMM instance over `maintainer` with window size `w` and the
    /// given BSS. Off-line models stay in memory and update sequentially;
    /// see [`Gemm::with_shelf`] and [`Gemm::with_parallel_offline`].
    pub fn new(maintainer: M, w: usize, selector: BlockSelector) -> Result<Self> {
        if w == 0 {
            return Err(DemonError::InvalidParameter(
                "window size must be positive".into(),
            ));
        }
        if let BlockSelector::WindowRelative(wr) = &selector {
            if wr.window_size() != w {
                return Err(DemonError::BssMismatch {
                    got: wr.window_size(),
                    expected: w,
                });
            }
        }
        Ok(Gemm {
            maintainer,
            selector,
            w,
            shelf: ShelfMode::Memory,
            store: BlockStore::in_memory(),
            par: Parallelism::serial(),
            retire: true,
            starts: Vec::new(),
            current: None,
            latest: None,
            rebuilds: AtomicU64::new(0),
        })
    }

    /// Moves the off-line models to a disk shelf (call before the first
    /// block; switching modes discards any off-line models held so far).
    pub fn with_shelf(mut self, shelf: ShelfMode) -> Result<Self> {
        self.store = match &shelf {
            ShelfMode::Memory => BlockStore::in_memory(),
            ShelfMode::Disk(dir) => {
                BlockStore::spill(dir.clone(), SpillPolicy::Always, false)?
            }
        };
        self.shelf = shelf;
        Ok(self)
    }

    /// Updates the off-line models in parallel (they are independent; the
    /// paper notes they are not time-critical). `true` uses the
    /// process-wide default thread count
    /// ([`demon_types::parallel::global`]); see [`Gemm::with_parallelism`]
    /// for an explicit count.
    pub fn with_parallel_offline(self, parallel: bool) -> Self {
        self.with_parallelism(if parallel {
            parallel::global()
        } else {
            Parallelism::serial()
        })
    }

    /// Sets the exact [`Parallelism`] of the off-line fan-out over the
    /// `w−1` future-window models. Each model is absorbed by exactly one
    /// worker and models are re-shelved in slot order afterwards, so the
    /// maintained models are bit-identical at any thread count.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Keeps retired blocks' data instead of dropping it (for experiments
    /// that re-read history).
    pub fn with_retirement(mut self, retire: bool) -> Self {
        self.retire = retire;
        self
    }

    /// The window size.
    pub fn window_size(&self) -> usize {
        self.w
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        &self.maintainer
    }

    /// The latest absorbed block id.
    pub fn latest_block(&self) -> Option<BlockId> {
        self.latest
    }

    /// Lifetime count of shelved models that had to be rebuilt from the
    /// block stream because their shelf file was missing or corrupt.
    pub fn shelf_rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Start of the current most-recent window.
    pub fn window_start(&self) -> Option<BlockId> {
        self.starts.first().copied()
    }

    /// The model on the current window w.r.t. the BSS — always held in
    /// memory. `None` before the first block.
    pub fn current_model(&self) -> Option<&M::Model> {
        self.current.as_ref()
    }

    /// Loads (a clone of) the prefix model of the future window starting
    /// at `start` — test/diagnostic access to the whole collection. A
    /// shelf entry whose bytes are lost or damaged is rebuilt from the
    /// block stream (the entry itself is left for the next slide to
    /// repair in place).
    pub fn future_model(&self, start: BlockId) -> Result<M::Model>
    where
        M::Model: Clone,
    {
        if !self.starts.contains(&start) {
            return Err(DemonError::UnknownBlock(start.value()));
        }
        if self.starts.first() == Some(&start) {
            return match &self.current {
                Some(m) => Ok(m.clone()),
                None => unreachable!("current model exists while windows do"),
            };
        }
        match self.shelf_get(start) {
            Ok(Some(m)) => Ok(m),
            Ok(None) => Ok(self.rebuild_model(start, self.latest)),
            Err(e) if shelf_loss_is_recoverable(&e) => Ok(self.rebuild_model(start, self.latest)),
            Err(e) => Err(e),
        }
    }

    /// Reads an off-line model through the storage engine with a bounded
    /// retry on transient I/O errors, leaving the entry in place.
    fn shelf_get(&self, start: BlockId) -> Result<Option<M::Model>> {
        let mut attempt = 1;
        loop {
            match self.store.get(start) {
                Ok(opt) => return Ok(opt.map(|p| p.0.clone())),
                Err(e) if shelf_loss_is_transient(&e) && attempt < SHELF_READ_ATTEMPTS => {
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Takes an off-line model out of the shelf store (dropping its slot
    /// file), rebuilding it from the block stream when its shelved bytes
    /// are lost or damaged. `upto` is the last block the shelved state
    /// covered — the replay bound for a rebuild.
    fn take_or_rebuild(&self, start: BlockId, upto: BlockId) -> Result<M::Model> {
        let mut attempt = 1;
        loop {
            match self.store.take(start) {
                Ok(Some(m)) => return Ok(m.0),
                Ok(None) => return Ok(self.rebuild_model(start, Some(upto))),
                Err(e) if shelf_loss_is_transient(&e) && attempt < SHELF_READ_ATTEMPTS => {
                    attempt += 1;
                }
                Err(e) if shelf_loss_is_recoverable(&e) => {
                    // Drop the damaged entry (and its file) so the rebuilt
                    // model re-shelves cleanly.
                    self.store.remove(start);
                    return Ok(self.rebuild_model(start, Some(upto)));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Recomputes a slot's model by replaying the registered block stream
    /// through the maintainer: absorb every block in `start..=upto` whose
    /// BSS bit is set. Valid because retirement only drops blocks below
    /// the oldest maintained window start.
    fn rebuild_model(&self, start: BlockId, upto: Option<BlockId>) -> M::Model {
        let mut model = self.maintainer.fresh();
        if let Some(upto) = upto {
            let mut id = start;
            while id <= upto {
                if self.bit_for(start, id) {
                    self.maintainer.absorb(&mut model, id);
                }
                id = id.next();
            }
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        // A rebuild happens exactly when a shelf read could not be served.
        obs::incr(obs::Counter::ShelfMisses);
        model
    }

    /// Starts of all maintained future windows (ascending; the first is
    /// the current window).
    pub fn slot_starts(&self) -> Vec<BlockId> {
        self.starts.clone()
    }

    /// Processes the next arriving block (ids must be contiguous). A
    /// replayed id is a typed [`DemonError::DuplicateBlock`] and a gap an
    /// [`DemonError::InvalidParameter`]; both leave the engine untouched.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<GemmStats> {
        let id = block.id();
        crate::engine::check_sequential(id, self.latest)?;
        self.maintainer.register_block(block);
        self.latest = Some(id);
        let mut stats = GemmStats::default();
        let rebuilds_before = self.rebuilds.load(Ordering::Relaxed);

        // Slide: drop the outgoing current slot once the window is full.
        // Its model lives in `current`, never in the shelf store, so
        // there is no entry or file to clean up.
        if self.starts.len() == self.w {
            self.starts.remove(0);
            self.current = None;
        }
        // New future window starting at the arriving block.
        self.starts.push(id);
        let mut fresh = Some(self.maintainer.fresh());

        // The new current model must be in memory before its timed
        // update. Its shelved state covers blocks up to the previous
        // arrival — the replay bound if the shelf turns out damaged.
        if self.current.is_none() {
            let front = self.starts[0];
            self.current = Some(if front == id {
                match fresh.take() {
                    Some(m) => m,
                    None => unreachable!("fresh model created this call"),
                }
            } else {
                self.take_or_rebuild(front, BlockId(id.value() - 1))?
            });
        }

        // Time-critical update: the new current model.
        let current_bit = self.bit_for(self.starts[0], id);
        let t0 = Instant::now();
        if current_bit {
            if let Some(model) = self.current.as_mut() {
                self.maintainer.absorb(model, id);
            }
        }
        stats.response_time = t0.elapsed();
        stats.absorbed_into_current = current_bit;

        // Off-line updates of the remaining slots.
        let t1 = Instant::now();
        stats.offline_absorbed = self.update_offline(id, fresh)?;
        stats.offline_time = t1.elapsed();

        // Retire data no maintained window can reach.
        if self.retire && self.starts[0].value() > 1 {
            self.maintainer
                .retire_block(BlockId(self.starts[0].value() - 1));
        }
        stats.models_rebuilt =
            (self.rebuilds.load(Ordering::Relaxed) - rebuilds_before) as usize;
        Ok(stats)
    }

    fn bit_for(&self, slot_start: BlockId, arriving: BlockId) -> bool {
        self.selector
            .selects_arriving(arriving, slot_start, self.w)
    }

    /// Updates every off-line model for arriving block `id`. `fresh` is
    /// the brand-new model of the window starting at `id`, unless the
    /// timed current-slot path already consumed it (w = 1).
    fn update_offline(&mut self, id: BlockId, mut fresh: Option<M::Model>) -> Result<usize> {
        let w = self.w;
        let selector = self.selector.clone();
        // Collect the work: (window start, absorb?).
        let work: Vec<(BlockId, bool)> = self
            .starts
            .iter()
            .skip(1)
            .map(|&s| (s, selector.selects_arriving(id, s, w)))
            .collect();
        let absorbed = work.iter().filter(|&&(_, b)| b).count();
        // Off-line absorbs follow the BSS projected onto each future
        // window (window-independent) or right-shifted (window-relative).
        let op = match &self.selector {
            BlockSelector::WindowIndependent(_) => obs::Counter::GemmProjections,
            BlockSelector::WindowRelative(_) => obs::Counter::GemmShifts,
        };
        obs::add(op, absorbed as u64);

        // Take every off-line model out of the store serially (loads,
        // counters and rebuilds happen outside the parallel region). A
        // damaged shelf entry is rebuilt from the block stream (state as
        // of the previous arrival; this very loop then absorbs the new
        // block where selected).
        let mut loaded: Vec<(BlockId, M::Model, bool)> = Vec::with_capacity(work.len());
        for &(start, bit) in &work {
            let model = if start == id {
                match fresh.take() {
                    Some(m) => m,
                    None => unreachable!("new slot model created once per arrival"),
                }
            } else {
                self.take_or_rebuild(start, BlockId(id.value() - 1))?
            };
            loaded.push((start, model, bit));
        }

        // Each selected model is absorbed by exactly one worker and the
        // models are independent, so the result is bit-identical to the
        // sequential loop at any thread count.
        let maintainer = &self.maintainer;
        par_for_each_mut(self.par, &mut loaded, |_, (_, model, bit)| {
            if *bit {
                maintainer.absorb(model, id);
            }
        });

        // Put the models back in slot order; a disk shelf spills each one
        // to its `slot_<start>.model` file as it is inserted
        // ([`SpillPolicy::Always`]).
        for (start, model, _) in loaded {
            self.store.insert(start, ShelfModel(model));
        }
        Ok(absorbed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::bss::{BlockSelector, WiBss, WrBss};
    use crate::maintainer::ItemsetMaintainer;
    use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
    use demon_types::{Item, MinSupport, Tid, Transaction, TxBlock};

    fn k(v: f64) -> MinSupport {
        MinSupport::new(v).unwrap()
    }

    /// Block `id` holds transactions over items that encode the block id,
    /// so it is easy to verify which blocks a model covers.
    fn tx_block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 1000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    /// A block whose only item is its own id — a model's frequent items
    /// then spell out exactly which blocks it was extracted from.
    fn marker_block(id: u64, n_tx: usize) -> TxBlock {
        let items = [id as u32];
        let txs: Vec<&[u32]> = (0..n_tx).map(|_| &items[..]).collect();
        tx_block(id, &txs)
    }

    fn covered_blocks(model: &FrequentItemsets) -> Vec<u64> {
        let mut v: Vec<u64> = model
            .frequent()
            .keys()
            .filter(|s| s.len() == 1)
            .map(|s| s.items()[0].id() as u64)
            .collect();
        v.sort_unstable();
        v
    }

    fn gemm_with(
        w: usize,
        selector: BlockSelector,
    ) -> Gemm<ItemsetMaintainer> {
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        Gemm::new(maintainer, w, selector).unwrap()
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let m = ItemsetMaintainer::new(4, k(0.1), CounterKind::Ecut);
        assert!(Gemm::new(m, 0, BlockSelector::all()).is_err());
        let m = ItemsetMaintainer::new(4, k(0.1), CounterKind::Ecut);
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![true, false]));
        assert!(Gemm::new(m, 3, wr).is_err());
    }

    #[test]
    fn rejects_non_contiguous_blocks() {
        let mut g = gemm_with(2, BlockSelector::all());
        g.add_block(marker_block(1, 4)).unwrap();
        assert!(g.add_block(marker_block(3, 4)).is_err());
    }

    #[test]
    fn all_ones_window_tracks_last_w_blocks() {
        let mut g = gemm_with(3, BlockSelector::all());
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        let model = g.current_model().unwrap();
        assert_eq!(covered_blocks(model), vec![3, 4, 5]);
        assert_eq!(g.window_start(), Some(BlockId(3)));
        assert_eq!(g.slot_starts(), vec![BlockId(3), BlockId(4), BlockId(5)]);
    }

    #[test]
    fn warmup_covers_all_blocks_before_window_fills() {
        let mut g = gemm_with(4, BlockSelector::all());
        g.add_block(marker_block(1, 4)).unwrap();
        g.add_block(marker_block(2, 4)).unwrap();
        let model = g.current_model().unwrap();
        assert_eq!(covered_blocks(model), vec![1, 2]);
        assert_eq!(g.window_start(), Some(BlockId(1)));
    }

    #[test]
    fn window_independent_bss_selects_by_block_id() {
        // BSS ⟨10110…⟩ repeated: bits of blocks 1..=5 are 1,0,1,1,0.
        let wi = BlockSelector::WindowIndependent(WiBss::Explicit {
            bits: vec![true, false, true, true, false],
            tail: false,
        });
        let mut g = gemm_with(3, wi);
        for id in 1..=4u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Window D[2,4]: selected blocks are 3 and 4 (paper's example).
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 4]);
        let stats = g.add_block(marker_block(5, 4)).unwrap();
        // Window D[3,5]: block 5 has bit 0 → not absorbed; model covers 3,4.
        assert!(!stats.absorbed_into_current);
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 4]);
    }

    #[test]
    fn window_relative_bss_moves_with_window() {
        // Pattern ⟨101⟩ over a window of 3: select positions 1 and 3.
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![true, false, true]));
        let mut g = gemm_with(3, wr);
        for id in 1..=3u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Window D[1,3]: positions 1,3 → blocks 1 and 3.
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![1, 3]);
        g.add_block(marker_block(4, 4)).unwrap();
        // Window D[2,4]: positions 1,3 → blocks 2 and 4 (paper §3.2.2).
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![2, 4]);
        g.add_block(marker_block(5, 4)).unwrap();
        // Window D[3,5]: blocks 3 and 5.
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 5]);
    }

    #[test]
    fn current_model_matches_scratch_mining() {
        // Cross-check GEMM's incremental state against batch mining of the
        // same selection, for a nontrivial window-relative BSS.
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![true, true, false, true]));
        let mut g = gemm_with(4, wr).with_retirement(false);
        for id in 1..=7u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        let selected = BlockSelector::WindowRelative(WrBss::new(vec![true, true, false, true]))
            .selected_in_window(BlockId(4), 4, BlockId(7));
        assert_eq!(selected, vec![BlockId(4), BlockId(5), BlockId(7)]);
        assert_eq!(
            covered_blocks(g.current_model().unwrap()),
            vec![4, 5, 7]
        );
        // Batch-mine the same blocks on a scratch store.
        let mut store = TxStore::new(16);
        for id in 1..=7u64 {
            store.add_block(marker_block(id, 4));
        }
        let batch = FrequentItemsets::mine_from(&store, &selected, k(0.05)).unwrap();
        let model = g.current_model().unwrap();
        assert_eq!(model.frequent(), batch.frequent());
    }

    #[test]
    fn disk_shelf_roundtrips_models() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-test-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 4, 5]);
        // Future-window models are loadable from the shelf.
        let f = g.future_model(BlockId(5)).unwrap();
        assert_eq!(covered_blocks(&f), vec![5]);
        // Shelf files exist for the off-line slots only.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shelf_files_are_framed_with_no_tmp_residue() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-frame-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "stray tmp file {name}");
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[0..4], b"DMON", "{name} is not framed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A memory-shelf twin fed the same blocks — the oracle for what a
    /// rebuilt model must look like.
    fn twin(upto: u64) -> Gemm<ItemsetMaintainer> {
        let mut g = gemm_with(3, BlockSelector::all());
        for id in 1..=upto {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        g
    }

    #[test]
    fn corrupt_shelf_model_is_rebuilt_not_fatal() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-corrupt-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Flip a payload byte of the shelved slot-4 model.
        let path = dir.join("slot_4.model");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        // Reading it back degrades gracefully into a rebuild…
        let rebuilt = g.future_model(BlockId(4)).unwrap();
        let expected = twin(5).future_model(BlockId(4)).unwrap();
        assert_eq!(rebuilt.frequent(), expected.frequent());
        assert_eq!(g.shelf_rebuilds(), 1);

        // …and GEMM keeps running: block 6 slides the window, so slot 4
        // must be unshelved from the still-corrupt file — rebuilt once
        // more and pinned in memory as the new current model.
        let stats = g.add_block(marker_block(6, 4)).unwrap();
        assert_eq!(stats.models_rebuilt, 1);
        let healed = g.future_model(BlockId(4)).unwrap();
        let expected = twin(6).future_model(BlockId(4)).unwrap();
        assert_eq!(healed.frequent(), expected.frequent());
        assert_eq!(g.shelf_rebuilds(), 2, "in-memory model needs no rebuild");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shelf_model_is_rebuilt_not_fatal() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-missing-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        std::fs::remove_file(dir.join("slot_4.model")).unwrap();
        // Block 6 slides the window; slot 4 becomes current and must be
        // unshelved — from a file that no longer exists.
        let stats = g.add_block(marker_block(6, 4)).unwrap();
        assert_eq!(stats.models_rebuilt, 1);
        assert_eq!(g.window_start(), Some(BlockId(4)));
        let expected = twin(6);
        assert_eq!(
            g.current_model().unwrap().frequent(),
            expected.current_model().unwrap().frequent()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_offline_matches_sequential() {
        let mk = || {
            let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
            Gemm::new(maintainer, 4, BlockSelector::all()).unwrap()
        };
        let mut seq = mk();
        for id in 1..=6u64 {
            seq.add_block(marker_block(id, 4)).unwrap();
        }
        for threads in [2usize, 3, 8] {
            let mut par = mk().with_parallelism(Parallelism::new(threads));
            for id in 1..=6u64 {
                par.add_block(marker_block(id, 4)).unwrap();
            }
            assert_eq!(
                seq.current_model().unwrap().frequent(),
                par.current_model().unwrap().frequent(),
                "current model diverged at {threads} threads"
            );
            for start in seq.slot_starts() {
                let a = seq.future_model(start).unwrap();
                let b = par.future_model(start).unwrap();
                assert_eq!(a.frequent(), b.frequent(), "slot {start:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn retirement_drops_out_of_window_blocks() {
        let mut g = gemm_with(2, BlockSelector::all());
        for id in 1..=4u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Window is D[3,4]; blocks 1 and 2 must be gone from the store.
        assert!(g.maintainer().store().block(BlockId(1)).is_none());
        assert!(g.maintainer().store().block(BlockId(2)).is_none());
        assert!(g.maintainer().store().block(BlockId(3)).is_some());
    }

    #[test]
    fn stats_report_absorption() {
        let wi = BlockSelector::WindowIndependent(WiBss::Periodic {
            pattern: vec![true, false],
        });
        let mut g = gemm_with(3, wi);
        let s1 = g.add_block(marker_block(1, 4)).unwrap();
        assert!(s1.absorbed_into_current);
        let s2 = g.add_block(marker_block(2, 4)).unwrap();
        assert!(!s2.absorbed_into_current);
        assert_eq!(s2.offline_absorbed, 0);
        let s3 = g.add_block(marker_block(3, 4)).unwrap();
        assert!(s3.absorbed_into_current);
        // Slots at starts 1,2,3 all have bit(D3)=1 under the periodic BSS;
        // two of them are off-line.
        assert_eq!(s3.offline_absorbed, 2);
    }
}
