//! **GEMM** — the GEneric Model Maintainer for the most recent window
//! (paper §3.2, Algorithm 3.1).
//!
//! The window `D[t−w+1, t]` evolves in `w` steps, so the model of any
//! future window can be grown incrementally from the prefix it shares
//! with the current window. GEMM therefore maintains `w` models: the
//! current one plus one per overlapping future window, each extracted
//! with respect to the projected (window-independent) or right-shifted
//! (window-relative) BSS. When block `D_{t+1}` arrives:
//!
//! * the model covering `D[t−w+2, t]` absorbs the block (iff its BSS bit
//!   is 1) and *becomes the new current model* — the cost of exactly this
//!   one update is the **response time**;
//! * every other future-window model absorbs the block off-line (these
//!   updates may run in parallel and the models may live on disk — "main
//!   memory is not a limitation as long as a single model fits");
//! * a fresh model is started for the newest future window.
//!
//! ## Shelf durability
//!
//! Shelved models (`slot_<start>.model`) are written atomically as framed
//! checksummed files ([`demon_types::durable`]), so a crash mid-shelving
//! never leaves a torn model. Reads retry transient I/O errors a bounded
//! number of times. A shelf file that is missing or fails its checksum is
//! not fatal: GEMM **rebuilds** the model by replaying the window's block
//! stream through the maintainer (every block a maintained window can
//! reach is still registered), counts the event in
//! [`GemmStats::models_rebuilt`] / [`Gemm::shelf_rebuilds`], and carries
//! on.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::bss::BlockSelector;
use crate::maintainer::ModelMaintainer;
use demon_types::durable::{self, FrameClass};
use demon_types::parallel::{self, par_for_each_mut};
use demon_types::{obs, Block, BlockId, DemonError, Parallelism, Result};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many times a shelf read retries a transient I/O error before the
/// error is surfaced.
const SHELF_READ_ATTEMPTS: u32 = 3;

/// Where the off-line (non-current) models live between blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShelfMode {
    /// Keep every model in memory.
    Memory,
    /// Serialize off-line models to JSON files under this directory,
    /// loading each only for its update — the paper's disk shelf.
    Disk(PathBuf),
}

/// Timing of one GEMM step.
#[derive(Clone, Copy, Debug, Default)]
pub struct GemmStats {
    /// Time to produce the new *required* model (update of the slot that
    /// becomes current). This is the response time of §3.2.3.
    pub response_time: Duration,
    /// Time spent updating the remaining future-window models.
    pub offline_time: Duration,
    /// Whether the arriving block was selected into the current model.
    pub absorbed_into_current: bool,
    /// Number of off-line models that absorbed the block.
    pub offline_absorbed: usize,
    /// Shelved models that were rebuilt from the block stream during this
    /// step because their shelf file was missing or corrupt.
    pub models_rebuilt: usize,
}

/// One maintained model slot: the future window it belongs to (identified
/// by that window's start block) and the model of its overlap prefix.
struct Slot<Model> {
    start: BlockId,
    model: Stored<Model>,
}

enum Stored<Model> {
    Mem(Model),
    Disk(PathBuf),
}

impl<Model: serde::Serialize + serde::de::DeserializeOwned> Stored<Model> {
    /// Reads a shelved model: framed + checksummed, with a bounded retry
    /// on transient I/O errors. A frame that validates but does not parse
    /// is reported as corruption naming the file.
    fn load_from(path: &Path) -> Result<Model> {
        let (payload, _) =
            durable::read_framed_with_retry(path, FrameClass::SHELF, SHELF_READ_ATTEMPTS)?;
        obs::incr(obs::Counter::ShelfHits);
        obs::add(obs::Counter::ShelfBytesRead, payload.len() as u64);
        serde_json::from_slice(&payload).map_err(|e| DemonError::Corrupt {
            file: path.display().to_string(),
            detail: format!("shelved model does not parse: {e}"),
        })
    }

    /// Shelves a model atomically as a framed file; a crash mid-write
    /// leaves the previous file (or none), never a torn model.
    fn write(path: &Path, model: &Model) -> Result<()> {
        let bytes =
            serde_json::to_vec(model).map_err(|e| DemonError::Serde(e.to_string()))?;
        obs::add(obs::Counter::ShelfBytesWritten, bytes.len() as u64);
        durable::write_framed(path, FrameClass::SHELF, &bytes)?;
        Ok(())
    }
}

/// The shelf file of the future window starting at `start`.
fn shelf_path(dir: &Path, start: BlockId) -> PathBuf {
    dir.join(format!("slot_{}.model", start.value()))
}

/// Whether a shelf-load failure can be healed by replaying the block
/// stream: corruption in any form, or the file simply being gone.
/// Persistent I/O failures (permissions, exhausted retries) cannot.
fn shelf_loss_is_recoverable(e: &DemonError) -> bool {
    match e {
        DemonError::Corrupt { .. } | DemonError::ChecksumMismatch { .. } | DemonError::Serde(_) => {
            true
        }
        DemonError::Io(io) => io.kind() == std::io::ErrorKind::NotFound,
        _ => false,
    }
}

/// The generic most-recent-window maintainer.
pub struct Gemm<M: ModelMaintainer> {
    maintainer: M,
    selector: BlockSelector,
    w: usize,
    shelf: ShelfMode,
    par: Parallelism,
    retire: bool,
    slots: Vec<Slot<M::Model>>,
    latest: Option<BlockId>,
    /// Lifetime count of shelved models rebuilt from the block stream
    /// (atomic because [`Gemm::future_model`] rebuilds through `&self`).
    rebuilds: AtomicU64,
}

impl<M: ModelMaintainer + Sync> Gemm<M> {
    /// A GEMM instance over `maintainer` with window size `w` and the
    /// given BSS. Off-line models stay in memory and update sequentially;
    /// see [`Gemm::with_shelf`] and [`Gemm::with_parallel_offline`].
    pub fn new(maintainer: M, w: usize, selector: BlockSelector) -> Result<Self> {
        if w == 0 {
            return Err(DemonError::InvalidParameter(
                "window size must be positive".into(),
            ));
        }
        if let BlockSelector::WindowRelative(wr) = &selector {
            if wr.window_size() != w {
                return Err(DemonError::BssMismatch {
                    got: wr.window_size(),
                    expected: w,
                });
            }
        }
        Ok(Gemm {
            maintainer,
            selector,
            w,
            shelf: ShelfMode::Memory,
            par: Parallelism::serial(),
            retire: true,
            slots: Vec::new(),
            latest: None,
            rebuilds: AtomicU64::new(0),
        })
    }

    /// Moves the off-line models to a disk shelf.
    pub fn with_shelf(mut self, shelf: ShelfMode) -> Result<Self> {
        if let ShelfMode::Disk(dir) = &shelf {
            std::fs::create_dir_all(dir)?;
        }
        self.shelf = shelf;
        Ok(self)
    }

    /// Updates the off-line models in parallel (they are independent; the
    /// paper notes they are not time-critical). `true` uses the
    /// process-wide default thread count
    /// ([`demon_types::parallel::global`]); see [`Gemm::with_parallelism`]
    /// for an explicit count.
    pub fn with_parallel_offline(self, parallel: bool) -> Self {
        self.with_parallelism(if parallel {
            parallel::global()
        } else {
            Parallelism::serial()
        })
    }

    /// Sets the exact [`Parallelism`] of the off-line fan-out over the
    /// `w−1` future-window models. Each model is absorbed by exactly one
    /// worker and models are re-shelved in slot order afterwards, so the
    /// maintained models are bit-identical at any thread count.
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.par = par;
        self
    }

    /// Keeps retired blocks' data instead of dropping it (for experiments
    /// that re-read history).
    pub fn with_retirement(mut self, retire: bool) -> Self {
        self.retire = retire;
        self
    }

    /// The window size.
    pub fn window_size(&self) -> usize {
        self.w
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        &self.maintainer
    }

    /// The latest absorbed block id.
    pub fn latest_block(&self) -> Option<BlockId> {
        self.latest
    }

    /// Lifetime count of shelved models that had to be rebuilt from the
    /// block stream because their shelf file was missing or corrupt.
    pub fn shelf_rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }

    /// Start of the current most-recent window.
    pub fn window_start(&self) -> Option<BlockId> {
        self.slots.first().map(|s| s.start)
    }

    /// The model on the current window w.r.t. the BSS — always held in
    /// memory. `None` before the first block.
    pub fn current_model(&self) -> Option<&M::Model> {
        match self.slots.first().map(|s| &s.model) {
            Some(Stored::Mem(m)) => Some(m),
            Some(Stored::Disk(_)) => unreachable!("current model is pinned in memory"),
            None => None,
        }
    }

    /// Loads (a clone of) the prefix model of the future window starting
    /// at `start` — test/diagnostic access to the whole collection.
    pub fn future_model(&self, start: BlockId) -> Result<M::Model>
    where
        M::Model: Clone,
    {
        let slot = self
            .slots
            .iter()
            .find(|s| s.start == start)
            .ok_or(DemonError::UnknownBlock(start.value()))?;
        match &slot.model {
            Stored::Mem(m) => Ok(m.clone()),
            Stored::Disk(path) => match Stored::load_from(path) {
                Ok(m) => Ok(m),
                Err(e) if shelf_loss_is_recoverable(&e) => Ok(self.rebuild_model(start, self.latest)),
                Err(e) => Err(e),
            },
        }
    }

    /// Recomputes a slot's model by replaying the registered block stream
    /// through the maintainer: absorb every block in `start..=upto` whose
    /// BSS bit is set. Valid because retirement only drops blocks below
    /// the oldest maintained window start.
    fn rebuild_model(&self, start: BlockId, upto: Option<BlockId>) -> M::Model {
        let mut model = self.maintainer.fresh();
        if let Some(upto) = upto {
            let mut id = start;
            while id <= upto {
                if self.bit_for(start, id) {
                    self.maintainer.absorb(&mut model, id);
                }
                id = id.next();
            }
        }
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
        // A rebuild happens exactly when a shelf read could not be served.
        obs::incr(obs::Counter::ShelfMisses);
        model
    }

    /// Starts of all maintained future windows (ascending; the first is
    /// the current window).
    pub fn slot_starts(&self) -> Vec<BlockId> {
        self.slots.iter().map(|s| s.start).collect()
    }

    /// Processes the next arriving block (ids must be contiguous).
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<GemmStats> {
        let id = block.id();
        let expected = self.latest.map_or(BlockId::FIRST, BlockId::next);
        if id != expected {
            return Err(DemonError::InvalidParameter(format!(
                "expected block {expected}, got {id}"
            )));
        }
        self.maintainer.register_block(block);
        self.latest = Some(id);
        let mut stats = GemmStats::default();
        let rebuilds_before = self.rebuilds.load(Ordering::Relaxed);

        // Slide: drop the outgoing current slot once the window is full.
        if self.slots.len() == self.w {
            let gone = self.slots.remove(0);
            if let Stored::Disk(path) = &gone.model {
                let _ = std::fs::remove_file(path);
            }
        }
        // New future window starting at the arriving block.
        self.slots.push(Slot {
            start: id,
            model: Stored::Mem(self.maintainer.fresh()),
        });

        // The new current slot must be in memory before its timed update.
        // Its shelved state covers blocks up to the previous arrival.
        self.unshelve_front(BlockId(id.value() - 1))?;

        // Time-critical update: the new current model.
        let current_bit = self.bit_for(self.slots[0].start, id);
        let t0 = Instant::now();
        if current_bit {
            let Stored::Mem(model) = &mut self.slots[0].model else {
                unreachable!("front slot unshelved above");
            };
            self.maintainer.absorb(model, id);
        }
        stats.response_time = t0.elapsed();
        stats.absorbed_into_current = current_bit;

        // Off-line updates of the remaining slots.
        let t1 = Instant::now();
        stats.offline_absorbed = self.update_offline(id)?;
        stats.offline_time = t1.elapsed();

        // Retire data no maintained window can reach.
        if self.retire && self.slots[0].start.value() > 1 {
            self.maintainer
                .retire_block(BlockId(self.slots[0].start.value() - 1));
        }
        stats.models_rebuilt =
            (self.rebuilds.load(Ordering::Relaxed) - rebuilds_before) as usize;
        Ok(stats)
    }

    /// Pulls the front slot into memory if it was shelved, removing its
    /// now-stale shelf file. `upto` is the last block the shelved state
    /// covered — the replay bound if the file turns out to be damaged.
    fn unshelve_front(&mut self, upto: BlockId) -> Result<()> {
        let Some(slot) = self.slots.first() else {
            return Ok(());
        };
        let (start, path) = match &slot.model {
            Stored::Disk(path) => (slot.start, path.clone()),
            Stored::Mem(_) => return Ok(()),
        };
        let model = match Stored::load_from(&path) {
            Ok(m) => m,
            Err(e) if shelf_loss_is_recoverable(&e) => self.rebuild_model(start, Some(upto)),
            Err(e) => return Err(e),
        };
        let _ = std::fs::remove_file(&path);
        self.slots[0].model = Stored::Mem(model);
        Ok(())
    }

    fn bit_for(&self, slot_start: BlockId, arriving: BlockId) -> bool {
        self.selector
            .selects_arriving(arriving, slot_start, self.w)
    }

    fn update_offline(&mut self, id: BlockId) -> Result<usize> {
        let w = self.w;
        let selector = self.selector.clone();
        // Collect the work: (slot index, absorb?).
        let work: Vec<(usize, bool)> = self
            .slots
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, s)| (i, selector.selects_arriving(id, s.start, w)))
            .collect();
        let absorbed = work.iter().filter(|&&(_, b)| b).count();
        // Off-line absorbs follow the BSS projected onto each future
        // window (window-independent) or right-shifted (window-relative).
        let op = match &self.selector {
            BlockSelector::WindowIndependent(_) => obs::Counter::GemmProjections,
            BlockSelector::WindowRelative(_) => obs::Counter::GemmShifts,
        };
        obs::add(op, absorbed as u64);

        // Load shelved models, update, re-shelve. A damaged shelf file is
        // rebuilt from the block stream (state as of the previous arrival;
        // this very loop then absorbs the new block where selected).
        let mut loaded: Vec<(usize, M::Model, bool)> = Vec::with_capacity(work.len());
        for &(i, bit) in &work {
            let model = match &self.slots[i].model {
                Stored::Mem(_) => {
                    if let Stored::Mem(m) =
                        std::mem::replace(&mut self.slots[i].model, Stored::Disk(PathBuf::new()))
                    {
                        m
                    } else {
                        unreachable!()
                    }
                }
                Stored::Disk(path) => match Stored::load_from(path) {
                    Ok(m) => m,
                    Err(e) if shelf_loss_is_recoverable(&e) => {
                        self.rebuild_model(self.slots[i].start, Some(BlockId(id.value() - 1)))
                    }
                    Err(e) => return Err(e),
                },
            };
            loaded.push((i, model, bit));
        }

        // Each selected model is absorbed by exactly one worker and the
        // models are independent, so the result is bit-identical to the
        // sequential loop at any thread count.
        let maintainer = &self.maintainer;
        par_for_each_mut(self.par, &mut loaded, |_, (_, model, bit)| {
            if *bit {
                maintainer.absorb(model, id);
            }
        });

        // Put models back (to memory or to the shelf).
        for (i, model, _) in loaded {
            self.slots[i].model = match &self.shelf {
                ShelfMode::Memory => Stored::Mem(model),
                ShelfMode::Disk(dir) => {
                    let path = shelf_path(dir, self.slots[i].start);
                    Stored::write(&path, &model)?;
                    Stored::Disk(path)
                }
            };
        }
        Ok(absorbed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::bss::{BlockSelector, WiBss, WrBss};
    use crate::maintainer::ItemsetMaintainer;
    use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
    use demon_types::{Item, MinSupport, Tid, Transaction, TxBlock};

    fn k(v: f64) -> MinSupport {
        MinSupport::new(v).unwrap()
    }

    /// Block `id` holds transactions over items that encode the block id,
    /// so it is easy to verify which blocks a model covers.
    fn tx_block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 1000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    /// A block whose only item is its own id — a model's frequent items
    /// then spell out exactly which blocks it was extracted from.
    fn marker_block(id: u64, n_tx: usize) -> TxBlock {
        let items = [id as u32];
        let txs: Vec<&[u32]> = (0..n_tx).map(|_| &items[..]).collect();
        tx_block(id, &txs)
    }

    fn covered_blocks(model: &FrequentItemsets) -> Vec<u64> {
        let mut v: Vec<u64> = model
            .frequent()
            .keys()
            .filter(|s| s.len() == 1)
            .map(|s| s.items()[0].id() as u64)
            .collect();
        v.sort_unstable();
        v
    }

    fn gemm_with(
        w: usize,
        selector: BlockSelector,
    ) -> Gemm<ItemsetMaintainer> {
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        Gemm::new(maintainer, w, selector).unwrap()
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let m = ItemsetMaintainer::new(4, k(0.1), CounterKind::Ecut);
        assert!(Gemm::new(m, 0, BlockSelector::all()).is_err());
        let m = ItemsetMaintainer::new(4, k(0.1), CounterKind::Ecut);
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![true, false]));
        assert!(Gemm::new(m, 3, wr).is_err());
    }

    #[test]
    fn rejects_non_contiguous_blocks() {
        let mut g = gemm_with(2, BlockSelector::all());
        g.add_block(marker_block(1, 4)).unwrap();
        assert!(g.add_block(marker_block(3, 4)).is_err());
    }

    #[test]
    fn all_ones_window_tracks_last_w_blocks() {
        let mut g = gemm_with(3, BlockSelector::all());
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        let model = g.current_model().unwrap();
        assert_eq!(covered_blocks(model), vec![3, 4, 5]);
        assert_eq!(g.window_start(), Some(BlockId(3)));
        assert_eq!(g.slot_starts(), vec![BlockId(3), BlockId(4), BlockId(5)]);
    }

    #[test]
    fn warmup_covers_all_blocks_before_window_fills() {
        let mut g = gemm_with(4, BlockSelector::all());
        g.add_block(marker_block(1, 4)).unwrap();
        g.add_block(marker_block(2, 4)).unwrap();
        let model = g.current_model().unwrap();
        assert_eq!(covered_blocks(model), vec![1, 2]);
        assert_eq!(g.window_start(), Some(BlockId(1)));
    }

    #[test]
    fn window_independent_bss_selects_by_block_id() {
        // BSS ⟨10110…⟩ repeated: bits of blocks 1..=5 are 1,0,1,1,0.
        let wi = BlockSelector::WindowIndependent(WiBss::Explicit {
            bits: vec![true, false, true, true, false],
            tail: false,
        });
        let mut g = gemm_with(3, wi);
        for id in 1..=4u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Window D[2,4]: selected blocks are 3 and 4 (paper's example).
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 4]);
        let stats = g.add_block(marker_block(5, 4)).unwrap();
        // Window D[3,5]: block 5 has bit 0 → not absorbed; model covers 3,4.
        assert!(!stats.absorbed_into_current);
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 4]);
    }

    #[test]
    fn window_relative_bss_moves_with_window() {
        // Pattern ⟨101⟩ over a window of 3: select positions 1 and 3.
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![true, false, true]));
        let mut g = gemm_with(3, wr);
        for id in 1..=3u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Window D[1,3]: positions 1,3 → blocks 1 and 3.
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![1, 3]);
        g.add_block(marker_block(4, 4)).unwrap();
        // Window D[2,4]: positions 1,3 → blocks 2 and 4 (paper §3.2.2).
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![2, 4]);
        g.add_block(marker_block(5, 4)).unwrap();
        // Window D[3,5]: blocks 3 and 5.
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 5]);
    }

    #[test]
    fn current_model_matches_scratch_mining() {
        // Cross-check GEMM's incremental state against batch mining of the
        // same selection, for a nontrivial window-relative BSS.
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![true, true, false, true]));
        let mut g = gemm_with(4, wr).with_retirement(false);
        for id in 1..=7u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        let selected = BlockSelector::WindowRelative(WrBss::new(vec![true, true, false, true]))
            .selected_in_window(BlockId(4), 4, BlockId(7));
        assert_eq!(selected, vec![BlockId(4), BlockId(5), BlockId(7)]);
        assert_eq!(
            covered_blocks(g.current_model().unwrap()),
            vec![4, 5, 7]
        );
        // Batch-mine the same blocks on a scratch store.
        let mut store = TxStore::new(16);
        for id in 1..=7u64 {
            store.add_block(marker_block(id, 4));
        }
        let batch = FrequentItemsets::mine_from(&store, &selected, k(0.05)).unwrap();
        let model = g.current_model().unwrap();
        assert_eq!(model.frequent(), batch.frequent());
    }

    #[test]
    fn disk_shelf_roundtrips_models() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-test-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        assert_eq!(covered_blocks(g.current_model().unwrap()), vec![3, 4, 5]);
        // Future-window models are loadable from the shelf.
        let f = g.future_model(BlockId(5)).unwrap();
        assert_eq!(covered_blocks(&f), vec![5]);
        // Shelf files exist for the off-line slots only.
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shelf_files_are_framed_with_no_tmp_residue() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-frame-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "stray tmp file {name}");
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[0..4], b"DMON", "{name} is not framed");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A memory-shelf twin fed the same blocks — the oracle for what a
    /// rebuilt model must look like.
    fn twin(upto: u64) -> Gemm<ItemsetMaintainer> {
        let mut g = gemm_with(3, BlockSelector::all());
        for id in 1..=upto {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        g
    }

    #[test]
    fn corrupt_shelf_model_is_rebuilt_not_fatal() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-corrupt-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Flip a payload byte of the shelved slot-4 model.
        let path = dir.join("slot_4.model");
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        // Reading it back degrades gracefully into a rebuild…
        let rebuilt = g.future_model(BlockId(4)).unwrap();
        let expected = twin(5).future_model(BlockId(4)).unwrap();
        assert_eq!(rebuilt.frequent(), expected.frequent());
        assert_eq!(g.shelf_rebuilds(), 1);

        // …and GEMM keeps running: block 6 slides the window, so slot 4
        // must be unshelved from the still-corrupt file — rebuilt once
        // more and pinned in memory as the new current model.
        let stats = g.add_block(marker_block(6, 4)).unwrap();
        assert_eq!(stats.models_rebuilt, 1);
        let healed = g.future_model(BlockId(4)).unwrap();
        let expected = twin(6).future_model(BlockId(4)).unwrap();
        assert_eq!(healed.frequent(), expected.frequent());
        assert_eq!(g.shelf_rebuilds(), 2, "in-memory model needs no rebuild");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_shelf_model_is_rebuilt_not_fatal() {
        let dir = std::env::temp_dir().join(format!("demon-gemm-missing-{}", std::process::id()));
        let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
        let mut g = Gemm::new(maintainer, 3, BlockSelector::all())
            .unwrap()
            .with_shelf(ShelfMode::Disk(dir.clone()))
            .unwrap();
        for id in 1..=5u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        std::fs::remove_file(dir.join("slot_4.model")).unwrap();
        // Block 6 slides the window; slot 4 becomes current and must be
        // unshelved — from a file that no longer exists.
        let stats = g.add_block(marker_block(6, 4)).unwrap();
        assert_eq!(stats.models_rebuilt, 1);
        assert_eq!(g.window_start(), Some(BlockId(4)));
        let expected = twin(6);
        assert_eq!(
            g.current_model().unwrap().frequent(),
            expected.current_model().unwrap().frequent()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_offline_matches_sequential() {
        let mk = || {
            let maintainer = ItemsetMaintainer::new(16, k(0.05), CounterKind::Ecut);
            Gemm::new(maintainer, 4, BlockSelector::all()).unwrap()
        };
        let mut seq = mk();
        for id in 1..=6u64 {
            seq.add_block(marker_block(id, 4)).unwrap();
        }
        for threads in [2usize, 3, 8] {
            let mut par = mk().with_parallelism(Parallelism::new(threads));
            for id in 1..=6u64 {
                par.add_block(marker_block(id, 4)).unwrap();
            }
            assert_eq!(
                seq.current_model().unwrap().frequent(),
                par.current_model().unwrap().frequent(),
                "current model diverged at {threads} threads"
            );
            for start in seq.slot_starts() {
                let a = seq.future_model(start).unwrap();
                let b = par.future_model(start).unwrap();
                assert_eq!(a.frequent(), b.frequent(), "slot {start:?} at {threads} threads");
            }
        }
    }

    #[test]
    fn retirement_drops_out_of_window_blocks() {
        let mut g = gemm_with(2, BlockSelector::all());
        for id in 1..=4u64 {
            g.add_block(marker_block(id, 4)).unwrap();
        }
        // Window is D[3,4]; blocks 1 and 2 must be gone from the store.
        assert!(g.maintainer().store().block(BlockId(1)).is_none());
        assert!(g.maintainer().store().block(BlockId(2)).is_none());
        assert!(g.maintainer().store().block(BlockId(3)).is_some());
    }

    #[test]
    fn stats_report_absorption() {
        let wi = BlockSelector::WindowIndependent(WiBss::Periodic {
            pattern: vec![true, false],
        });
        let mut g = gemm_with(3, wi);
        let s1 = g.add_block(marker_block(1, 4)).unwrap();
        assert!(s1.absorbed_into_current);
        let s2 = g.add_block(marker_block(2, 4)).unwrap();
        assert!(!s2.absorbed_into_current);
        assert_eq!(s2.offline_absorbed, 0);
        let s3 = g.add_block(marker_block(3, 4)).unwrap();
        assert!(s3.absorbed_into_current);
        // Slots at starts 1,2,3 all have bit(D3)=1 under the periodic BSS;
        // two of them are off-line.
        assert_eq!(s3.offline_absorbed, 2);
    }
}
