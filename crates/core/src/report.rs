//! Calendar-style reporting of block sequences — turning a discovered
//! compact sequence into the analyst-readable rows of Figure 9
//! ("12 Noon - 4 PM on all working days except 9-9-96").

use demon_types::calendar::{self, Weekday};
use demon_types::{BlockInterval, Timestamp};
use std::collections::BTreeSet;

/// A calendar summary of a sequence of block intervals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CalendarPattern {
    /// Start hour-of-day of the blocks (when uniform).
    pub start_hour: Option<u64>,
    /// End hour-of-day of the blocks (when uniform; 24 = midnight).
    pub end_hour: Option<u64>,
    /// The days (indices from the epoch) covered.
    pub days: Vec<u64>,
    /// The formatted description.
    pub description: String,
}

/// Summarizes the intervals of a block sequence.
///
/// The description combines a time-of-day range (when all blocks share
/// the same start hour and duration) with a characterization of the
/// day set against the span it stretches over: all days, working days
/// (with exceptions), a fixed set of weekdays, weekends, or an explicit
/// date list as the fallback.
pub fn describe(intervals: &[BlockInterval]) -> CalendarPattern {
    assert!(!intervals.is_empty(), "cannot describe an empty sequence");
    let starts: BTreeSet<u64> = intervals.iter().map(|iv| iv.start.hour()).collect();
    let durations: BTreeSet<u64> = intervals.iter().map(|iv| iv.duration_secs()).collect();
    let days: Vec<u64> = {
        let set: BTreeSet<u64> = intervals.iter().map(|iv| iv.start.day()).collect();
        set.into_iter().collect()
    };

    let (start_hour, end_hour, time_str) = if durations.len() == 1 {
        let d = durations.first().expect("non-empty") / 3600;
        let hours: Vec<u64> = starts.iter().copied().collect();
        // A single start hour, or several start hours forming one
        // contiguous daily band (e.g. 8 AM and 12 Noon blocks of 4 hours
        // merge into "8 AM - 4 PM").
        let contiguous = hours.windows(2).all(|w| w[1] == w[0] + d);
        // Merging is only honest when every covered day has a block at
        // every start hour of the band.
        let complete = intervals.len() == days.len() * hours.len();
        if contiguous && complete {
            let s = hours[0];
            let e = hours[hours.len() - 1] + d;
            (Some(s), Some(e), format!("{} - {}", fmt_hour(s), fmt_hour(e)))
        } else {
            (None, None, "mixed hours".to_string())
        }
    } else {
        (None, None, "mixed hours".to_string())
    };

    let day_str = describe_days(&days);
    CalendarPattern {
        start_hour,
        end_hour,
        description: format!("{time_str} on {day_str}"),
        days,
    }
}

/// 12-hour clock labels in the paper's style (12 Noon, 12 PM = midnight).
fn fmt_hour(h: u64) -> String {
    match h % 24 {
        0 => {
            if h == 24 {
                "12 PM".to_string()
            } else {
                "12 AM".to_string()
            }
        }
        12 => "12 Noon".to_string(),
        x if x < 12 => format!("{x} AM"),
        x => format!("{} PM", x - 12),
    }
}

/// Characterizes a day set within its spanned range.
fn describe_days(days: &[u64]) -> String {
    assert!(!days.is_empty());
    let (lo, hi) = (days[0], days[days.len() - 1]);
    let in_span: Vec<u64> = (lo..=hi).collect();
    let day_set: BTreeSet<u64> = days.iter().copied().collect();

    // All days of the span.
    if day_set.len() == in_span.len() {
        return "all days".to_string();
    }

    // Working days (with exceptions listed).
    let working: Vec<u64> = in_span
        .iter()
        .copied()
        .filter(|&d| calendar::is_working_day(d))
        .collect();
    if !working.is_empty() && day_set.iter().all(|d| working.contains(d)) {
        let missing: Vec<u64> = working
            .iter()
            .copied()
            .filter(|d| !day_set.contains(d))
            .collect();
        if missing.is_empty() {
            return "all working days".to_string();
        }
        if missing.len() <= 2 {
            let dates: Vec<String> =
                missing.iter().map(|&d| calendar::format_date(d)).collect();
            return format!("all working days except {}", dates.join(", "));
        }
        // Too many exceptions to be "working days"; try weekday sets below.
    }

    // A fixed set of weekdays, fully covered across the span.
    let weekdays: BTreeSet<Weekday> =
        day_set.iter().map(|&d| Weekday::of_day(d)).collect();
    let full_coverage = in_span
        .iter()
        .filter(|&&d| weekdays.contains(&Weekday::of_day(d)))
        .all(|d| day_set.contains(d));
    if full_coverage && weekdays.len() <= 3 {
        if weekdays.iter().all(|w| w.is_weekend()) && weekdays.len() == 2 {
            return "weekends".to_string();
        }
        let names: Vec<String> = weekdays.iter().map(|w| format!("all {w}s")).collect();
        return names.join(" and ");
    }

    // Fallback: explicit date list.
    let dates: Vec<String> = day_set
        .iter()
        .map(|&d| calendar::format_date(d))
        .collect();
    dates.join(", ")
}

/// Convenience: describe from `(start, end)` timestamps.
pub fn describe_spans(spans: &[(Timestamp, Timestamp)]) -> CalendarPattern {
    let intervals: Vec<BlockInterval> = spans
        .iter()
        .map(|&(s, e)| BlockInterval::new(s, e))
        .collect();
    describe(&intervals)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(day: u64, start_h: u64, hours: u64) -> BlockInterval {
        BlockInterval::new(
            Timestamp::from_day_hour(day, start_h),
            Timestamp::from_day_hour(day, start_h).plus_secs(hours * 3600),
        )
    }

    #[test]
    fn hour_formatting_matches_paper_style() {
        assert_eq!(fmt_hour(12), "12 Noon");
        assert_eq!(fmt_hour(16), "4 PM");
        assert_eq!(fmt_hour(8), "8 AM");
        assert_eq!(fmt_hour(24), "12 PM"); // paper writes midnight as 12 PM
        assert_eq!(fmt_hour(0), "12 AM");
    }

    #[test]
    fn working_days_with_exception() {
        // Working days of the first two weeks except day 7 (Monday 9-9).
        let days: Vec<u64> = (1..=11).filter(|&d| calendar::is_working_day(d) && d != 7).collect();
        let ivs: Vec<BlockInterval> = days.iter().map(|&d| iv(d, 12, 4)).collect();
        let p = describe(&ivs);
        assert_eq!(
            p.description,
            "12 Noon - 4 PM on all working days except 9-9-1996"
        );
        assert_eq!(p.start_hour, Some(12));
        assert_eq!(p.end_hour, Some(16));
    }

    #[test]
    fn all_working_days() {
        // Two work weeks (spanning the weekend days 5 and 6).
        let days: Vec<u64> = (1..=11).filter(|&d| calendar::is_working_day(d)).collect();
        let ivs: Vec<BlockInterval> = days.iter().map(|&d| iv(d, 8, 8)).collect();
        assert_eq!(describe(&ivs).description, "8 AM - 4 PM on all working days");
    }

    #[test]
    fn tuesdays_and_thursdays() {
        // Days 1, 3, 8, 10 are the Tue/Thu of the first two weeks.
        let ivs: Vec<BlockInterval> = [1u64, 3, 8, 10].iter().map(|&d| iv(d, 16, 8)).collect();
        assert_eq!(
            describe(&ivs).description,
            "4 PM - 12 PM on all Tues and all Thus"
        );
    }

    #[test]
    fn weekends() {
        let ivs: Vec<BlockInterval> = [5u64, 6, 12, 13].iter().map(|&d| iv(d, 0, 24)).collect();
        assert_eq!(describe(&ivs).description, "12 AM - 12 PM on weekends");
    }

    #[test]
    fn all_days_of_span() {
        let ivs: Vec<BlockInterval> = (3u64..=6).map(|d| iv(d, 0, 24)).collect();
        assert_eq!(describe(&ivs).description, "12 AM - 12 PM on all days");
    }

    #[test]
    fn irregular_days_fall_back_to_dates() {
        // Days 1 and 9 (Tue and Wed) with a skipped Tue at day 8 in between:
        // neither working-day nor weekday coverage holds.
        let ivs: Vec<BlockInterval> = [1u64, 9].iter().map(|&d| iv(d, 12, 4)).collect();
        let p = describe(&ivs);
        assert!(p.description.contains("9-3-1996"));
        assert!(p.description.contains("9-11-1996"));
    }

    #[test]
    fn mixed_hours_are_reported_as_such() {
        let ivs = vec![iv(1, 8, 4), iv(2, 12, 4)];
        let p = describe(&ivs);
        assert!(p.description.starts_with("mixed hours"));
        assert_eq!(p.start_hour, None);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sequence_panics() {
        describe(&[]);
    }
}
