//! The [`ModelMaintainer`] abstraction and its two instantiations.
//!
//! GEMM (§3.2) is generic over "any traditional incremental model
//! maintenance algorithm `A_M` for the unrestricted window option". The
//! trait splits responsibilities:
//!
//! * `register_block` — one-time processing when a block arrives (store
//!   the raw data, materialize TID-lists, ECUT+ pair lists, …);
//! * `absorb` — update one *model* with one registered block (this is
//!   `A_M(m, D_j)`); it takes `&self` so GEMM may update the off-line
//!   models of several future windows in parallel;
//! * `retire_block` — drop the stored data of blocks no maintained window
//!   can ever need again.

use demon_clustering::{
    BirchModel, BirchParams, CfTree, DbscanParams, PointBlockEntry, WindowedDbscan,
};
use demon_itemsets::{CounterKind, FrequentItemsets, TxStore};
use demon_store::{BlockStore, StoreConfig};
use demon_trees::LabeledBlockEntry;
use demon_types::{BlockId, MinSupport, PointBlock, Result, TxBlock};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// An incremental model maintenance algorithm for the unrestricted window
/// option, as consumed by GEMM.
pub trait ModelMaintainer {
    /// The record type of the blocks this maintainer consumes.
    type Record;
    /// The maintained model. `Clone` for the collection bookkeeping,
    /// serde for GEMM's on-disk model shelf, `Send + Sync` for parallel
    /// off-line updates and the shelf's storage-engine entries.
    type Model: Clone + Send + Sync + Serialize + DeserializeOwned;

    /// A model of the empty dataset.
    fn fresh(&self) -> Self::Model;

    /// One-time processing of an arriving block.
    fn register_block(&mut self, block: demon_types::Block<Self::Record>);

    /// Updates `model` to also cover registered block `id` —
    /// `A_M(model, D_id)`.
    fn absorb(&self, model: &mut Self::Model, id: BlockId);

    /// Releases the stored data of a block that no maintained window
    /// overlaps any more.
    fn retire_block(&mut self, id: BlockId);
}

/// A maintainer whose models can also **unlearn** a block: the inverse of
/// [`ModelMaintainer::absorb`].
///
/// §3.2.4 contrasts GEMM's per-window future models with direct
/// add/delete maintenance à la incremental DBSCAN. Model classes that do
/// support deletion implement this trait, and the engine then maintains a
/// most-recent window with **one** model — absorb the arriving block,
/// shed the departing one — instead of one off-line model per overlapping
/// future window.
pub trait DecrementalMaintainer: ModelMaintainer {
    /// Updates `model` to no longer cover block `id` — the deletion-based
    /// counterpart of `absorb`. Called while the block is still
    /// registered; the engine retires it afterwards.
    fn shed(&self, model: &mut Self::Model, id: BlockId);
}

/// How the [`ItemsetMaintainer`] materializes 2-itemset TID-lists for
/// ECUT+ when a block registers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PairMaterialization {
    /// No pair lists (sufficient for PT-Scan and plain ECUT).
    None,
    /// Materialize the TID-lists of the block-locally frequent 2-itemsets,
    /// best-supported first, within an optional budget expressed as a
    /// fraction of the block's item-list space. The paper picks by overall
    /// support of the maintained model; block-local support is the
    /// register-time proxy (the hint can be refreshed per block via
    /// [`ItemsetMaintainer::materialize_pairs_for`]).
    BlockLocal {
        /// Extra space budget as a fraction of the block's base space
        /// (`None` = unbounded, the Figure 2 setting).
        budget_fraction: Option<f64>,
    },
}

/// The frequent-itemset maintainer: BORDERS with a pluggable counter,
/// over an internally owned [`TxStore`].
pub struct ItemsetMaintainer {
    store: TxStore,
    minsup: MinSupport,
    counter: CounterKind,
    materialization: PairMaterialization,
    /// κ for pair selection at register time.
    pair_minsup: MinSupport,
}

impl ItemsetMaintainer {
    /// A maintainer over an `n_items` universe, mining at `minsup`, with
    /// the given update-phase counter. Blocks stay resident in memory;
    /// see [`ItemsetMaintainer::with_store_config`] for a bounded store.
    pub fn new(n_items: u32, minsup: MinSupport, counter: CounterKind) -> Self {
        ItemsetMaintainer {
            store: TxStore::new(n_items),
            minsup,
            counter,
            materialization: Self::default_materialization(counter),
            pair_minsup: minsup,
        }
    }

    /// [`ItemsetMaintainer::new`] over a storage engine built from
    /// `config` — blocks spill to disk under a memory budget.
    pub fn with_store_config(
        n_items: u32,
        minsup: MinSupport,
        counter: CounterKind,
        config: &StoreConfig,
    ) -> Result<Self> {
        Ok(ItemsetMaintainer {
            store: TxStore::with_config(n_items, config)?,
            minsup,
            counter,
            materialization: Self::default_materialization(counter),
            pair_minsup: minsup,
        })
    }

    fn default_materialization(counter: CounterKind) -> PairMaterialization {
        match counter {
            CounterKind::EcutPlus => PairMaterialization::BlockLocal {
                budget_fraction: None,
            },
            _ => PairMaterialization::None,
        }
    }

    /// Overrides the pair materialization policy.
    pub fn with_materialization(mut self, m: PairMaterialization) -> Self {
        self.materialization = m;
        self
    }

    /// The underlying store (counting experiments address it directly).
    pub fn store(&self) -> &TxStore {
        &self.store
    }

    /// Mutable access to the store.
    pub fn store_mut(&mut self) -> &mut TxStore {
        &mut self.store
    }

    /// The configured counter.
    pub fn counter(&self) -> CounterKind {
        self.counter
    }

    /// The mining threshold.
    pub fn min_support(&self) -> MinSupport {
        self.minsup
    }

    /// Explicitly materializes pair lists for a registered block — used
    /// when the caller has a better 2-itemset hint than the block-local
    /// one (e.g. the current model's `frequent_pairs_by_support`).
    pub fn materialize_pairs_for(
        &mut self,
        id: BlockId,
        pairs: &[(demon_types::Item, demon_types::Item)],
        budget: Option<u64>,
    ) -> demon_itemsets::store::MaterializeStats {
        self.store.materialize_pairs(id, pairs, budget)
    }
}

impl ModelMaintainer for ItemsetMaintainer {
    type Record = demon_types::Transaction;
    type Model = FrequentItemsets;

    fn fresh(&self) -> FrequentItemsets {
        FrequentItemsets::empty(self.minsup, self.store.n_items())
    }

    fn register_block(&mut self, block: TxBlock) {
        let id = block.id();
        self.store.add_block(block);
        if let PairMaterialization::BlockLocal { budget_fraction } = self.materialization {
            // Mine the block's own frequent 2-itemsets as the priority
            // list. The pin on the block must end before
            // `materialize_pairs` mutates the store.
            let pairs = {
                let blk = self.store.block(id).expect("block just added");
                let local =
                    FrequentItemsets::mine_blocks(&[&blk], self.store.n_items(), self.pair_minsup);
                local.frequent_pairs_by_support()
            };
            let budget = budget_fraction
                .map(|f| (self.store.item_space(&[id]) as f64 * f).round() as u64);
            self.store.materialize_pairs(id, &pairs, budget);
        }
    }

    fn absorb(&self, model: &mut FrequentItemsets, id: BlockId) {
        model
            .absorb_block(&self.store, id, self.counter)
            .expect("absorb of registered block");
    }

    fn retire_block(&mut self, id: BlockId) {
        self.store.remove_block(id);
    }
}

/// The clustering maintainer: BIRCH+ phase-1 trees as models, over
/// point blocks held in the block storage engine.
pub struct ClusterMaintainer {
    params: BirchParams,
    blocks: BlockStore<PointBlockEntry>,
}

impl ClusterMaintainer {
    /// A maintainer with the given BIRCH parameters; blocks stay
    /// resident in memory.
    pub fn new(params: BirchParams) -> Self {
        ClusterMaintainer {
            params,
            blocks: BlockStore::in_memory(),
        }
    }

    /// [`ClusterMaintainer::new`] over a storage engine built from
    /// `config` — blocks spill to disk under a memory budget.
    pub fn with_store_config(params: BirchParams, config: &StoreConfig) -> Result<Self> {
        Ok(ClusterMaintainer {
            params,
            blocks: config.build("points")?,
        })
    }

    /// The BIRCH parameters.
    pub fn params(&self) -> &BirchParams {
        &self.params
    }

    /// The block storage engine holding the registered point blocks.
    pub fn store(&self) -> &BlockStore<PointBlockEntry> {
        &self.blocks
    }

    /// Runs phase 2 on a maintained tree, yielding the cluster model.
    pub fn cluster_model(&self, tree: &CfTree) -> BirchModel {
        demon_clustering::phase2_model(tree, &self.params)
    }
}

impl ModelMaintainer for ClusterMaintainer {
    type Record = demon_types::Point;
    type Model = CfTree;

    fn fresh(&self) -> CfTree {
        CfTree::new(self.params.tree)
    }

    fn register_block(&mut self, block: PointBlock) {
        self.blocks.insert(block.id(), PointBlockEntry(block));
    }

    fn absorb(&self, model: &mut CfTree, id: BlockId) {
        let entry = self
            .blocks
            .get(id)
            .expect("registered block readable")
            .expect("absorb of registered block");
        for p in entry.0.records() {
            model.insert_point(p);
        }
    }

    fn retire_block(&mut self, id: BlockId) {
        self.blocks.remove(id);
    }
}

/// The density-model maintainer — incremental DBSCAN as a first-class
/// model class, and the only one whose window maintenance is
/// **deletion-based**.
///
/// `absorb` inserts the block's points into the maintained
/// [`WindowedDbscan`] through the incremental insertion path (core
/// promotion, cluster creation/absorption/merge); [`DecrementalMaintainer::shed`]
/// deletes them again through the incremental removal path (core
/// demotion, cluster shrink/split) — the direction §3.2.4 calls out as
/// the expensive one. Registered blocks live in the block storage engine
/// so snapshots and replays see the raw points.
pub struct DbscanMaintainer {
    params: DbscanParams,
    blocks: BlockStore<PointBlockEntry>,
}

impl DbscanMaintainer {
    /// A maintainer with the given DBSCAN parameters; blocks stay
    /// resident in memory.
    pub fn new(params: DbscanParams) -> Self {
        DbscanMaintainer {
            params,
            blocks: BlockStore::in_memory(),
        }
    }

    /// [`DbscanMaintainer::new`] over a storage engine built from
    /// `config` — blocks spill to disk under a memory budget.
    pub fn with_store_config(params: DbscanParams, config: &StoreConfig) -> Result<Self> {
        Ok(DbscanMaintainer {
            params,
            blocks: config.build("density")?,
        })
    }

    /// The DBSCAN parameters.
    pub fn params(&self) -> DbscanParams {
        self.params
    }

    /// The block storage engine holding the registered point blocks.
    pub fn store(&self) -> &BlockStore<PointBlockEntry> {
        &self.blocks
    }
}

impl ModelMaintainer for DbscanMaintainer {
    type Record = demon_types::Point;
    type Model = WindowedDbscan;

    fn fresh(&self) -> WindowedDbscan {
        WindowedDbscan::new(self.params)
    }

    fn register_block(&mut self, block: PointBlock) {
        self.blocks.insert(block.id(), PointBlockEntry(block));
    }

    fn absorb(&self, model: &mut WindowedDbscan, id: BlockId) {
        let entry = self
            .blocks
            .get(id)
            .expect("registered block readable")
            .expect("absorb of registered block");
        model.absorb_block(id, entry.0.records());
    }

    fn retire_block(&mut self, id: BlockId) {
        self.blocks.remove(id);
    }
}

impl DecrementalMaintainer for DbscanMaintainer {
    fn shed(&self, model: &mut WindowedDbscan, id: BlockId) {
        model.shed_block(id);
    }
}

/// The decision-tree maintainer — the third model class, demonstrating
/// that GEMM "can be instantiated for any class of data mining models".
///
/// Decision trees are not maintainable under insertion the way CF-trees
/// or borders are (the authors' BOAT line of work addresses that and is
/// explicitly out of the paper's scope), so this maintainer *refits* over
/// the model's covered blocks on each absorb. The model therefore tracks
/// which blocks it covers; the maintainer stores the labeled blocks.
/// GEMM semantics — one model per overlapping future window, correct
/// windowed models under any BSS — hold regardless of how `A_M`
/// internally achieves its update.
pub struct TreeMaintainer {
    params: demon_trees::TreeParams,
    dim: usize,
    blocks: BlockStore<LabeledBlockEntry>,
}

/// The tree model GEMM maintains: the fitted tree plus the ids of the
/// blocks it was fitted over.
#[derive(Clone, serde::Serialize, serde::Deserialize)]
pub struct WindowedTree {
    /// The fitted classifier; `None` until the first block is absorbed.
    pub tree: Option<demon_trees::DecisionTree>,
    /// Blocks covered, ascending.
    pub covers: Vec<BlockId>,
}

impl TreeMaintainer {
    /// A maintainer fitting `dim`-dimensional labeled points; blocks
    /// stay resident in memory.
    pub fn new(dim: usize, params: demon_trees::TreeParams) -> Self {
        TreeMaintainer {
            params,
            dim,
            blocks: BlockStore::in_memory(),
        }
    }

    /// [`TreeMaintainer::new`] over a storage engine built from
    /// `config` — blocks spill to disk under a memory budget.
    pub fn with_store_config(
        dim: usize,
        params: demon_trees::TreeParams,
        config: &StoreConfig,
    ) -> Result<Self> {
        Ok(TreeMaintainer {
            params,
            dim,
            blocks: config.build("labeled")?,
        })
    }

    /// The block storage engine holding the registered labeled blocks.
    pub fn store(&self) -> &BlockStore<LabeledBlockEntry> {
        &self.blocks
    }
}

impl ModelMaintainer for TreeMaintainer {
    type Record = demon_trees::LabeledPoint;
    type Model = WindowedTree;

    fn fresh(&self) -> WindowedTree {
        WindowedTree {
            tree: None,
            covers: Vec::new(),
        }
    }

    fn register_block(&mut self, block: demon_types::Block<demon_trees::LabeledPoint>) {
        self.blocks.insert(block.id(), LabeledBlockEntry(block));
    }

    fn absorb(&self, model: &mut WindowedTree, id: BlockId) {
        let pos = model.covers.partition_point(|&b| b < id);
        model.covers.insert(pos, id);
        let records: Vec<demon_trees::LabeledPoint> = model
            .covers
            .iter()
            .filter_map(|&b| self.blocks.get(b).expect("registered block readable"))
            .flat_map(|entry| entry.0.records().to_vec())
            .collect();
        model.tree = Some(demon_trees::DecisionTree::fit(
            &records,
            self.dim,
            self.params,
        ));
    }

    fn retire_block(&mut self, id: BlockId) {
        self.blocks.remove(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Item, Point, Tid, Transaction};

    fn tx_block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 1000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn itemset_maintainer_tracks_frequent_sets() {
        let mut m = ItemsetMaintainer::new(3, MinSupport::new(0.4).unwrap(), CounterKind::Ecut);
        m.register_block(tx_block(1, &[&[0, 1], &[0, 1], &[2]]));
        let mut model = m.fresh();
        m.absorb(&mut model, BlockId(1));
        assert!(model.is_frequent(&demon_types::ItemSet::from_ids(&[0, 1])));
        m.register_block(tx_block(2, &[&[2], &[2], &[2], &[2]]));
        m.absorb(&mut model, BlockId(2));
        assert!(model.is_frequent(&demon_types::ItemSet::from_ids(&[2])));
        model.check_invariants(m.store());
    }

    #[test]
    fn ecut_plus_maintainer_materializes_block_local_pairs() {
        let mut m =
            ItemsetMaintainer::new(3, MinSupport::new(0.4).unwrap(), CounterKind::EcutPlus);
        m.register_block(tx_block(1, &[&[0, 1], &[0, 1], &[0, 1], &[2]]));
        let pair_space = m.store().pair_space(&[BlockId(1)]);
        assert!(pair_space > 0, "ECUT+ should have pair lists");
        // And a plain-ECUT maintainer should not.
        let mut m2 = ItemsetMaintainer::new(3, MinSupport::new(0.4).unwrap(), CounterKind::Ecut);
        m2.register_block(tx_block(1, &[&[0, 1], &[0, 1], &[0, 1], &[2]]));
        assert_eq!(m2.store().pair_space(&[BlockId(1)]), 0);
    }

    #[test]
    fn retire_drops_block_data() {
        let mut m = ItemsetMaintainer::new(2, MinSupport::new(0.5).unwrap(), CounterKind::Ecut);
        m.register_block(tx_block(1, &[&[0]]));
        assert!(m.store().block(BlockId(1)).is_some());
        m.retire_block(BlockId(1));
        assert!(m.store().block(BlockId(1)).is_none());
    }

    #[test]
    fn cluster_maintainer_builds_trees_per_model() {
        let params = BirchParams::new(2, 2);
        let mut m = ClusterMaintainer::new(params);
        let b1 = PointBlock::new(
            BlockId(1),
            (0..50)
                .map(|i| Point::new(vec![i as f64 * 0.01, 0.0]))
                .collect(),
        );
        let b2 = PointBlock::new(
            BlockId(2),
            (0..50)
                .map(|i| Point::new(vec![50.0 + i as f64 * 0.01, 0.0]))
                .collect(),
        );
        m.register_block(b1);
        m.register_block(b2);
        let mut tree = m.fresh();
        m.absorb(&mut tree, BlockId(1));
        assert_eq!(tree.n_points(), 50);
        m.absorb(&mut tree, BlockId(2));
        assert_eq!(tree.n_points(), 100);
        let model = m.cluster_model(&tree);
        assert_eq!(model.k(), 2);
        assert_eq!(model.n_points(), 100);
        m.retire_block(BlockId(1));
        // A second independent model only sees the remaining block.
        let mut tree2 = m.fresh();
        m.absorb(&mut tree2, BlockId(2));
        assert_eq!(tree2.n_points(), 50);
    }

    #[test]
    fn dbscan_maintainer_absorbs_and_sheds_blocks() {
        let mut m = DbscanMaintainer::new(DbscanParams::new(2, 1.0, 3));
        let blob = |id: u64, cx: f64| {
            PointBlock::new(
                BlockId(id),
                [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3)]
                    .iter()
                    .map(|(dx, dy)| Point::new(vec![cx + dx, *dy]))
                    .collect(),
            )
        };
        m.register_block(blob(1, 0.0));
        m.register_block(blob(2, 10.0));
        let mut model = m.fresh();
        m.absorb(&mut model, BlockId(1));
        assert_eq!(model.structure().n_clusters(), 1);
        m.absorb(&mut model, BlockId(2));
        assert_eq!(model.structure().n_clusters(), 2);
        assert_eq!(model.covered_blocks(), vec![BlockId(1), BlockId(2)]);
        // Deletion-based window maintenance: shed undoes absorb.
        m.shed(&mut model, BlockId(1));
        m.retire_block(BlockId(1));
        assert_eq!(model.structure().n_clusters(), 1);
        assert_eq!(model.covered_blocks(), vec![BlockId(2)]);
        model.structure().check_against_batch();
    }

    #[test]
    fn tree_maintainer_refits_over_covered_blocks() {
        use demon_trees::{LabeledPoint, TreeParams};
        let mut m = TreeMaintainer::new(1, TreeParams::new(2));
        // Block 1: class 0 on the left; block 2: class 1 on the right.
        let mk = |id: u64, x0: f64, label: u32| {
            demon_types::Block::new(
                BlockId(id),
                (0..40)
                    .map(|i| LabeledPoint::new(vec![x0 + i as f64 * 0.01], label))
                    .collect(),
            )
        };
        m.register_block(mk(1, -5.0, 0));
        m.register_block(mk(2, 5.0, 1));
        let mut model = m.fresh();
        assert!(model.tree.is_none());
        m.absorb(&mut model, BlockId(1));
        m.absorb(&mut model, BlockId(2));
        assert_eq!(model.covers, vec![BlockId(1), BlockId(2)]);
        let tree = model.tree.as_ref().unwrap();
        assert_eq!(tree.predict(&Point::new(vec![-4.0])), 0);
        assert_eq!(tree.predict(&Point::new(vec![6.0])), 1);
    }

    #[test]
    fn tree_maintainer_through_gemm_window() {
        use crate::bss::BlockSelector;
        use crate::gemm::Gemm;
        use demon_trees::{LabeledPoint, TreeParams};
        let maintainer = TreeMaintainer::new(1, TreeParams::new(2));
        let mut gemm = Gemm::new(maintainer, 2, BlockSelector::all()).unwrap();
        // Blocks 1-2 teach "x<0 → class 0"; block 3 flips the labels.
        let mk = |id: u64, flip: bool| {
            demon_types::Block::new(
                BlockId(id),
                (0..60)
                    .map(|i| {
                        let left = i % 2 == 0;
                        let x = if left { -3.0 } else { 3.0 } + (i as f64) * 0.01;
                        LabeledPoint::new(vec![x], u32::from(left == flip))
                    })
                    .collect(),
            )
        };
        gemm.add_block(mk(1, false)).unwrap();
        gemm.add_block(mk(2, false)).unwrap();
        let t = gemm.current_model().unwrap().tree.clone().unwrap();
        assert_eq!(t.predict(&Point::new(vec![-3.0])), 0);
        // Two flipped blocks slide the old concept out of the window.
        gemm.add_block(mk(3, true)).unwrap();
        gemm.add_block(mk(4, true)).unwrap();
        let t = gemm.current_model().unwrap().tree.clone().unwrap();
        assert_eq!(t.predict(&Point::new(vec![-3.0])), 1, "concept drift tracked");
    }

    #[test]
    fn fresh_models_are_independent() {
        let m = ItemsetMaintainer::new(2, MinSupport::new(0.5).unwrap(), CounterKind::PtScan);
        let a = m.fresh();
        let b = m.fresh();
        assert_eq!(a.n_transactions(), 0);
        assert_eq!(b.n_transactions(), 0);
        assert_eq!(a.border().len(), 2);
    }
}
