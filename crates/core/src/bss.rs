//! Block selection sequences (paper §2.3) and the window operations of
//! §3.2.
//!
//! A BSS marks which blocks feed the model: bit 1 selects the block, bit 0
//! skips it. A **window-independent** BSS is anchored to absolute block
//! identifiers ("all blocks added on Mondays"); a **window-relative** BSS
//! is anchored to positions inside the most recent window ("every seventh
//! block counting from the start of the window") and therefore *moves*
//! with the window.

use demon_types::BlockId;
use serde::{Deserialize, Serialize};

/// A window-independent block selection sequence: conceptually an infinite
/// bit sequence `⟨b₁, b₂, …⟩` indexed by block identifier.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WiBss {
    /// Select every block (the degenerate all-ones BSS).
    All,
    /// Explicit bits for the first blocks; blocks beyond the explicit
    /// prefix take the `tail` value.
    Explicit {
        /// Bits for blocks `1..=bits.len()`.
        bits: Vec<bool>,
        /// Bit for every later block.
        tail: bool,
    },
    /// A periodic pattern: block `i` (1-based) takes
    /// `pattern[(i - 1) % pattern.len()]` — "all blocks added on Mondays"
    /// is `Periodic` with a 7-bit pattern when blocks are daily.
    Periodic {
        /// The repeating bit pattern (must be non-empty).
        pattern: Vec<bool>,
    },
}

impl WiBss {
    /// The bit `b_i` of block `id`.
    pub fn bit(&self, id: BlockId) -> bool {
        match self {
            WiBss::All => true,
            WiBss::Explicit { bits, tail } => {
                bits.get(id.index()).copied().unwrap_or(*tail)
            }
            WiBss::Periodic { pattern } => {
                assert!(!pattern.is_empty(), "periodic BSS needs a pattern");
                pattern[id.index() % pattern.len()]
            }
        }
    }

    /// The **k-projection** (§3.2.1): the length-`w` sequence selecting,
    /// inside the current window `D[start, start+w-1]`, the blocks a
    /// future-window model shares with it — the window bits with the first
    /// `k` positions zeroed.
    pub fn project(&self, window_start: BlockId, w: usize, k: usize) -> Vec<bool> {
        assert!(k < w, "projection index must be below the window size");
        (0..w)
            .map(|i| i >= k && self.bit(BlockId(window_start.value() + i as u64)))
            .collect()
    }
}

/// A window-relative BSS: one bit per position `1..=w` of the most recent
/// window.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WrBss {
    bits: Vec<bool>,
}

impl WrBss {
    /// Builds from the per-position bits (`bits.len()` = window size).
    pub fn new(bits: Vec<bool>) -> Self {
        assert!(!bits.is_empty(), "window-relative BSS cannot be empty");
        WrBss { bits }
    }

    /// The window size the sequence is defined over.
    pub fn window_size(&self) -> usize {
        self.bits.len()
    }

    /// The bit of window position `pos` (1-based).
    pub fn bit(&self, pos: usize) -> bool {
        assert!(pos >= 1 && pos <= self.bits.len(), "position out of window");
        self.bits[pos - 1]
    }

    /// The **k-right-shift** (§3.2.2): slide the pattern forward by `k`
    /// blocks, zero-padding the first `k` positions and truncating what
    /// slides past the end.
    pub fn right_shift(&self, k: usize) -> Vec<bool> {
        let w = self.bits.len();
        (0..w)
            .map(|i| i >= k && self.bits[i - k.min(i)])
            .collect()
    }
}

/// The block selector: which flavour of BSS applies, and its bits.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockSelector {
    /// Window-independent selection (valid for both data span options).
    WindowIndependent(WiBss),
    /// Window-relative selection (only meaningful for the most recent
    /// window — the sharp UW/MRW distinction is what lets this exist,
    /// §2.3).
    WindowRelative(WrBss),
}

impl BlockSelector {
    /// Selects every block.
    pub fn all() -> Self {
        BlockSelector::WindowIndependent(WiBss::All)
    }

    /// Whether block `id` is selected when it arrives as the newest block
    /// of a window whose start block is `window_start` (window size `w`).
    ///
    /// For a window-independent BSS only the block's own bit matters; for
    /// a window-relative BSS the bit of the block's *position* in the
    /// window applies.
    pub fn selects_arriving(&self, id: BlockId, window_start: BlockId, w: usize) -> bool {
        match self {
            BlockSelector::WindowIndependent(wi) => wi.bit(id),
            BlockSelector::WindowRelative(wr) => {
                debug_assert_eq!(wr.window_size(), w);
                let pos = (id.value() - window_start.value() + 1) as usize;
                debug_assert!(pos >= 1 && pos <= w, "arriving block outside window");
                wr.bit(pos)
            }
        }
    }

    /// The blocks of the window `[start, start + w - 1] ∩ [1, t]` selected
    /// by this BSS (used by the `AuM` baseline and by tests to
    /// cross-check GEMM's incremental state).
    pub fn selected_in_window(&self, start: BlockId, w: usize, latest: BlockId) -> Vec<BlockId> {
        (0..w as u64)
            .map(|i| BlockId(start.value() + i))
            .filter(|id| id.value() <= latest.value())
            .filter(|id| match self {
                BlockSelector::WindowIndependent(wi) => wi.bit(*id),
                BlockSelector::WindowRelative(wr) => {
                    wr.bit((id.value() - start.value() + 1) as usize)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(s: &str) -> Vec<bool> {
        s.chars().map(|c| c == '1').collect()
    }

    #[test]
    fn wi_bss_variants_index_by_block_id() {
        assert!(WiBss::All.bit(BlockId(7)));
        let e = WiBss::Explicit {
            bits: bits("101"),
            tail: false,
        };
        assert!(e.bit(BlockId(1)));
        assert!(!e.bit(BlockId(2)));
        assert!(e.bit(BlockId(3)));
        assert!(!e.bit(BlockId(4))); // tail
        let p = WiBss::Periodic { pattern: bits("10") };
        assert!(p.bit(BlockId(1)));
        assert!(!p.bit(BlockId(2)));
        assert!(p.bit(BlockId(3)));
    }

    #[test]
    fn projection_matches_paper_example() {
        // Paper §3.2.1: window D[1,3], w = 3, BSS ⟨10110…⟩.
        // k=0 keeps ⟨101⟩; k=1 gives ⟨001⟩; k=2 gives ⟨001⟩.
        let b = WiBss::Explicit {
            bits: bits("10110"),
            tail: false,
        };
        assert_eq!(b.project(BlockId(1), 3, 0), bits("101"));
        assert_eq!(b.project(BlockId(1), 3, 1), bits("001"));
        assert_eq!(b.project(BlockId(1), 3, 2), bits("001"));
    }

    #[test]
    #[should_panic(expected = "below the window size")]
    fn projection_rejects_k_at_window_size() {
        WiBss::All.project(BlockId(1), 3, 3);
    }

    #[test]
    fn right_shift_matches_paper_example() {
        // Paper §3.2.2: window-relative ⟨101⟩ right-shifted once is ⟨010⟩.
        let wr = WrBss::new(bits("101"));
        assert_eq!(wr.right_shift(0), bits("101"));
        assert_eq!(wr.right_shift(1), bits("010"));
        assert_eq!(wr.right_shift(2), bits("001"));
    }

    #[test]
    fn right_shift_truncates_beyond_window() {
        let wr = WrBss::new(bits("111"));
        assert_eq!(wr.right_shift(2), bits("001"));
        let wr2 = WrBss::new(bits("100"));
        assert_eq!(wr2.right_shift(1), bits("010"));
        assert_eq!(wr2.right_shift(2), bits("001"));
    }

    #[test]
    fn selector_arriving_bit_wi_vs_wr() {
        let wi = BlockSelector::WindowIndependent(WiBss::Periodic { pattern: bits("10") });
        // Window-independent: only the block id matters.
        assert!(wi.selects_arriving(BlockId(3), BlockId(1), 3));
        assert!(!wi.selects_arriving(BlockId(4), BlockId(2), 3));

        let wr = BlockSelector::WindowRelative(WrBss::new(bits("101")));
        // The newest block of a full window sits at position w.
        assert!(wr.selects_arriving(BlockId(5), BlockId(3), 3)); // pos 3, bit 1
        assert!(!wr.selects_arriving(BlockId(4), BlockId(3), 3)); // pos 2, bit 0
    }

    #[test]
    fn selected_in_window_lists_selected_blocks() {
        let wi = BlockSelector::WindowIndependent(WiBss::Explicit {
            bits: bits("10110"),
            tail: false,
        });
        assert_eq!(
            wi.selected_in_window(BlockId(1), 3, BlockId(3)),
            vec![BlockId(1), BlockId(3)]
        );
        assert_eq!(
            wi.selected_in_window(BlockId(2), 3, BlockId(4)),
            vec![BlockId(3), BlockId(4)]
        );
        let wr = BlockSelector::WindowRelative(WrBss::new(bits("101")));
        assert_eq!(
            wr.selected_in_window(BlockId(2), 3, BlockId(4)),
            vec![BlockId(2), BlockId(4)]
        );
        // Truncated window (fewer blocks than w so far).
        assert_eq!(
            wr.selected_in_window(BlockId(1), 3, BlockId(2)),
            vec![BlockId(1)]
        );
    }

    #[test]
    fn all_selector_selects_everything() {
        let s = BlockSelector::all();
        assert!(s.selects_arriving(BlockId(9), BlockId(7), 3));
        assert_eq!(
            s.selected_in_window(BlockId(7), 3, BlockId(9)).len(),
            3
        );
    }
}
