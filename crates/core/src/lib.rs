//! The DEMON engine: data span dimension, block selection sequences, and
//! the **GEMM** generic model maintainer.
//!
//! This crate ties the substrates together into the framework of the
//! paper's Figure 11 — the problem-space matrix of
//! {unrestricted window, most recent window} × {model maintenance, pattern
//! detection}:
//!
//! * [`bss`] — block selection sequences: window-independent and
//!   window-relative bit sequences, with the **projection** and
//!   **right-shift** operations of §3.2;
//! * [`maintainer`] — the [`ModelMaintainer`] abstraction GEMM is generic
//!   over, with the two instantiations of §3.1:
//!   [`maintainer::ItemsetMaintainer`] (BORDERS + ECUT/ECUT+),
//!   [`maintainer::ClusterMaintainer`] (BIRCH+),
//!   [`maintainer::TreeMaintainer`] (refit decision trees) and
//!   [`maintainer::DbscanMaintainer`] (incremental DBSCAN — the only
//!   [`maintainer::DecrementalMaintainer`], whose MRW window slides by
//!   deletion through [`engine::SlidingEngine`]);
//! * [`gemm`] — the generic most-recent-window algorithm: maintain one
//!   model per future window overlapping the current one, updating the
//!   time-critical model first (its cost is the *response time*) and the
//!   rest off-line, optionally parallel and optionally shelved to disk;
//! * [`aum`] — the direct add/delete maintainer (`AuM`, §3.2.4) used as
//!   the GEMM ablation baseline;
//! * [`engine`] — a small facade selecting the data span option;
//! * [`report`] — calendar-style reporting of block sequences for the
//!   web-trace experiments;
//! * [`monitor`] — the full Figure-11 composition: model maintenance and
//!   pattern detection over one stream.
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §2 | block selection sequences, projection, right-shift | [`bss`] |
//! | §3.1 | model maintenance substrate | [`maintainer`] |
//! | §3.2 | GEMM, future-window models, off-line updates | [`gemm`] |
//! | §3.2 ("main memory is a premium") | disk shelf | [`gemm::ShelfMode`] |
//! | §3.2 ("may run in parallel") | parallel off-line fan-out | [`Gemm::with_parallelism`] |
//! | §3.2.4 | AuM add/delete ablation baseline | [`aum`] |
//! | §3.2.4 | deletion-based MRW engine (incremental DBSCAN) | [`engine::SlidingEngine`] |
//! | §5 | calendar-style reporting | [`report`] |
//! | Fig. 11 | the full framework composition | [`engine`], [`monitor`] |
//!
//! # Example
//!
//! GEMM over a window of two blocks, with the window-relative BSS ⟨01⟩
//! ("only the newest block of the window"):
//!
//! ```
//! use demon_core::bss::{BlockSelector, WrBss};
//! use demon_core::{Gemm, ItemsetMaintainer};
//! use demon_itemsets::CounterKind;
//! use demon_types::{Block, BlockId, Item, ItemSet, MinSupport, Tid, Transaction};
//!
//! let maintainer = ItemsetMaintainer::new(8, MinSupport::new(0.2)?, CounterKind::Ecut);
//! let bss = BlockSelector::WindowRelative(WrBss::new(vec![false, true]));
//! let mut gemm = Gemm::new(maintainer, 2, bss)?;
//! for id in 1..=3u64 {
//!     let txs = (0..10)
//!         .map(|i| Transaction::new(Tid(id * 100 + i), vec![Item(id as u32)]))
//!         .collect();
//!     gemm.add_block(Block::new(BlockId(id), txs))?;
//! }
//! // Window D[2,3], position-2 bit set → the model covers block 3 only.
//! let model = gemm.current_model().unwrap();
//! assert!(model.is_frequent(&ItemSet::from_ids(&[3])));
//! assert!(!model.is_frequent(&ItemSet::from_ids(&[2])));
//! # Ok::<(), demon_types::DemonError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aum;
pub mod bss;
pub mod engine;
pub mod gemm;
pub mod maintainer;
pub mod monitor;
pub mod report;

pub use bss::{BlockSelector, WiBss};
pub use engine::{DataSpan, DemonEngine, SlidingEngine};
pub use gemm::{Gemm, GemmStats, ShelfMode};
pub use maintainer::{
    ClusterMaintainer, DbscanMaintainer, DecrementalMaintainer, ItemsetMaintainer,
    ModelMaintainer, TreeMaintainer,
};
pub use monitor::{DemonMonitor, MonitorStats};
