//! A small facade over the problem space of Figure 11: pick a data span
//! option, get a maintained model.

use crate::bss::{BlockSelector, WiBss};
use crate::gemm::{Gemm, GemmStats};
use crate::maintainer::{DecrementalMaintainer, ModelMaintainer};
use demon_types::{Block, BlockId, DemonError, Result};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The data span dimension (paper §2.2): mine everything collected so
/// far, or only the `w` most recent blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataSpan {
    /// Unrestricted window, with a window-independent BSS.
    Unrestricted(WiBss),
    /// Most recent window of size `w`, with either BSS flavour.
    MostRecent {
        /// Window size.
        w: usize,
        /// The block selection sequence.
        selector: BlockSelector,
    },
}

/// Timing of one engine step.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Time until the updated required model was available.
    pub response_time: Duration,
    /// Off-line time (GEMM's future-window updates; zero for UW).
    pub offline_time: Duration,
    /// Whether the arriving block entered the required model.
    pub absorbed: bool,
}

impl From<GemmStats> for EngineStats {
    fn from(g: GemmStats) -> Self {
        EngineStats {
            response_time: g.response_time,
            offline_time: g.offline_time,
            absorbed: g.absorbed_into_current,
        }
    }
}

/// The unrestricted-window engine: one model, maintained by `A_M` under a
/// window-independent BSS (paper §3.1).
pub struct UwEngine<M: ModelMaintainer> {
    maintainer: M,
    bss: WiBss,
    model: M::Model,
    latest: Option<BlockId>,
}

impl<M: ModelMaintainer> UwEngine<M> {
    /// A new engine.
    pub fn new(maintainer: M, bss: WiBss) -> Self {
        let model = maintainer.fresh();
        UwEngine {
            maintainer,
            bss,
            model,
            latest: None,
        }
    }

    /// The maintained model.
    pub fn model(&self) -> &M::Model {
        &self.model
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        &self.maintainer
    }

    /// Processes the next arriving block. A replayed id (at or below the
    /// latest consumed block) is a typed [`DemonError::DuplicateBlock`];
    /// a gap is an [`DemonError::InvalidParameter`]. Either way the
    /// engine is untouched: nothing was registered or absorbed.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<EngineStats> {
        let id = block.id();
        check_sequential(id, self.latest)?;
        self.maintainer.register_block(block);
        self.latest = Some(id);
        let absorbed = self.bss.bit(id);
        let t0 = Instant::now();
        if absorbed {
            // The current set of frequent itemsets simply carries over on
            // a 0 bit (§3.1.1); on a 1 bit the maintainer updates it.
            self.maintainer.absorb(&mut self.model, id);
        }
        Ok(EngineStats {
            response_time: t0.elapsed(),
            offline_time: Duration::ZERO,
            absorbed,
        })
    }
}

/// The **sliding** most-recent-window engine for deletion-capable model
/// classes (paper §3.2.4's alternative to GEMM's per-window future
/// models): one model, maintained by absorbing the arriving block and
/// shedding the departing one through
/// [`DecrementalMaintainer::shed`].
///
/// Unlike GEMM this keeps no off-line models at all — the trade the
/// paper analyzes is exactly this: no off-line cost, but the on-line
/// response time pays for deletion, which for e.g. incremental DBSCAN
/// "is higher than that when a tuple is inserted". The window always
/// selects every block (a window-relative BSS under deletion-based
/// maintenance would need selective shedding, which no deletion-capable
/// class provides).
pub struct SlidingEngine<M: ModelMaintainer> {
    maintainer: M,
    w: usize,
    model: M::Model,
    window: VecDeque<BlockId>,
    latest: Option<BlockId>,
    /// `DecrementalMaintainer::shed`, captured at construction so the
    /// struct (and [`DemonEngine`]) stay usable under the plain
    /// `ModelMaintainer` bound.
    shed: fn(&M, &mut M::Model, BlockId),
}

impl<M: ModelMaintainer> SlidingEngine<M> {
    /// A sliding engine over the `w` most recent blocks.
    pub fn new(maintainer: M, w: usize) -> Result<Self>
    where
        M: DecrementalMaintainer,
    {
        if w == 0 {
            return Err(DemonError::InvalidParameter(
                "window size w must be at least 1".into(),
            ));
        }
        let model = maintainer.fresh();
        Ok(SlidingEngine {
            maintainer,
            w,
            model,
            window: VecDeque::new(),
            latest: None,
            shed: M::shed,
        })
    }

    /// The maintained window model.
    pub fn model(&self) -> &M::Model {
        &self.model
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        &self.maintainer
    }

    /// Blocks currently inside the window, oldest first.
    pub fn window(&self) -> Vec<BlockId> {
        self.window.iter().copied().collect()
    }

    /// Processes the next arriving block: absorb it, then shed and retire
    /// the block that slid out of the `w`-window (if any). Sequencing
    /// errors leave the engine untouched.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<EngineStats> {
        let id = block.id();
        check_sequential(id, self.latest)?;
        self.maintainer.register_block(block);
        self.latest = Some(id);
        let t0 = Instant::now();
        self.maintainer.absorb(&mut self.model, id);
        self.window.push_back(id);
        if self.window.len() > self.w {
            let departing = self.window.pop_front().expect("window non-empty");
            (self.shed)(&self.maintainer, &mut self.model, departing);
            self.maintainer.retire_block(departing);
        }
        Ok(EngineStats {
            response_time: t0.elapsed(),
            offline_time: Duration::ZERO,
            absorbed: true,
        })
    }
}

/// Enforces the paper's systematic-evolution contract: block `id` must
/// be exactly the successor of `latest`. A replay of an id the engine
/// already consumed is a [`DemonError::DuplicateBlock`] (benign and
/// retryable for e.g. a recovering ingest pipeline); skipping ahead is
/// an [`DemonError::InvalidParameter`]. Shared by [`UwEngine`] and
/// [`crate::Gemm`], so both reject the block *before* touching any
/// maintainer or store state.
pub(crate) fn check_sequential(id: BlockId, latest: Option<BlockId>) -> Result<()> {
    let expected = latest.map_or(BlockId::FIRST, BlockId::next);
    if id == expected {
        return Ok(());
    }
    match latest {
        Some(latest) if id <= latest => Err(DemonError::DuplicateBlock {
            id: id.value(),
            latest: latest.value(),
        }),
        _ => Err(DemonError::InvalidParameter(format!(
            "expected block {expected}, got {id}"
        ))),
    }
}

/// The unified engine, dispatching on the data span option.
pub enum DemonEngine<M: ModelMaintainer + Sync> {
    /// Unrestricted window.
    Uw(UwEngine<M>),
    /// Most recent window (GEMM: per-window future models).
    Mrw(Gemm<M>),
    /// Most recent window by absorb/shed (deletion-capable classes).
    Sliding(SlidingEngine<M>),
}

impl<M: ModelMaintainer + Sync> DemonEngine<M> {
    /// Builds the engine for the chosen data span option.
    pub fn new(maintainer: M, span: DataSpan) -> Result<Self> {
        match span {
            DataSpan::Unrestricted(bss) => Ok(DemonEngine::Uw(UwEngine::new(maintainer, bss))),
            DataSpan::MostRecent { w, selector } => {
                Ok(DemonEngine::Mrw(Gemm::new(maintainer, w, selector)?))
            }
        }
    }

    /// Builds a deletion-based most-recent-window engine: one model that
    /// absorbs the arriving block and sheds the departing one, instead of
    /// GEMM's per-window future models. Only deletion-capable maintainers
    /// qualify.
    pub fn new_decremental(maintainer: M, w: usize) -> Result<Self>
    where
        M: DecrementalMaintainer,
    {
        Ok(DemonEngine::Sliding(SlidingEngine::new(maintainer, w)?))
    }

    /// Processes the next arriving block.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<EngineStats> {
        match self {
            DemonEngine::Uw(e) => e.add_block(block),
            DemonEngine::Mrw(g) => Ok(g.add_block(block)?.into()),
            DemonEngine::Sliding(s) => s.add_block(block),
        }
    }

    /// The currently required model (`None` only for an MRW engine that
    /// has seen no blocks).
    pub fn current_model(&self) -> Option<&M::Model> {
        match self {
            DemonEngine::Uw(e) => Some(e.model()),
            DemonEngine::Mrw(g) => g.current_model(),
            DemonEngine::Sliding(s) => Some(s.model()),
        }
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        match self {
            DemonEngine::Uw(e) => e.maintainer(),
            DemonEngine::Mrw(g) => g.maintainer(),
            DemonEngine::Sliding(s) => s.maintainer(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::ItemsetMaintainer;
    use demon_itemsets::CounterKind;
    use demon_types::{Item, ItemSet, MinSupport, Tid, Transaction, TxBlock};

    fn marker_block(id: u64, n_tx: usize) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            (0..n_tx)
                .map(|i| Transaction::new(Tid(id * 1000 + i as u64), vec![Item(id as u32)]))
                .collect(),
        )
    }

    fn maintainer() -> ItemsetMaintainer {
        ItemsetMaintainer::new(16, MinSupport::new(0.05).unwrap(), CounterKind::Ecut)
    }

    #[test]
    fn uw_engine_accumulates_selected_blocks() {
        let bss = WiBss::Periodic {
            pattern: vec![true, false],
        };
        let mut e = UwEngine::new(maintainer(), bss);
        for id in 1..=4u64 {
            e.add_block(marker_block(id, 4)).unwrap();
        }
        // Blocks 1 and 3 selected.
        assert!(e.model().is_frequent(&ItemSet::from_ids(&[1])));
        assert!(!e.model().is_frequent(&ItemSet::from_ids(&[2])));
        assert!(e.model().is_frequent(&ItemSet::from_ids(&[3])));
        assert!(!e.model().is_frequent(&ItemSet::from_ids(&[4])));
    }

    #[test]
    fn uw_engine_rejects_gaps() {
        let mut e = UwEngine::new(maintainer(), WiBss::All);
        e.add_block(marker_block(1, 2)).unwrap();
        assert!(e.add_block(marker_block(3, 2)).is_err());
    }

    #[test]
    fn sliding_engine_keeps_exactly_the_window() {
        use crate::maintainer::DbscanMaintainer;
        use demon_clustering::DbscanParams;
        use demon_types::{Point, PointBlock};
        let blob = |id: u64| {
            PointBlock::new(
                BlockId(id),
                [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3)]
                    .iter()
                    .map(|(dx, dy)| Point::new(vec![id as f64 * 10.0 + dx, *dy]))
                    .collect(),
            )
        };
        let maintainer = DbscanMaintainer::new(DbscanParams::new(2, 1.0, 3));
        let mut e =
            DemonEngine::new_decremental(maintainer, 2).expect("decremental engine builds");
        for id in 1..=4u64 {
            let stats = e.add_block(blob(id)).unwrap();
            assert!(stats.absorbed);
        }
        let model = e.current_model().unwrap();
        // Only the last two blobs survive the slide; retired blocks are
        // gone from the store as well.
        assert_eq!(model.covered_blocks(), vec![BlockId(3), BlockId(4)]);
        assert_eq!(model.structure().n_clusters(), 2);
        assert_eq!(model.structure().len(), 6);
        model.structure().check_against_batch();
        assert!(e.maintainer().store().get(BlockId(1)).unwrap().is_none());
        assert!(e.maintainer().store().get(BlockId(4)).unwrap().is_some());
        // Replays and gaps stay typed errors.
        assert!(matches!(
            e.add_block(blob(4)),
            Err(DemonError::DuplicateBlock { .. })
        ));
        assert!(e.add_block(blob(7)).is_err());
    }

    #[test]
    fn sliding_engine_rejects_zero_window() {
        use crate::maintainer::DbscanMaintainer;
        use demon_clustering::DbscanParams;
        let maintainer = DbscanMaintainer::new(DbscanParams::new(2, 1.0, 3));
        assert!(DemonEngine::new_decremental(maintainer, 0).is_err());
    }

    #[test]
    fn unified_engine_dispatches_both_spans() {
        let mut uw =
            DemonEngine::new(maintainer(), DataSpan::Unrestricted(WiBss::All)).unwrap();
        let mut mrw = DemonEngine::new(
            maintainer(),
            DataSpan::MostRecent {
                w: 2,
                selector: BlockSelector::all(),
            },
        )
        .unwrap();
        for id in 1..=4u64 {
            let su = uw.add_block(marker_block(id, 4)).unwrap();
            let sm = mrw.add_block(marker_block(id, 4)).unwrap();
            assert!(su.absorbed && sm.absorbed);
        }
        // UW keeps everything; MRW only the last two blocks.
        let uw_model = uw.current_model().unwrap();
        let mrw_model = mrw.current_model().unwrap();
        assert!(uw_model.is_frequent(&ItemSet::from_ids(&[1])));
        assert!(!mrw_model.is_frequent(&ItemSet::from_ids(&[1])));
        assert!(mrw_model.is_frequent(&ItemSet::from_ids(&[3])));
        assert!(mrw_model.is_frequent(&ItemSet::from_ids(&[4])));
    }
}
