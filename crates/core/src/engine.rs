//! A small facade over the problem space of Figure 11: pick a data span
//! option, get a maintained model.

use crate::bss::{BlockSelector, WiBss};
use crate::gemm::{Gemm, GemmStats};
use crate::maintainer::ModelMaintainer;
use demon_types::{Block, BlockId, DemonError, Result};
use std::time::{Duration, Instant};

/// The data span dimension (paper §2.2): mine everything collected so
/// far, or only the `w` most recent blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataSpan {
    /// Unrestricted window, with a window-independent BSS.
    Unrestricted(WiBss),
    /// Most recent window of size `w`, with either BSS flavour.
    MostRecent {
        /// Window size.
        w: usize,
        /// The block selection sequence.
        selector: BlockSelector,
    },
}

/// Timing of one engine step.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Time until the updated required model was available.
    pub response_time: Duration,
    /// Off-line time (GEMM's future-window updates; zero for UW).
    pub offline_time: Duration,
    /// Whether the arriving block entered the required model.
    pub absorbed: bool,
}

impl From<GemmStats> for EngineStats {
    fn from(g: GemmStats) -> Self {
        EngineStats {
            response_time: g.response_time,
            offline_time: g.offline_time,
            absorbed: g.absorbed_into_current,
        }
    }
}

/// The unrestricted-window engine: one model, maintained by `A_M` under a
/// window-independent BSS (paper §3.1).
pub struct UwEngine<M: ModelMaintainer> {
    maintainer: M,
    bss: WiBss,
    model: M::Model,
    latest: Option<BlockId>,
}

impl<M: ModelMaintainer> UwEngine<M> {
    /// A new engine.
    pub fn new(maintainer: M, bss: WiBss) -> Self {
        let model = maintainer.fresh();
        UwEngine {
            maintainer,
            bss,
            model,
            latest: None,
        }
    }

    /// The maintained model.
    pub fn model(&self) -> &M::Model {
        &self.model
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        &self.maintainer
    }

    /// Processes the next arriving block. A replayed id (at or below the
    /// latest consumed block) is a typed [`DemonError::DuplicateBlock`];
    /// a gap is an [`DemonError::InvalidParameter`]. Either way the
    /// engine is untouched: nothing was registered or absorbed.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<EngineStats> {
        let id = block.id();
        check_sequential(id, self.latest)?;
        self.maintainer.register_block(block);
        self.latest = Some(id);
        let absorbed = self.bss.bit(id);
        let t0 = Instant::now();
        if absorbed {
            // The current set of frequent itemsets simply carries over on
            // a 0 bit (§3.1.1); on a 1 bit the maintainer updates it.
            self.maintainer.absorb(&mut self.model, id);
        }
        Ok(EngineStats {
            response_time: t0.elapsed(),
            offline_time: Duration::ZERO,
            absorbed,
        })
    }
}

/// Enforces the paper's systematic-evolution contract: block `id` must
/// be exactly the successor of `latest`. A replay of an id the engine
/// already consumed is a [`DemonError::DuplicateBlock`] (benign and
/// retryable for e.g. a recovering ingest pipeline); skipping ahead is
/// an [`DemonError::InvalidParameter`]. Shared by [`UwEngine`] and
/// [`crate::Gemm`], so both reject the block *before* touching any
/// maintainer or store state.
pub(crate) fn check_sequential(id: BlockId, latest: Option<BlockId>) -> Result<()> {
    let expected = latest.map_or(BlockId::FIRST, BlockId::next);
    if id == expected {
        return Ok(());
    }
    match latest {
        Some(latest) if id <= latest => Err(DemonError::DuplicateBlock {
            id: id.value(),
            latest: latest.value(),
        }),
        _ => Err(DemonError::InvalidParameter(format!(
            "expected block {expected}, got {id}"
        ))),
    }
}

/// The unified engine, dispatching on the data span option.
pub enum DemonEngine<M: ModelMaintainer + Sync> {
    /// Unrestricted window.
    Uw(UwEngine<M>),
    /// Most recent window (GEMM).
    Mrw(Gemm<M>),
}

impl<M: ModelMaintainer + Sync> DemonEngine<M> {
    /// Builds the engine for the chosen data span option.
    pub fn new(maintainer: M, span: DataSpan) -> Result<Self> {
        match span {
            DataSpan::Unrestricted(bss) => Ok(DemonEngine::Uw(UwEngine::new(maintainer, bss))),
            DataSpan::MostRecent { w, selector } => {
                Ok(DemonEngine::Mrw(Gemm::new(maintainer, w, selector)?))
            }
        }
    }

    /// Processes the next arriving block.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<EngineStats> {
        match self {
            DemonEngine::Uw(e) => e.add_block(block),
            DemonEngine::Mrw(g) => Ok(g.add_block(block)?.into()),
        }
    }

    /// The currently required model (`None` only for an MRW engine that
    /// has seen no blocks).
    pub fn current_model(&self) -> Option<&M::Model> {
        match self {
            DemonEngine::Uw(e) => Some(e.model()),
            DemonEngine::Mrw(g) => g.current_model(),
        }
    }

    /// The underlying maintainer.
    pub fn maintainer(&self) -> &M {
        match self {
            DemonEngine::Uw(e) => e.maintainer(),
            DemonEngine::Mrw(g) => g.maintainer(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maintainer::ItemsetMaintainer;
    use demon_itemsets::CounterKind;
    use demon_types::{Item, ItemSet, MinSupport, Tid, Transaction, TxBlock};

    fn marker_block(id: u64, n_tx: usize) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            (0..n_tx)
                .map(|i| Transaction::new(Tid(id * 1000 + i as u64), vec![Item(id as u32)]))
                .collect(),
        )
    }

    fn maintainer() -> ItemsetMaintainer {
        ItemsetMaintainer::new(16, MinSupport::new(0.05).unwrap(), CounterKind::Ecut)
    }

    #[test]
    fn uw_engine_accumulates_selected_blocks() {
        let bss = WiBss::Periodic {
            pattern: vec![true, false],
        };
        let mut e = UwEngine::new(maintainer(), bss);
        for id in 1..=4u64 {
            e.add_block(marker_block(id, 4)).unwrap();
        }
        // Blocks 1 and 3 selected.
        assert!(e.model().is_frequent(&ItemSet::from_ids(&[1])));
        assert!(!e.model().is_frequent(&ItemSet::from_ids(&[2])));
        assert!(e.model().is_frequent(&ItemSet::from_ids(&[3])));
        assert!(!e.model().is_frequent(&ItemSet::from_ids(&[4])));
    }

    #[test]
    fn uw_engine_rejects_gaps() {
        let mut e = UwEngine::new(maintainer(), WiBss::All);
        e.add_block(marker_block(1, 2)).unwrap();
        assert!(e.add_block(marker_block(3, 2)).is_err());
    }

    #[test]
    fn unified_engine_dispatches_both_spans() {
        let mut uw =
            DemonEngine::new(maintainer(), DataSpan::Unrestricted(WiBss::All)).unwrap();
        let mut mrw = DemonEngine::new(
            maintainer(),
            DataSpan::MostRecent {
                w: 2,
                selector: BlockSelector::all(),
            },
        )
        .unwrap();
        for id in 1..=4u64 {
            let su = uw.add_block(marker_block(id, 4)).unwrap();
            let sm = mrw.add_block(marker_block(id, 4)).unwrap();
            assert!(su.absorbed && sm.absorbed);
        }
        // UW keeps everything; MRW only the last two blocks.
        let uw_model = uw.current_model().unwrap();
        let mrw_model = mrw.current_model().unwrap();
        assert!(uw_model.is_frequent(&ItemSet::from_ids(&[1])));
        assert!(!mrw_model.is_frequent(&ItemSet::from_ids(&[1])));
        assert!(mrw_model.is_frequent(&ItemSet::from_ids(&[3])));
        assert!(mrw_model.is_frequent(&ItemSet::from_ids(&[4])));
    }
}
