//! **`AuM`** — direct add/delete model maintenance over the most recent
//! window (paper §3.2.4), the ablation baseline for GEMM.
//!
//! Instead of keeping `w − 1` extra models, `AuM` maintains the single
//! current-window model and reflects a window slide by *deleting* the
//! blocks that left the selection and *adding* those that entered it.
//! For BSS = ⟨1…1⟩ that is one deletion plus one addition per slide
//! (≈ 2× GEMM's response time); for an alternating window-relative BSS
//! ⟨1010…⟩ the selected set is replaced wholesale every slide and `AuM`
//! degenerates toward re-mining from scratch — exactly the trade-off the
//! paper describes. Only model classes maintainable under deletion
//! qualify (frequent itemsets do; BIRCH trees do not).

use crate::bss::BlockSelector;
use crate::maintainer::{ItemsetMaintainer, ModelMaintainer};
use demon_itemsets::FrequentItemsets;
use demon_types::{BlockId, Result, TxBlock};
use std::time::{Duration, Instant};

/// Timing and work accounting of one `AuM` step.
#[derive(Clone, Copy, Debug, Default)]
pub struct AumStats {
    /// Wall-clock time to bring the model up to date (the `AuM` response
    /// time — there is no off-line component).
    pub response_time: Duration,
    /// Blocks newly absorbed into the model this step.
    pub blocks_added: usize,
    /// Blocks deleted from the model this step.
    pub blocks_removed: usize,
}

/// The add/delete most-recent-window maintainer for frequent itemsets.
pub struct AumWindow {
    maintainer: ItemsetMaintainer,
    selector: BlockSelector,
    w: usize,
    model: FrequentItemsets,
    latest: Option<BlockId>,
}

impl AumWindow {
    /// A new maintainer with window size `w` and the given BSS.
    pub fn new(
        maintainer: ItemsetMaintainer,
        w: usize,
        selector: BlockSelector,
    ) -> Result<Self> {
        if w == 0 {
            return Err(demon_types::DemonError::InvalidParameter(
                "window size must be positive".into(),
            ));
        }
        if let BlockSelector::WindowRelative(wr) = &selector {
            if wr.window_size() != w {
                return Err(demon_types::DemonError::BssMismatch {
                    got: wr.window_size(),
                    expected: w,
                });
            }
        }
        let model = maintainer.fresh();
        Ok(AumWindow {
            maintainer,
            selector,
            w,
            model,
            latest: None,
        })
    }

    /// The single maintained model.
    pub fn model(&self) -> &FrequentItemsets {
        &self.model
    }

    /// The underlying maintainer (and its store).
    pub fn maintainer(&self) -> &ItemsetMaintainer {
        &self.maintainer
    }

    /// Start of the current window.
    fn window_start(&self, latest: BlockId) -> BlockId {
        BlockId(latest.value().saturating_sub(self.w as u64 - 1).max(1))
    }

    /// Processes the next arriving block. Replays and gaps are typed
    /// errors, as in [`crate::engine::UwEngine::add_block`].
    pub fn add_block(&mut self, block: TxBlock) -> Result<AumStats> {
        let id = block.id();
        crate::engine::check_sequential(id, self.latest)?;
        self.maintainer.register_block(block);

        // Selected sets before and after the slide.
        let old_selected: Vec<BlockId> = match self.latest {
            Some(prev) => {
                self.selector
                    .selected_in_window(self.window_start(prev), self.w, prev)
            }
            None => Vec::new(),
        };
        self.latest = Some(id);
        let new_start = self.window_start(id);
        let new_selected = self.selector.selected_in_window(new_start, self.w, id);

        let to_remove: Vec<BlockId> = old_selected
            .iter()
            .filter(|b| !new_selected.contains(b))
            .copied()
            .collect();
        let to_add: Vec<BlockId> = new_selected
            .iter()
            .filter(|b| !old_selected.contains(b))
            .copied()
            .collect();

        let t0 = Instant::now();
        for b in &to_remove {
            self.model
                .remove_block(self.maintainer.store(), *b, self.maintainer.counter())?;
        }
        for b in &to_add {
            self.model
                .absorb_block(self.maintainer.store(), *b, self.maintainer.counter())?;
        }
        let response_time = t0.elapsed();

        // Retire data strictly before the window.
        if new_start.value() > 1 {
            self.maintainer.retire_block(BlockId(new_start.value() - 1));
        }
        Ok(AumStats {
            response_time,
            blocks_added: to_add.len(),
            blocks_removed: to_remove.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bss::WrBss;
    use demon_itemsets::CounterKind;
    use demon_types::{Item, MinSupport, Tid, Transaction};

    fn marker_block(id: u64, n_tx: usize) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            (0..n_tx)
                .map(|i| Transaction::new(Tid(id * 1000 + i as u64), vec![Item(id as u32)]))
                .collect(),
        )
    }

    fn covered(model: &FrequentItemsets) -> Vec<u64> {
        let mut v: Vec<u64> = model
            .frequent()
            .keys()
            .filter(|s| s.len() == 1)
            .map(|s| s.items()[0].id() as u64)
            .collect();
        v.sort_unstable();
        v
    }

    fn maintainer() -> ItemsetMaintainer {
        ItemsetMaintainer::new(16, MinSupport::new(0.05).unwrap(), CounterKind::Ecut)
    }

    #[test]
    fn all_ones_window_adds_and_removes_one_block() {
        let mut aum = AumWindow::new(maintainer(), 3, BlockSelector::all()).unwrap();
        for id in 1..=3u64 {
            let s = aum.add_block(marker_block(id, 4)).unwrap();
            assert_eq!(s.blocks_added, 1);
            assert_eq!(s.blocks_removed, 0);
        }
        assert_eq!(covered(aum.model()), vec![1, 2, 3]);
        let s = aum.add_block(marker_block(4, 4)).unwrap();
        assert_eq!(s.blocks_added, 1);
        assert_eq!(s.blocks_removed, 1);
        assert_eq!(covered(aum.model()), vec![2, 3, 4]);
    }

    #[test]
    fn alternating_bss_replaces_whole_selection() {
        // Paper §3.2.4: with ⟨1010…⟩ the new selected set is disjoint from
        // the old one — AuM must delete and re-add everything.
        let wr = BlockSelector::WindowRelative(WrBss::new(vec![
            true, false, true, false,
        ]));
        let mut aum = AumWindow::new(maintainer(), 4, wr).unwrap();
        for id in 1..=4u64 {
            aum.add_block(marker_block(id, 4)).unwrap();
        }
        // Window D[1,4], positions 1,3 → blocks 1,3.
        assert_eq!(covered(aum.model()), vec![1, 3]);
        let s = aum.add_block(marker_block(5, 4)).unwrap();
        // Window D[2,5], positions 1,3 → blocks 2,4: disjoint replacement.
        assert_eq!(covered(aum.model()), vec![2, 4]);
        assert_eq!(s.blocks_removed, 2);
        assert_eq!(s.blocks_added, 2);
    }

    #[test]
    fn matches_gemm_result_for_same_selection() {
        use crate::gemm::Gemm;
        let wr = || BlockSelector::WindowRelative(WrBss::new(vec![true, true, false]));
        let mut aum = AumWindow::new(maintainer(), 3, wr()).unwrap();
        let mut gemm = Gemm::new(maintainer(), 3, wr()).unwrap();
        for id in 1..=6u64 {
            aum.add_block(marker_block(id, 4)).unwrap();
            gemm.add_block(marker_block(id, 4)).unwrap();
        }
        assert_eq!(
            aum.model().frequent(),
            gemm.current_model().unwrap().frequent()
        );
    }

    #[test]
    fn rejects_gap_in_block_ids() {
        let mut aum = AumWindow::new(maintainer(), 2, BlockSelector::all()).unwrap();
        aum.add_block(marker_block(1, 2)).unwrap();
        assert!(aum.add_block(marker_block(5, 2)).is_err());
    }
}
