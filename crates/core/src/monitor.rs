//! The full DEMONic view (paper Figure 11): **model maintenance** and
//! **pattern detection**, each under either data span option, over one
//! evolving block stream.
//!
//! [`DemonMonitor`] feeds every arriving block to a maintenance engine
//! (UW or GEMM) *and* to a compact-sequence miner (unrestricted or
//! windowed), so an application gets the up-to-date model and the
//! evolving block-similarity patterns from a single `add_block` call —
//! the paper's two problem dimensions composed.

use crate::engine::{DataSpan, DemonEngine, EngineStats};
use crate::maintainer::{DecrementalMaintainer, ModelMaintainer};
use demon_focus::compact::{CompactSequenceMiner, CompactStats};
use demon_focus::similarity::SimilarityOracle;
use demon_focus::windowed::WindowedCompactMiner;
use demon_types::{Block, BlockId, Result};

/// Combined per-block statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MonitorStats {
    /// Model-maintenance timing.
    pub maintenance: EngineStats,
    /// Pattern-detection timing.
    pub patterns: CompactStats,
}

enum PatternMiner<O, R>
where
    O: SimilarityOracle<R>,
{
    Unrestricted(CompactSequenceMiner<O, R>),
    MostRecent(WindowedCompactMiner<O, R>),
}

/// The unified monitor over one block stream.
pub struct DemonMonitor<M, O>
where
    M: ModelMaintainer + Sync,
    M::Record: Clone,
    O: SimilarityOracle<M::Record>,
{
    engine: DemonEngine<M>,
    miner: PatternMiner<O, M::Record>,
}

impl<M, O> DemonMonitor<M, O>
where
    M: ModelMaintainer + Sync,
    M::Record: Clone,
    O: SimilarityOracle<M::Record>,
{
    /// Builds the monitor: `span` picks the maintenance quadrant,
    /// `pattern_window` picks the pattern-detection quadrant (`None` =
    /// unrestricted, `Some(w)` = most recent `w` blocks).
    pub fn new(
        maintainer: M,
        span: DataSpan,
        oracle: O,
        pattern_window: Option<usize>,
    ) -> Result<Self> {
        let engine = DemonEngine::new(maintainer, span)?;
        let miner = match pattern_window {
            None => PatternMiner::Unrestricted(CompactSequenceMiner::new(oracle)),
            Some(w) => PatternMiner::MostRecent(WindowedCompactMiner::new(oracle, w)),
        };
        Ok(DemonMonitor { engine, miner })
    }

    /// [`DemonMonitor::new`] with a **deletion-based** most-recent-window
    /// engine (absorb the arriving block, shed the departing one) instead
    /// of GEMM's per-window future models. Only deletion-capable
    /// maintainers qualify.
    pub fn new_decremental(
        maintainer: M,
        w: usize,
        oracle: O,
        pattern_window: Option<usize>,
    ) -> Result<Self>
    where
        M: DecrementalMaintainer,
    {
        let engine = DemonEngine::new_decremental(maintainer, w)?;
        let miner = match pattern_window {
            None => PatternMiner::Unrestricted(CompactSequenceMiner::new(oracle)),
            Some(w) => PatternMiner::MostRecent(WindowedCompactMiner::new(oracle, w)),
        };
        Ok(DemonMonitor { engine, miner })
    }

    /// Processes the next arriving block through both dimensions.
    ///
    /// The engine validates the id *before* any state is touched, so a
    /// replayed block (an id the monitor already consumed — e.g. an
    /// ingest pipeline resending after a crash) returns a typed
    /// [`demon_types::DemonError::DuplicateBlock`] and a gap returns an
    /// [`demon_types::DemonError::InvalidParameter`]; in both cases
    /// neither the model store nor the pattern miner sees the block, and
    /// the monitor keeps accepting the correct next id.
    pub fn add_block(&mut self, block: Block<M::Record>) -> Result<MonitorStats> {
        let maintenance = self.engine.add_block(block.clone())?;
        let patterns = match &mut self.miner {
            PatternMiner::Unrestricted(m) => m.add_block(block),
            PatternMiner::MostRecent(m) => m.add_block(block),
        };
        Ok(MonitorStats {
            maintenance,
            patterns,
        })
    }

    /// The currently required model.
    pub fn model(&self) -> Option<&M::Model> {
        self.engine.current_model()
    }

    /// The maintenance engine.
    pub fn engine(&self) -> &DemonEngine<M> {
        &self.engine
    }

    /// The current (maximal for UW, live for MRW) block sequences.
    pub fn sequences(&self) -> Vec<Vec<BlockId>> {
        match &self.miner {
            PatternMiner::Unrestricted(m) => m.maximal_sequences(),
            PatternMiner::MostRecent(m) => m.sequences(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bss::{BlockSelector, WiBss};
    use crate::maintainer::ItemsetMaintainer;
    use demon_focus::similarity::{ItemsetSimilarity, SimilarityConfig};
    use demon_itemsets::CounterKind;
    use demon_types::{Item, ItemSet, MinSupport, Tid, Transaction, TxBlock};

    /// Blocks alternate between two item populations.
    fn block(id: u64, family: u32) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            (0..30)
                .map(|i| {
                    Transaction::new(
                        Tid(id * 1000 + i),
                        vec![Item(family * 2), Item(family * 2 + 1)],
                    )
                })
                .collect(),
        )
    }

    fn oracle() -> ItemsetSimilarity {
        ItemsetSimilarity::new(
            8,
            MinSupport::new(0.1).unwrap(),
            SimilarityConfig::Threshold { alpha: 0.2 },
        )
    }

    #[test]
    fn monitor_maintains_model_and_patterns_together() {
        let maintainer = ItemsetMaintainer::new(8, MinSupport::new(0.1).unwrap(), CounterKind::Ecut);
        let mut monitor = DemonMonitor::new(
            maintainer,
            DataSpan::MostRecent {
                w: 3,
                selector: BlockSelector::all(),
            },
            oracle(),
            None,
        )
        .unwrap();
        for id in 1..=6u64 {
            let stats = monitor.add_block(block(id, (id % 2) as u32)).unwrap();
            assert!(stats.maintenance.absorbed);
        }
        // Model: last 3 blocks (families 1,0,1) — both families frequent.
        let model = monitor.model().unwrap();
        assert!(model.is_frequent(&ItemSet::from_ids(&[0, 1])));
        assert!(model.is_frequent(&ItemSet::from_ids(&[2, 3])));
        // Patterns: the two alternating families form the two maximal runs.
        let seqs = monitor.sequences();
        let evens: Vec<BlockId> = [2u64, 4, 6].map(BlockId).to_vec();
        let odds: Vec<BlockId> = [1u64, 3, 5].map(BlockId).to_vec();
        assert!(seqs.contains(&evens), "{seqs:?}");
        assert!(seqs.contains(&odds), "{seqs:?}");
    }

    /// Regression: replaying an already-consumed block id must surface as
    /// a typed `DuplicateBlock` error — not a store panic — and must
    /// leave both the model and the pattern state exactly as they were.
    #[test]
    fn replayed_block_is_a_typed_error_and_leaves_state_intact() {
        use demon_types::DemonError;
        let maintainer = ItemsetMaintainer::new(8, MinSupport::new(0.1).unwrap(), CounterKind::Ecut);
        let mut monitor =
            DemonMonitor::new(maintainer, DataSpan::Unrestricted(WiBss::All), oracle(), None)
                .unwrap();
        monitor.add_block(block(1, 0)).unwrap();
        monitor.add_block(block(2, 1)).unwrap();
        let model_before = monitor.model().unwrap().frequent_sorted();
        let seqs_before = monitor.sequences();

        // Replaying the latest block and an older block both fail typed.
        for id in [2u64, 1] {
            let err = monitor.add_block(block(id, 0)).unwrap_err();
            assert!(
                matches!(err, DemonError::DuplicateBlock { id: got, latest: 2 } if got == id),
                "replay of D{id}: unexpected {err}"
            );
        }
        // A gap is still rejected, but as an invalid parameter.
        let err = monitor.add_block(block(9, 0)).unwrap_err();
        assert!(matches!(err, DemonError::InvalidParameter(_)), "{err}");

        // Nothing leaked into the model or the miner…
        assert_eq!(monitor.model().unwrap().frequent_sorted(), model_before);
        assert_eq!(monitor.sequences(), seqs_before);
        // …and the correct next block is still accepted.
        monitor.add_block(block(3, 0)).unwrap();
        assert_eq!(monitor.model().unwrap().n_transactions(), 3 * 30);
    }

    #[test]
    fn monitor_with_windowed_patterns_retires_old_sequences() {
        let maintainer = ItemsetMaintainer::new(8, MinSupport::new(0.1).unwrap(), CounterKind::Ecut);
        let mut monitor = DemonMonitor::new(
            maintainer,
            DataSpan::Unrestricted(WiBss::All),
            oracle(),
            Some(3),
        )
        .unwrap();
        for id in 1..=7u64 {
            monitor.add_block(block(id, (id % 2) as u32)).unwrap();
        }
        // UW model covers everything…
        assert_eq!(
            monitor.model().unwrap().n_transactions(),
            7 * 30
        );
        // …while the pattern window only holds the last 3 blocks.
        for seq in monitor.sequences() {
            for b in seq {
                assert!(b.value() >= 5, "retired block {b} still in a sequence");
            }
        }
    }
}
