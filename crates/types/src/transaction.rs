//! Transactions and transaction identifiers.

use crate::Item;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transaction identifier.
///
/// TIDs are unique positive integers that **increase in arrival order**
/// (paper §2.1/§3.1.1). This monotonicity is what makes per-block TID-list
/// materialization trivial: scanning blocks in order appends to each item's
/// TID-list in sorted order with no further bookkeeping.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Tid(pub u64);

impl Tid {
    /// Returns the raw identifier.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Returns the successor TID.
    #[inline]
    pub fn next(self) -> Tid {
        Tid(self.0 + 1)
    }
}

impl From<u64> for Tid {
    #[inline]
    fn from(v: u64) -> Self {
        Tid(v)
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A transaction: a TID plus a sorted, duplicate-free set of items.
///
/// The item slice is kept sorted so that containment tests
/// ([`Transaction::contains_all`]) are linear merges and so that candidate
/// counting against a prefix tree can walk the transaction front-to-back.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    tid: Tid,
    items: Box<[Item]>,
}

impl Transaction {
    /// Builds a transaction, sorting and de-duplicating `items`.
    pub fn new(tid: Tid, mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        Transaction {
            tid,
            items: items.into_boxed_slice(),
        }
    }

    /// Builds a transaction from items already sorted and duplicate-free.
    ///
    /// Falls back to sorting when the invariant does not hold, so the
    /// constructor is always safe to call; the fast path is a single scan.
    pub fn from_sorted(tid: Tid, items: Vec<Item>) -> Self {
        if items.windows(2).all(|w| w[0] < w[1]) {
            Transaction {
                tid,
                items: items.into_boxed_slice(),
            }
        } else {
            Transaction::new(tid, items)
        }
    }

    /// The transaction identifier.
    #[inline]
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The items, sorted ascending and duplicate-free.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Number of items in the transaction.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the transaction is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the transaction contains a single item (binary search).
    #[inline]
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Whether the transaction contains **every** item of `needle`.
    ///
    /// `needle` must be sorted ascending (as [`crate::ItemSet`] guarantees);
    /// the check is a linear merge over both slices.
    pub fn contains_all(&self, needle: &[Item]) -> bool {
        if needle.len() > self.items.len() {
            return false;
        }
        let mut hay = self.items.iter();
        'outer: for want in needle {
            for have in hay.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{:?}", self.tid, self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().copied().map(Item).collect()
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = Transaction::new(Tid(1), items(&[5, 2, 5, 9, 2]));
        assert_eq!(t.items(), &items(&[2, 5, 9])[..]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn from_sorted_fast_path_keeps_order() {
        let t = Transaction::from_sorted(Tid(1), items(&[1, 4, 7]));
        assert_eq!(t.items(), &items(&[1, 4, 7])[..]);
    }

    #[test]
    fn from_sorted_repairs_unsorted_input() {
        let t = Transaction::from_sorted(Tid(1), items(&[4, 1, 7, 1]));
        assert_eq!(t.items(), &items(&[1, 4, 7])[..]);
    }

    #[test]
    fn contains_single_item() {
        let t = Transaction::new(Tid(0), items(&[1, 3, 5]));
        assert!(t.contains(Item(3)));
        assert!(!t.contains(Item(4)));
    }

    #[test]
    fn contains_all_subset_and_non_subset() {
        let t = Transaction::new(Tid(0), items(&[1, 3, 5, 8, 13]));
        assert!(t.contains_all(&items(&[1, 8])));
        assert!(t.contains_all(&items(&[3, 5, 13])));
        assert!(t.contains_all(&[]));
        assert!(!t.contains_all(&items(&[1, 2])));
        assert!(!t.contains_all(&items(&[14])));
        assert!(!t.contains_all(&items(&[1, 3, 5, 8, 13, 21])));
    }

    #[test]
    fn empty_transaction() {
        let t = Transaction::new(Tid(7), vec![]);
        assert!(t.is_empty());
        assert!(t.contains_all(&[]));
        assert!(!t.contains(Item(0)));
    }

    #[test]
    fn tid_monotonic_helpers() {
        assert_eq!(Tid(3).next(), Tid(4));
        assert!(Tid(3) < Tid(4));
        assert_eq!(Tid::from(11u64).value(), 11);
    }
}
