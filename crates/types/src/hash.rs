//! A fast, non-cryptographic hasher for internal maps.
//!
//! The mining code keys very large hash maps by [`crate::ItemSet`]
//! (`L ∪ NB⁻` holds hundreds of thousands of entries at paper-scale
//! parameters), and the default SipHash spends most of its time defending
//! against HashDoS — irrelevant for maps keyed by our own mining output.
//! This is the Fx multiply-rotate scheme used by rustc, implemented here
//! because the workspace's dependency budget is fixed; the algorithm is
//! public domain folklore.
//!
//! Use [`FastMap`]/[`FastSet`] for internal state; keep `std` maps for
//! anything keyed by untrusted external input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"demon"), hash_of(&"demon"));
        let a = crate::ItemSet::from_ids(&[1, 5, 9]);
        let b = crate::ItemSet::from_ids(&[9, 5, 1]);
        assert_eq!(hash_of(&a), hash_of(&b), "sets normalize before hashing");
    }

    #[test]
    fn different_values_usually_differ() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i));
        }
        assert!(seen.len() > 9_990, "too many collisions: {}", seen.len());
    }

    #[test]
    fn byte_stream_tail_is_hashed() {
        // Values differing only in their final (non-8-aligned) bytes must
        // not collide systematically.
        assert_ne!(hash_of(&[1u8; 9][..]), hash_of(&[1u8, 1, 1, 1, 1, 1, 1, 1, 2][..]));
    }

    #[test]
    fn fast_map_works_as_a_map() {
        let mut m: FastMap<crate::ItemSet, u64> = FastMap::default();
        m.insert(crate::ItemSet::from_ids(&[1, 2]), 7);
        assert_eq!(m.get(&crate::ItemSet::from_ids(&[2, 1])), Some(&7));
        let mut s: FastSet<u32> = FastSet::default();
        s.insert(3);
        assert!(s.contains(&3));
    }
}
