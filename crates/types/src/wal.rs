//! Write-ahead log: the durability substrate behind `demon-serve`'s
//! ack-means-applied contract.
//!
//! A WAL file (`wal-<gen>.log`) is a back-to-back sequence of framed
//! records, each one a standard [`crate::durable`] frame of class
//! [`FrameClass::WAL`] whose payload opens with an 8-byte little-endian
//! sequence number and a one-byte model-class tag (a
//! [`crate::ModelClass`] tag value), followed by an opaque body (for
//! `demon-serve`, the encoded `IngestBlock` request):
//!
//! ```text
//! ┌──────────────── frame (durable.rs layout, class "WL") ────────────────┐
//! │ magic ─ version ─ "WL" ─ payload len ─ CRC32 │ seq u64 │ class │ body │
//! └───────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The model-class byte lets recovery and `demon-cli verify` *reject*
//! cross-class replay (an itemset WAL fed to a `--model clusters`
//! daemon) instead of misinterpreting the body bytes.
//!
//! The reader is **salvage-by-construction**: it walks records from the
//! start and stops at the first defect — truncated header, bad magic,
//! impossible length, checksum mismatch, short payload, out-of-order
//! sequence number, mid-file model-class change. Everything before the
//! defect is a *clean prefix* of
//! intact records; everything at and after it is the *torn tail*, which
//! the caller drops (a record missing its fsync was by definition never
//! acked). [`WalWriter::open_after_recovery`] truncates the file back
//! to the clean prefix before appending so a torn tail cannot shadow
//! later records.
//!
//! Multi-file generations: a WAL directory holds `wal-<gen>.log` files,
//! `snapshot-<gen>/` stores, and a framed `CURRENT` pointer naming the
//! newest generation whose snapshot is complete. `CURRENT` is written
//! with [`atomic_write`], so compaction can crash at any instant and
//! recovery still finds either the old generation chain or the new one —
//! never a half-written pointer.

use crate::durable::{
    atomic_write, decode_frame_header, encode_frame, read_framed, verify_frame_payload,
    FrameClass, FRAME_HEADER_LEN,
};
use crate::error::DemonError;
use crate::obs::{self, Counter};
use crate::Result;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Length of the sequence-number header opening every record payload.
pub const WAL_SEQ_LEN: usize = 8;

/// Length of the full record header (sequence number + model-class tag).
pub const WAL_RECORD_HEADER_LEN: usize = WAL_SEQ_LEN + 1;

/// Name of the generation pointer file inside a WAL directory.
pub const CURRENT_FILE: &str = "CURRENT";

/// The WAL file for generation `gen`: `<dir>/wal-<gen>.log`.
pub fn wal_file_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen}.log"))
}

/// The snapshot store for generation `gen`: `<dir>/snapshot-<gen>`.
pub fn snapshot_dir_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("snapshot-{gen}"))
}

/// Parses a generation number out of a `wal-<gen>.log` file name.
pub fn parse_wal_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Parses a generation number out of a `snapshot-<gen>` directory name.
pub fn parse_snapshot_dir_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.parse().ok()
}

/// Every WAL generation present in `dir`, ascending. Non-WAL entries
/// are ignored; a missing directory is an empty list.
pub fn list_wal_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut gens = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(gens),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        if let Some(gen) = entry.file_name().to_str().and_then(parse_wal_file_name) {
            gens.push(gen);
        }
    }
    gens.sort_unstable();
    Ok(gens)
}

/// Reads the `CURRENT` generation pointer. A missing pointer means
/// generation 0 (fresh directory, no snapshot yet); a damaged pointer is
/// a typed corruption error — the pointer is written atomically, so
/// damage means real bit rot, and recovery must not guess.
pub fn read_current(dir: &Path) -> Result<u64> {
    let path = dir.join(CURRENT_FILE);
    if !path.exists() {
        return Ok(0);
    }
    let (payload, _) = read_framed(&path, FrameClass::WAL_CURRENT)?;
    let bytes: [u8; 8] = payload.as_slice().try_into().map_err(|_| DemonError::Corrupt {
        file: path.display().to_string(),
        detail: format!("CURRENT payload is {} bytes, expected 8", payload.len()),
    })?;
    Ok(u64::from_le_bytes(bytes))
}

/// Atomically points `CURRENT` at `gen` (framed + checksummed, written
/// via tmp+fsync+rename). After this returns, a crash recovers from
/// generation `gen`.
pub fn write_current(dir: &Path, gen: u64) -> Result<()> {
    let (bytes, _) = encode_frame(FrameClass::WAL_CURRENT, &gen.to_le_bytes());
    atomic_write(&dir.join(CURRENT_FILE), &bytes)?;
    Ok(())
}

/// Encodes one WAL record: a [`FrameClass::WAL`] frame whose payload is
/// `seq` (u64 LE), then the model-class tag byte `class`, then `body`.
pub fn encode_wal_record(seq: u64, class: u8, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(WAL_RECORD_HEADER_LEN + body.len());
    payload.extend_from_slice(&seq.to_le_bytes());
    payload.push(class);
    payload.extend_from_slice(body);
    let (bytes, _) = encode_frame(FrameClass::WAL, &payload);
    bytes
}

/// One intact WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's sequence number (monotonically increasing across the
    /// whole WAL chain, +1 per record within a file).
    pub seq: u64,
    /// The model-class tag ([`crate::ModelClass::tag`]) the writing
    /// daemon stamped on the record. Recovery refuses records whose
    /// class differs from the daemon's own.
    pub class: u8,
    /// The opaque record body (for `demon-serve`, an encoded
    /// `IngestBlock` request payload).
    pub body: Vec<u8>,
}

/// The result of reading a WAL file: the clean prefix of records, how
/// far into the file that prefix reaches, and what (if anything) tore
/// the tail.
#[derive(Clone, Debug, Default)]
pub struct WalReadReport {
    /// Intact records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the clean prefix; the writer truncates the file to
    /// this length before appending again.
    pub valid_len: u64,
    /// Why reading stopped before end-of-file, if it did. `None` means
    /// the whole file decoded cleanly.
    pub torn: Option<String>,
}

impl WalReadReport {
    /// The sequence number the next appended record must carry (one past
    /// the last intact record), if any record survived.
    pub fn next_seq(&self) -> Option<u64> {
        self.records.last().map(|r| r.seq + 1)
    }
}

/// Decodes the clean prefix of WAL records out of `bytes`. Never fails:
/// any defect ends the prefix and is reported in
/// [`WalReadReport::torn`]. `source` names the file in tear messages.
pub fn decode_wal_records(bytes: &[u8], source: &str) -> WalReadReport {
    let mut report = WalReadReport::default();
    let mut off = 0usize;
    while off < bytes.len() {
        let remaining = &bytes[off..];
        let header_end = remaining.len().min(FRAME_HEADER_LEN);
        let header = match decode_frame_header(FrameClass::WAL, &remaining[..header_end], source) {
            Ok(h) => h,
            Err(e) => {
                report.torn = Some(format!("record at offset {off}: {e}"));
                break;
            }
        };
        let body_avail = (remaining.len() - FRAME_HEADER_LEN) as u64;
        if header.payload_len > body_avail {
            report.torn = Some(format!(
                "record at offset {off}: truncated payload ({} of {} bytes)",
                body_avail, header.payload_len
            ));
            break;
        }
        let payload_len = header.payload_len as usize;
        let payload = &remaining[FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len];
        if let Err(e) = verify_frame_payload(&header, payload, source) {
            report.torn = Some(format!("record at offset {off}: {e}"));
            break;
        }
        if payload.len() < WAL_RECORD_HEADER_LEN {
            report.torn = Some(format!(
                "record at offset {off}: payload too short for a record header \
                 ({} of {WAL_RECORD_HEADER_LEN} bytes)",
                payload.len()
            ));
            break;
        }
        let seq = u64::from_le_bytes(
            payload[..WAL_SEQ_LEN]
                .try_into()
                .unwrap_or([0; WAL_SEQ_LEN]),
        );
        let class = payload[WAL_SEQ_LEN];
        if let Some(last) = report.records.last() {
            if seq != last.seq + 1 {
                report.torn = Some(format!(
                    "record at offset {off}: sequence jumped from {} to {seq}",
                    last.seq
                ));
                break;
            }
            if class != last.class {
                report.torn = Some(format!(
                    "record at offset {off}: model class changed from {} to {}",
                    crate::ModelClass::describe_tag(last.class),
                    crate::ModelClass::describe_tag(class)
                ));
                break;
            }
        }
        report.records.push(WalRecord {
            seq,
            class,
            body: payload[WAL_RECORD_HEADER_LEN..].to_vec(),
        });
        off += FRAME_HEADER_LEN + payload_len;
        report.valid_len = off as u64;
    }
    report
}

/// Reads a WAL file and decodes its clean prefix. A missing file is an
/// [`DemonError::Io`] error (callers decide whether that is fatal); a
/// torn tail is *not* an error — it is reported in the result and
/// counted under `wal.torn_tails`.
pub fn read_wal(path: &Path) -> Result<WalReadReport> {
    let bytes = std::fs::read(path)?;
    let report = decode_wal_records(&bytes, &path.display().to_string());
    if report.torn.is_some() {
        obs::incr(Counter::WalTornTails);
    }
    Ok(report)
}

/// An append-only WAL file handle. Every [`WalWriter::append`] writes
/// one framed record and fsyncs before returning — when it returns
/// `Ok`, the record survives `kill -9`.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    bytes: u64,
    next_seq: u64,
    class: u8,
}

impl WalWriter {
    /// Creates a fresh (empty) WAL file whose first record will carry
    /// sequence number `next_seq`; every record is stamped with the
    /// model-class tag `class`. The file itself and its directory entry
    /// are fsynced so the empty log survives a crash.
    pub fn create(path: &Path, next_seq: u64, class: u8) -> Result<WalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        file.set_len(0)?;
        file.sync_all()?;
        sync_parent(path);
        obs::incr(Counter::WalFsyncs);
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            bytes: 0,
            next_seq,
            class,
        })
    }

    /// Reopens an existing WAL file after recovery: the torn tail (if
    /// any) is truncated away at `valid_len`, and appending resumes with
    /// sequence number `next_seq` and model-class tag `class`.
    pub fn open_after_recovery(
        path: &Path,
        valid_len: u64,
        next_seq: u64,
        class: u8,
    ) -> Result<WalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        obs::incr(Counter::WalFsyncs);
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            bytes: valid_len,
            next_seq,
            class,
        })
    }

    /// Appends one record and **fsyncs** it. Returns the record's
    /// sequence number. On `Ok`, the record is durable.
    pub fn append(&mut self, body: &[u8]) -> Result<u64> {
        let seq = self.append_unsynced(body)?;
        self.sync()?;
        Ok(seq)
    }

    /// Appends one record **without** fsyncing — the group-commit half
    /// of [`WalWriter::append`]. The record is NOT durable until a
    /// subsequent [`WalWriter::sync`] returns `Ok`; callers must not ack
    /// before that covering fsync.
    pub fn append_unsynced(&mut self, body: &[u8]) -> Result<u64> {
        let seq = self.next_seq;
        let record = encode_wal_record(seq, self.class, body);
        self.file.write_all(&record)?;
        self.bytes += record.len() as u64;
        self.next_seq = seq + 1;
        obs::incr(Counter::WalAppends);
        obs::add(Counter::WalBytes, record.len() as u64);
        Ok(seq)
    }

    /// fsyncs everything appended so far — one call covers every prior
    /// [`WalWriter::append_unsynced`].
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_all()?;
        obs::incr(Counter::WalFsyncs);
        Ok(())
    }

    /// Bytes currently in the file (clean prefix + everything appended
    /// through this handle). Drives the `--wal-max-bytes` rotation check.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The sequence number the next [`WalWriter::append`] will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The model-class tag stamped on every record this writer appends.
    pub fn class(&self) -> u8 {
        self.class
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Best-effort fsync of `path`'s parent directory so a freshly created
/// file name survives a crash (same caveats as in [`atomic_write`]).
fn sync_parent(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model-class tag stamped on test records.
    const CLASS: u8 = 1;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("demon-wal-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn bodies() -> Vec<Vec<u8>> {
        (0..5u8).map(|i| vec![i; 3 + i as usize * 7]).collect()
    }

    #[test]
    fn writer_and_reader_roundtrip() {
        let dir = tmp("roundtrip");
        let path = wal_file_path(&dir, 0);
        let mut w = WalWriter::create(&path, 10, CLASS).unwrap();
        for body in bodies() {
            w.append(&body).unwrap();
        }
        assert_eq!(w.next_seq(), 15);
        assert_eq!(w.class(), CLASS);
        let report = read_wal(&path).unwrap();
        assert!(report.torn.is_none(), "{:?}", report.torn);
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.valid_len, w.bytes());
        assert_eq!(report.next_seq(), Some(15));
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.seq, 10 + i as u64);
            assert_eq!(r.class, CLASS);
            assert_eq!(r.body, bodies()[i]);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_appends_are_durable_after_the_covering_sync() {
        let dir = tmp("group");
        let path = wal_file_path(&dir, 0);
        let mut w = WalWriter::create(&path, 0, CLASS).unwrap();
        for body in bodies() {
            w.append_unsynced(&body).unwrap();
        }
        w.sync().unwrap();
        let report = read_wal(&path).unwrap();
        assert!(report.torn.is_none(), "{:?}", report.torn);
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.next_seq(), Some(5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_file_class_change_tears_the_tail() {
        let mut file = Vec::new();
        file.extend_from_slice(&encode_wal_record(0, 1, b"a"));
        file.extend_from_slice(&encode_wal_record(1, 1, b"b"));
        file.extend_from_slice(&encode_wal_record(2, 2, b"c")); // foreign class
        let report = decode_wal_records(&file, "t");
        assert_eq!(report.records.len(), 2);
        let torn = report.torn.unwrap();
        assert!(torn.contains("model class changed"), "{torn}");
        assert!(torn.contains("itemsets") && torn.contains("clusters"), "{torn}");
    }

    #[test]
    fn every_truncation_yields_a_clean_prefix() {
        let mut file = Vec::new();
        let mut ends = vec![0usize]; // byte length after each whole record
        for (i, body) in bodies().iter().enumerate() {
            file.extend_from_slice(&encode_wal_record(i as u64, CLASS, body));
            ends.push(file.len());
        }
        for cut in 0..=file.len() {
            let report = decode_wal_records(&file[..cut], "t");
            // The prefix is exactly the whole records that fit in `cut`.
            let want = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
            assert_eq!(report.records.len(), want, "cut at {cut}");
            assert_eq!(report.valid_len as usize, ends[want], "cut at {cut}");
            assert_eq!(report.torn.is_some(), cut != ends[want], "cut at {cut}");
            for (i, r) in report.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64);
                assert_eq!(r.body, bodies()[i]);
            }
        }
    }

    #[test]
    fn every_bit_flip_yields_a_clean_prefix() {
        let mut file = Vec::new();
        let mut ends = vec![0usize];
        for (i, body) in bodies().iter().enumerate() {
            file.extend_from_slice(&encode_wal_record(i as u64, CLASS, body));
            ends.push(file.len());
        }
        for i in 0..file.len() {
            for mask in [0x01u8, 0xFF] {
                let mut bad = file.clone();
                bad[i] ^= mask;
                let report = decode_wal_records(&bad, "t");
                // Records wholly before the flipped byte must survive;
                // the record containing the flip must not.
                let intact = ends.iter().filter(|&&e| e > 0 && e <= i).count();
                assert!(
                    report.records.len() >= intact,
                    "flip at {i} lost intact records: {} < {intact}",
                    report.records.len()
                );
                assert!(
                    report.records.len() <= intact,
                    "flip at {i} kept a damaged record"
                );
                assert!(report.torn.is_some(), "flip at {i} went undetected");
                for (k, r) in report.records.iter().enumerate() {
                    assert_eq!(r.seq, k as u64);
                    assert_eq!(r.body, bodies()[k]);
                }
            }
        }
    }

    #[test]
    fn out_of_sequence_records_tear_the_tail() {
        let mut file = Vec::new();
        file.extend_from_slice(&encode_wal_record(3, CLASS, b"a"));
        file.extend_from_slice(&encode_wal_record(4, CLASS, b"b"));
        file.extend_from_slice(&encode_wal_record(9, CLASS, b"c")); // gap
        let report = decode_wal_records(&file, "t");
        assert_eq!(report.records.len(), 2);
        assert!(report.torn.unwrap().contains("sequence jumped"));
    }

    #[test]
    fn recovery_truncates_the_torn_tail_before_appending() {
        let dir = tmp("recover");
        let path = wal_file_path(&dir, 1);
        let mut w = WalWriter::create(&path, 0, CLASS).unwrap();
        w.append(b"first").unwrap();
        w.append(b"second").unwrap();
        drop(w);
        // Tear the tail: drop the last 3 bytes of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, &bytes).unwrap();

        let report = read_wal(&path).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(report.torn.is_some());
        let mut w =
            WalWriter::open_after_recovery(&path, report.valid_len, report.next_seq().unwrap(), CLASS)
                .unwrap();
        w.append(b"third").unwrap();
        let healed = read_wal(&path).unwrap();
        assert!(healed.torn.is_none(), "{:?}", healed.torn);
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.records[0].body, b"first");
        assert_eq!(healed.records[1].body, b"third");
        assert_eq!(healed.records[1].seq, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_pointer_roundtrips_and_detects_damage() {
        let dir = tmp("current");
        assert_eq!(read_current(&dir).unwrap(), 0, "missing pointer is gen 0");
        write_current(&dir, 7).unwrap();
        assert_eq!(read_current(&dir).unwrap(), 7);
        write_current(&dir, 8).unwrap();
        assert_eq!(read_current(&dir).unwrap(), 8);
        // Bit-rot in the pointer is loud, not a silent wrong generation.
        let path = dir.join(CURRENT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_current(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generation_names_parse_and_list() {
        assert_eq!(parse_wal_file_name("wal-0.log"), Some(0));
        assert_eq!(parse_wal_file_name("wal-42.log"), Some(42));
        assert_eq!(parse_wal_file_name("wal-.log"), None);
        assert_eq!(parse_wal_file_name("wal-42.log.tmp"), None);
        assert_eq!(parse_snapshot_dir_name("snapshot-3"), Some(3));
        assert_eq!(parse_snapshot_dir_name("snapshot-"), None);

        let dir = tmp("list");
        assert!(list_wal_generations(&dir.join("absent")).unwrap().is_empty());
        for gen in [3u64, 1, 2] {
            WalWriter::create(&wal_file_path(&dir, gen), 0, CLASS).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        assert_eq!(list_wal_generations(&dir).unwrap(), vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_wal_file_is_a_clean_empty_prefix() {
        let dir = tmp("empty");
        let path = wal_file_path(&dir, 0);
        WalWriter::create(&path, 0, CLASS).unwrap();
        let report = read_wal(&path).unwrap();
        assert!(report.records.is_empty());
        assert!(report.torn.is_none());
        assert_eq!(report.valid_len, 0);
        assert_eq!(report.next_seq(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
