//! The shared error type.

use std::fmt;

/// Errors surfaced by the DEMON workspace.
#[derive(Debug)]
#[non_exhaustive]
pub enum DemonError {
    /// Minimum support must satisfy `0 < κ < 1`.
    InvalidMinSupport(f64),
    /// A window size or other structural parameter was invalid.
    InvalidParameter(String),
    /// A block id was out of range for the current snapshot.
    UnknownBlock(u64),
    /// A block id at or below the latest absorbed block was replayed into
    /// an engine that has already consumed it. Distinct from a gap (which
    /// is an [`DemonError::InvalidParameter`]) so replay-aware callers —
    /// a recovering ingest pipeline, the `demon-serve` daemon — can treat
    /// "already seen" as a benign, retryable condition.
    DuplicateBlock {
        /// The replayed block id.
        id: u64,
        /// The latest block the engine has already consumed.
        latest: u64,
    },
    /// A failure reported by a remote `demon-serve` daemon in response to
    /// a protocol request. The payload is the daemon's error message.
    Remote(String),
    /// A block-selection sequence did not match the window it was applied to.
    BssMismatch {
        /// Length of the supplied sequence.
        got: usize,
        /// Expected length (the window size).
        expected: usize,
    },
    /// An I/O failure (GEMM's on-disk model shelf).
    Io(std::io::Error),
    /// A (de)serialization failure.
    Serde(String),
    /// A persisted file failed structural validation (bad magic, version,
    /// frame length, manifest inconsistency, …).
    Corrupt {
        /// The offending file (path or logical name).
        file: String,
        /// What exactly was wrong, including the offset when known.
        detail: String,
    },
    /// An operation that needs an exact shard merge was requested for a
    /// model class that does not provide one (`--shards ≥ 2` with a
    /// maintainer outside the `ShardableModel` subtrait). A typed error
    /// instead of a silently wrong merged model, mirroring how the
    /// `--window` restriction is surfaced.
    ShardsUnsupported {
        /// The model class that lacks an exact shard merge.
        class: &'static str,
    },
    /// A model-class tag on a WAL record, wire request, or snapshot did
    /// not match the class the daemon maintains — e.g. replaying an
    /// itemset WAL into a `--model clusters` daemon.
    ModelClassMismatch {
        /// The class the daemon maintains (its CLI name).
        expected: String,
        /// The class the artifact carries (CLI name, or `class tag <n>`
        /// for unknown tags).
        got: String,
    },
    /// A persisted file's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// The offending file (path or logical name).
        file: String,
        /// The checksum recorded in the frame header or manifest.
        expected: u32,
        /// The checksum of the bytes actually on disk.
        actual: u32,
    },
}

impl fmt::Display for DemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemonError::InvalidMinSupport(k) => {
                write!(f, "minimum support must satisfy 0 < κ < 1, got {k}")
            }
            DemonError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DemonError::UnknownBlock(id) => write!(f, "unknown block D{id}"),
            DemonError::DuplicateBlock { id, latest } => write!(
                f,
                "duplicate block D{id}: the engine already consumed blocks up to D{latest}"
            ),
            DemonError::Remote(msg) => write!(f, "remote error: {msg}"),
            DemonError::BssMismatch { got, expected } => write!(
                f,
                "block selection sequence has length {got}, window expects {expected}"
            ),
            DemonError::Io(e) => write!(f, "i/o error: {e}"),
            DemonError::Serde(msg) => write!(f, "serialization error: {msg}"),
            DemonError::ShardsUnsupported { class } => write!(
                f,
                "sharded serving (--shards ≥ 2) requires an exact shard merge, \
                 which model class {class} does not provide; use --shards 1"
            ),
            DemonError::ModelClassMismatch { expected, got } => write!(
                f,
                "model class mismatch: this daemon maintains {expected}, but the \
                 payload is tagged {got}"
            ),
            DemonError::Corrupt { file, detail } => {
                write!(f, "corrupt file {file}: {detail}")
            }
            DemonError::ChecksumMismatch {
                file,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {file}: expected {expected:#010x}, found {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for DemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DemonError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DemonError {
    fn from(e: std::io::Error) -> Self {
        DemonError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(DemonError::InvalidMinSupport(1.5)
            .to_string()
            .contains("0 < κ < 1"));
        assert!(DemonError::UnknownBlock(9).to_string().contains("D9"));
        let e = DemonError::BssMismatch {
            got: 3,
            expected: 5,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = DemonError::DuplicateBlock { id: 2, latest: 4 };
        assert!(e.to_string().contains("D2") && e.to_string().contains("D4"));
        assert!(DemonError::Remote("queue full".into())
            .to_string()
            .contains("queue full"));
    }

    #[test]
    fn corruption_messages_name_the_file() {
        let e = DemonError::Corrupt {
            file: "store/block_3.txs".into(),
            detail: "truncated frame header (4 of 20 bytes)".into(),
        };
        assert!(e.to_string().contains("block_3.txs"));
        assert!(e.to_string().contains("20 bytes"));
        let e = DemonError::ChecksumMismatch {
            file: "store/block_3.tid".into(),
            expected: 0xDEADBEEF,
            actual: 0x12345678,
        };
        assert!(e.to_string().contains("block_3.tid"));
        assert!(e.to_string().contains("0xdeadbeef"));
        assert!(e.to_string().contains("0x12345678"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DemonError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
