//! Deterministic parallel execution for the workspace's hot paths.
//!
//! Every compute-bound phase of DEMON — support counting, GEMM's fan-out
//! over the `w−1` overlapping future windows, FOCUS bootstrap resampling,
//! BIRCH phase-2 distance scans — is embarrassingly parallel: the work
//! splits into independent shards whose results are merged in a fixed
//! order. This module provides the one knob ([`Parallelism`]) and the
//! sharding primitives ([`par_ranges`], [`par_weighted_ranges`],
//! [`par_map`], [`par_for_each_mut`]) those phases share.
//!
//! # Determinism guarantee
//!
//! Results are **bit-identical at any thread count**. The primitives
//! enforce the two properties that make this true:
//!
//! 1. work is split into *contiguous* shards and each shard is computed
//!    exactly as the serial code would compute it, and
//! 2. shard results are merged **in shard order** on the calling thread,
//!    never in completion order.
//!
//! Callers keep the guarantee intact by making per-shard computation
//! independent of the number of shards (e.g. seeding a bootstrap
//! resample from its global index, not from its thread's RNG stream) and
//! by using reductions that are exact (integer sums, per-index writes)
//! or performed serially over shard results in shard order.
//!
//! # Shards vs. workers
//!
//! The requested [`Parallelism`] fixes the **shard structure**: how the
//! input is cut into contiguous ranges. How many OS threads execute
//! those shards is a separate, result-invisible choice — workers claim
//! shards from an atomic queue and deposit results into per-shard slots,
//! so the merge order is the shard order no matter which worker ran
//! what. The worker count is capped at the hardware's
//! [`std::thread::available_parallelism`]: requesting 8 threads on a
//! 1-core box still produces the 8-shard structure (and the 8-shard
//! results), but runs it inline instead of paying context-switch and
//! cache-thrash overhead for concurrency the hardware cannot deliver.
//! This cap is what keeps multi-thread configurations from *anti-scaling*
//! on small machines; the determinism guarantee makes it a free choice.
//!
//! # Payload-aware sharding
//!
//! Equal-length ranges balance poorly when items carry very different
//! amounts of work — one block can hold 100× the transactions of
//! another, one candidate's TID-lists can be 100× longer than another's.
//! [`par_weighted_ranges`] splits by cumulative *payload* (bytes, TIDs,
//! transactions — any `u64` weight per item) instead of item count:
//! shard boundaries land where the weight prefix sum crosses equal
//! fractions of the total. Boundaries depend only on the weights and the
//! requested thread count — never on the worker count or timing — so the
//! determinism guarantee is unaffected.
//!
//! # Nesting
//!
//! Shard workers run with an ambient "inside a parallel region" marker;
//! any nested call to these primitives from worker code degrades to the
//! serial path instead of multiplying threads (GEMM's parallel off-line
//! updates call parallel support counting, which would otherwise spawn
//! `w × t` threads).
//!
//! Threads are spawned per call via [`std::thread::scope`]. The shards
//! are coarse (thousands of candidate counts, whole bootstrap resamples,
//! whole window models), so spawn cost is noise next to shard cost; no
//! external thread-pool dependency is needed.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The requested degree of parallelism for the hot mining paths.
///
/// A plain value type passed to the `*_with` variants of the hot-path
/// entry points; the process-wide default used by the plain variants is
/// held by [`set_global`] / [`global`]. `threads == 1` runs everything
/// on the calling thread with no spawns at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Single-threaded execution (no worker threads are ever spawned).
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// As many threads as the hardware advertises
    /// ([`std::thread::available_parallelism`]), falling back to 1 when
    /// the hint is unavailable.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism { threads }
    }

    /// Exactly `threads` threads; `0` means [`Parallelism::auto`].
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Parallelism::auto()
        } else {
            Parallelism { threads }
        }
    }

    /// The configured thread count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this configuration never spawns worker threads.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Threads actually worth spawning for `n` work items: capped by the
    /// item count, and forced to 1 inside an enclosing parallel region
    /// (see the module docs on nesting).
    fn effective_threads(&self, n: usize) -> usize {
        if in_parallel_region() {
            return 1;
        }
        self.threads.min(n).max(1)
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::auto`] — results are bit-identical at
    /// any thread count, so there is no correctness reason to hold back.
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Process-wide default thread count; `0` encodes "unset" (= auto).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default [`Parallelism`] used by hot-path entry
/// points that are not handed an explicit value (e.g. the plain
/// `count_supports` in `demon-itemsets`, or the k-means assignment scan
/// in `demon-clustering`). The CLI's `--threads` flag lands here.
pub fn set_global(par: Parallelism) {
    GLOBAL_THREADS.store(par.threads, Ordering::Relaxed);
}

/// The process-wide default [`Parallelism`]: the last value passed to
/// [`set_global`], or [`Parallelism::auto`] when never set.
pub fn global() -> Parallelism {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => Parallelism::auto(),
        t => Parallelism { threads: t },
    }
}

thread_local! {
    /// Set while the current thread is a shard worker of [`par_ranges`];
    /// nested primitives then run serially instead of spawning again.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a shard worker of a parallel region.
/// The observability layer uses this to suppress event emission from
/// workers (event order must not depend on thread interleaving); nested
/// primitives use it to degrade to serial execution.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// OS threads worth running concurrently: the hardware's advertised
/// parallelism, or "no cap" when the hint is unavailable. Shard
/// *structure* is set by the requested [`Parallelism`]; this only bounds
/// how many workers execute it (see the module docs, "Shards vs.
/// workers").
fn max_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(usize::MAX)
}

/// Whether the hardware can run at most one worker thread
/// ([`std::thread::available_parallelism`] is 1, so shards always
/// execute sequentially on the calling thread).
///
/// Callers whose shard merge is **exact** (integer sums, per-index
/// writes) may use this to skip per-shard accumulators entirely:
/// filling one shared accumulator across the would-be shards is
/// bit-identical to the per-shard merge — that invariance is precisely
/// the determinism guarantee — and skips the merge's allocation and
/// reduction cost. Callers with order-sensitive merges must not.
pub fn single_worker() -> bool {
    max_workers() == 1
}

/// Executes the shards delimited by `bounds` and returns their results
/// in shard order. Workers claim shard indices from an atomic queue and
/// write into per-shard slots, so the result order is scheduling
/// independent; with one (or no spare) worker the shards run inline on
/// the calling thread, still marked as a parallel region.
fn run_shards<R, F>(bounds: &[usize], f: &F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let shards = bounds.len().saturating_sub(1);
    let workers = shards.min(max_workers());
    if workers <= 1 {
        // Serial execution still marks the thread as inside a region so
        // nested-region accounting is identical at every thread count.
        return with_region_flag(|| bounds.windows(2).map(|w| f(w[0]..w[1])).collect());
    }
    let slots: Vec<Mutex<Option<R>>> = (0..shards).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (slots, next) = (&slots, &next);
            scope.spawn(move || {
                IN_PARALLEL_REGION.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= shards {
                        break;
                    }
                    let result = f(bounds[i]..bounds[i + 1]);
                    *slots[i].lock().expect("shard slot lock") = Some(result);
                }
            });
        }
        // `scope` joins every worker before returning and re-raises any
        // worker panic, so all slots below are filled.
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("shard slot lock")
                .expect("every shard was executed")
        })
        .collect()
}

/// Splits `0..n` into at most `par.threads()` contiguous ranges of
/// near-equal length, runs `f` on each range (concurrently when more
/// than one), and returns the per-range results **in range order**.
///
/// This is the deterministic-reduction primitive everything else builds
/// on: whatever associative merge the caller performs over the returned
/// `Vec` happens serially, in a shard order that does not depend on the
/// thread count or on scheduling.
pub fn par_ranges<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let region = RegionStats::open(n);
    let threads = par.effective_threads(n);
    let bounds = split_points(n, threads);
    let results = run_shards(&bounds, &f);
    region.close(&bounds);
    results
}

/// [`par_ranges`] with **payload-proportional** split points: shard
/// boundaries are placed where the cumulative weight crosses equal
/// fractions of the total, so each shard carries a near-equal amount of
/// *work* rather than a near-equal number of *items*. `weights[i]` is
/// the cost of item `i` in any caller-chosen unit (TIDs to intersect,
/// transaction bytes to scan).
///
/// Boundaries depend only on `weights` and the requested thread count,
/// so results remain bit-identical at any thread count; when every
/// weight is zero the split degrades to the equal-count one.
pub fn par_weighted_ranges<R, F>(par: Parallelism, weights: &[u64], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let region = RegionStats::open(n);
    let threads = par.effective_threads(n);
    let bounds = weighted_split_points(weights, threads);
    let results = run_shards(&bounds, &f);
    region.close(&bounds);
    results
}

/// Runs `f` with [`IN_PARALLEL_REGION`] set, restoring the prior value.
fn with_region_flag<R>(f: impl FnOnce() -> R) -> R {
    let prior = IN_PARALLEL_REGION.with(Cell::get);
    IN_PARALLEL_REGION.with(|c| c.set(true));
    let result = f();
    IN_PARALLEL_REGION.with(|c| c.set(prior));
    result
}

/// Observability bookkeeping for one parallel region. Only top-level
/// regions record (nested ones degrade to serial and would make the
/// `parallel_regions` counter depend on the shard count).
struct RegionStats {
    start: Option<std::time::Instant>,
}

impl RegionStats {
    fn open(_n: usize) -> RegionStats {
        let top_level =
            crate::obs::is_enabled() && !IN_PARALLEL_REGION.with(Cell::get);
        if top_level {
            crate::obs::incr(crate::obs::Counter::ParallelRegions);
        }
        RegionStats {
            start: top_level.then(std::time::Instant::now),
        }
    }

    fn close(self, bounds: &[usize]) {
        let Some(start) = self.start else { return };
        for w in bounds.windows(2) {
            crate::obs::observe(crate::obs::Hist::ShardItems, (w[1] - w[0]) as u64);
        }
        crate::obs::observe(
            crate::obs::Hist::RegionMicros,
            start.elapsed().as_micros() as u64,
        );
    }
}

/// Contiguous split points of `0..weights.len()` into `shards` ranges of
/// near-equal **total weight**: boundary `k` is placed after the first
/// item whose inclusive weight prefix reaches `k/shards` of the total.
/// Returns `shards + 1` monotone points starting at 0 and ending at
/// `weights.len()`; shards may be empty when a single item outweighs a
/// whole fraction. All-zero weights degrade to the equal-count split.
///
/// Deterministic: depends only on `weights` and `shards`, never on the
/// executing worker count — the property [`par_weighted_ranges`] relies
/// on for thread-count-invariant results.
pub fn weighted_split_points(weights: &[u64], shards: usize) -> Vec<usize> {
    let shards = shards.max(1);
    let n = weights.len();
    let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    if total == 0 {
        return split_points(n, shards);
    }
    let shards_w = shards as u128;
    let mut points = Vec::with_capacity(shards + 1);
    points.push(0);
    let mut acc: u128 = 0;
    let mut k: u128 = 1;
    for (i, &w) in weights.iter().enumerate() {
        acc += u128::from(w);
        while points.len() < shards && acc * shards_w >= total * k {
            points.push(i + 1);
            k += 1;
        }
    }
    while points.len() < shards {
        points.push(n);
    }
    points.push(n);
    points
}

/// `start` offsets of `threads` near-equal contiguous shards of `0..n`,
/// plus the terminal `n` — `threads + 1` monotone split points. This is
/// the equal-*count* split [`par_ranges`] uses; compare
/// [`weighted_split_points`] for the equal-*payload* variant.
pub fn split_points(n: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1);
    let base = n / threads;
    let extra = n % threads;
    let mut points = Vec::with_capacity(threads + 1);
    let mut at = 0;
    points.push(0);
    for i in 0..threads {
        at += base + usize::from(i < extra);
        points.push(at);
    }
    points
}

/// Order-preserving parallel map: `par_map(par, items, f)` equals
/// `items.iter().map(f).collect()` for any thread count.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut chunks = par_ranges(par, items.len(), |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    if chunks.len() == 1 {
        return chunks.pop().unwrap_or_default();
    }
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Runs `f(index, &mut item)` over every item, sharding the slice into
/// disjoint `&mut` chunks. Each item is touched by exactly one worker, so
/// in-place updates (GEMM absorbing a block into each future-window
/// model) stay race-free and deterministic.
pub fn par_for_each_mut<T, F>(par: Parallelism, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let region = RegionStats::open(n);
    let threads = par.effective_threads(n);
    let bounds = split_points(n, threads);
    let workers = threads.min(max_workers());
    if workers <= 1 {
        with_region_flag(|| {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
        });
        region.close(&bounds);
        return;
    }
    // Pre-split into disjoint `&mut` chunks; workers claim chunks by
    // index from an atomic queue (each chunk is taken exactly once), so
    // in-place updates stay race-free whatever the worker count.
    type ChunkSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let mut chunks: Vec<ChunkSlot<'_, T>> = Vec::with_capacity(threads);
    let mut rest = items;
    let mut offset = 0usize;
    for w in bounds.windows(2) {
        let len = w[1] - w[0];
        let (shard, tail) = rest.split_at_mut(len);
        rest = tail;
        chunks.push(Mutex::new(Some((offset, shard))));
        offset += len;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let (chunks, next, f) = (&chunks, &next, &f);
            scope.spawn(move || {
                IN_PARALLEL_REGION.with(|c| c.set(true));
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    let (start, shard) = chunks[i]
                        .lock()
                        .expect("chunk slot lock")
                        .take()
                        .expect("chunk claimed exactly once");
                    for (j, item) in shard.iter_mut().enumerate() {
                        f(start + j, item);
                    }
                }
            });
        }
    });
    region.close(&bounds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_cover_and_balance() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for t in 1..=9usize {
                let p = split_points(n, t);
                assert_eq!(p.len(), t + 1);
                assert_eq!(*p.first().unwrap(), 0);
                assert_eq!(*p.last().unwrap(), n);
                assert!(p.windows(2).all(|w| w[0] <= w[1]));
                let lens: Vec<usize> = p.windows(2).map(|w| w[1] - w[0]).collect();
                let (min, max) = (
                    lens.iter().min().copied().unwrap(),
                    lens.iter().max().copied().unwrap(),
                );
                assert!(max - min <= 1, "unbalanced {lens:?} for n={n} t={t}");
            }
        }
    }

    #[test]
    fn weighted_split_points_cover_and_balance() {
        // Uniform weights stay as balanced as the equal-count split:
        // shard lengths differ by at most one.
        for n in [1usize, 7, 64, 1000] {
            for t in 1..=9usize {
                let w = vec![1u64; n];
                let p = weighted_split_points(&w, t);
                assert_eq!(p.len(), t + 1, "n={n} t={t}");
                assert_eq!(*p.first().unwrap(), 0);
                assert_eq!(*p.last().unwrap(), n);
                let lens: Vec<usize> = p.windows(2).map(|w| w[1] - w[0]).collect();
                let (min, max) = (
                    lens.iter().min().copied().unwrap(),
                    lens.iter().max().copied().unwrap(),
                );
                assert!(max - min <= 1, "unbalanced {lens:?} for n={n} t={t}");
            }
        }
        // Skewed weights: every shard's total stays within one max item
        // of the ideal fraction.
        let weights: Vec<u64> = (0..100u64).map(|i| (i * i) % 97 + 1).collect();
        let total: u64 = weights.iter().sum();
        for t in [2usize, 3, 4, 8] {
            let p = weighted_split_points(&weights, t);
            assert_eq!(p.len(), t + 1);
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), weights.len());
            assert!(p.windows(2).all(|w| w[0] <= w[1]));
            let max_item = *weights.iter().max().unwrap();
            for w in p.windows(2) {
                let shard: u64 = weights[w[0]..w[1]].iter().sum();
                assert!(
                    shard <= total / t as u64 + max_item,
                    "shard {shard} too heavy for t={t} (ideal {})",
                    total / t as u64
                );
            }
        }
    }

    #[test]
    fn weighted_split_points_edge_cases() {
        // All-zero weights degrade to the equal-count split.
        assert_eq!(weighted_split_points(&[0; 10], 4), split_points(10, 4));
        // One huge item absorbs everything; later shards are empty.
        let p = weighted_split_points(&[1, 1000, 1, 1], 4);
        assert_eq!(*p.last().unwrap(), 4);
        assert_eq!(p.len(), 5);
        assert!(p.windows(2).all(|w| w[0] <= w[1]));
        // The heavy item's shard ends right after it.
        assert!(p.contains(&2));
    }

    #[test]
    fn par_weighted_ranges_matches_serial_at_every_thread_count() {
        let weights: Vec<u64> = (0..500u64).map(|i| i % 17).collect();
        let total: u64 = weights.iter().sum();
        for t in [1usize, 2, 3, 8, 16] {
            // Shard sums add up to the global sum regardless of t.
            let sums = par_weighted_ranges(Parallelism::new(t), &weights, |r| {
                weights[r].iter().sum::<u64>()
            });
            assert_eq!(sums.iter().sum::<u64>(), total, "thread count {t}");
            // Ranges are contiguous and in order.
            let ranges = par_weighted_ranges(Parallelism::new(t), &weights, |r| r);
            let mut at = 0;
            for r in &ranges {
                assert_eq!(r.start, at);
                at = r.end;
            }
            assert_eq!(at, weights.len());
        }
    }

    #[test]
    fn parallelism_constructors() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::serial().threads(), 1);
        assert!(Parallelism::new(4).threads() == 4);
        assert!(Parallelism::new(0).threads() >= 1); // auto
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1usize, 2, 3, 4, 8, 16] {
            let got = par_map(Parallelism::new(t), &items, |x| x * x + 1);
            assert_eq!(got, expected, "thread count {t}");
        }
    }

    #[test]
    fn par_ranges_results_arrive_in_range_order() {
        for t in [1usize, 2, 5, 8] {
            let ranges = par_ranges(Parallelism::new(t), 100, |r| r);
            let mut at = 0;
            for r in &ranges {
                assert_eq!(r.start, at);
                at = r.end;
            }
            assert_eq!(at, 100);
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_index_once() {
        for t in [1usize, 2, 4, 8] {
            let mut items = vec![0u64; 137];
            par_for_each_mut(Parallelism::new(t), &mut items, |i, v| {
                *v += i as u64 + 1;
            });
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "index {i} at {t} threads");
            }
        }
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        // Inner par_ranges inside a worker must not spawn: its shard
        // count collapses to 1 regardless of the requested threads.
        let inner_shards = par_ranges(Parallelism::new(4), 4, |_| {
            par_ranges(Parallelism::new(4), 100, |r| r).len()
        });
        assert!(inner_shards.iter().all(|&n| n == 1), "{inner_shards:?}");
        // Outside any region, the same call does shard.
        assert_eq!(par_ranges(Parallelism::new(4), 100, |r| r).len(), 4);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::new(8), &items, |x| *x).is_empty());
        assert!(par_ranges::<usize, _>(Parallelism::new(8), 0, |r| r.len()).is_empty());
        let mut empty: [u8; 0] = [];
        par_for_each_mut(Parallelism::new(8), &mut empty, |_, _| {});
    }

    #[test]
    fn global_roundtrips() {
        // Relaxed test: other tests may race on the global, so just check
        // set→get coherence through the public API once.
        set_global(Parallelism::new(3));
        assert_eq!(global().threads(), 3);
        set_global(Parallelism::new(0)); // back to auto
        assert!(global().threads() >= 1);
    }
}
