//! Deterministic parallel execution for the workspace's hot paths.
//!
//! Every compute-bound phase of DEMON — support counting, GEMM's fan-out
//! over the `w−1` overlapping future windows, FOCUS bootstrap resampling,
//! BIRCH phase-2 distance scans — is embarrassingly parallel: the work
//! splits into independent shards whose results are merged in a fixed
//! order. This module provides the one knob ([`Parallelism`]) and the
//! three sharding primitives ([`par_ranges`], [`par_map`],
//! [`par_for_each_mut`]) those phases share.
//!
//! # Determinism guarantee
//!
//! Results are **bit-identical at any thread count**. The primitives
//! enforce the two properties that make this true:
//!
//! 1. work is split into *contiguous* shards and each shard is computed
//!    exactly as the serial code would compute it, and
//! 2. shard results are merged **in shard order** on the calling thread,
//!    never in completion order.
//!
//! Callers keep the guarantee intact by making per-shard computation
//! independent of the number of shards (e.g. seeding a bootstrap
//! resample from its global index, not from its thread's RNG stream) and
//! by using reductions that are exact (integer sums, per-index writes)
//! or performed serially over shard results in shard order.
//!
//! # Nesting
//!
//! Shard workers run with an ambient "inside a parallel region" marker;
//! any nested call to these primitives from worker code degrades to the
//! serial path instead of multiplying threads (GEMM's parallel off-line
//! updates call parallel support counting, which would otherwise spawn
//! `w × t` threads).
//!
//! Threads are spawned per call via [`std::thread::scope`]. The shards
//! are coarse (thousands of candidate counts, whole bootstrap resamples,
//! whole window models), so spawn cost is noise next to shard cost; no
//! external thread-pool dependency is needed.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The requested degree of parallelism for the hot mining paths.
///
/// A plain value type passed to the `*_with` variants of the hot-path
/// entry points; the process-wide default used by the plain variants is
/// held by [`set_global`] / [`global`]. `threads == 1` runs everything
/// on the calling thread with no spawns at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// Single-threaded execution (no worker threads are ever spawned).
    pub fn serial() -> Self {
        Parallelism { threads: 1 }
    }

    /// As many threads as the hardware advertises
    /// ([`std::thread::available_parallelism`]), falling back to 1 when
    /// the hint is unavailable.
    pub fn auto() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Parallelism { threads }
    }

    /// Exactly `threads` threads; `0` means [`Parallelism::auto`].
    pub fn new(threads: usize) -> Self {
        if threads == 0 {
            Parallelism::auto()
        } else {
            Parallelism { threads }
        }
    }

    /// The configured thread count (always ≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this configuration never spawns worker threads.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Threads actually worth spawning for `n` work items: capped by the
    /// item count, and forced to 1 inside an enclosing parallel region
    /// (see the module docs on nesting).
    fn effective_threads(&self, n: usize) -> usize {
        if in_parallel_region() {
            return 1;
        }
        self.threads.min(n).max(1)
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::auto`] — results are bit-identical at
    /// any thread count, so there is no correctness reason to hold back.
    fn default() -> Self {
        Parallelism::auto()
    }
}

/// Process-wide default thread count; `0` encodes "unset" (= auto).
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default [`Parallelism`] used by hot-path entry
/// points that are not handed an explicit value (e.g. the plain
/// `count_supports` in `demon-itemsets`, or the k-means assignment scan
/// in `demon-clustering`). The CLI's `--threads` flag lands here.
pub fn set_global(par: Parallelism) {
    GLOBAL_THREADS.store(par.threads, Ordering::Relaxed);
}

/// The process-wide default [`Parallelism`]: the last value passed to
/// [`set_global`], or [`Parallelism::auto`] when never set.
pub fn global() -> Parallelism {
    match GLOBAL_THREADS.load(Ordering::Relaxed) {
        0 => Parallelism::auto(),
        t => Parallelism { threads: t },
    }
}

thread_local! {
    /// Set while the current thread is a shard worker of [`par_ranges`];
    /// nested primitives then run serially instead of spawning again.
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Whether the current thread is a shard worker of a parallel region.
/// The observability layer uses this to suppress event emission from
/// workers (event order must not depend on thread interleaving); nested
/// primitives use it to degrade to serial execution.
pub fn in_parallel_region() -> bool {
    IN_PARALLEL_REGION.with(Cell::get)
}

/// Splits `0..n` into at most `par.threads()` contiguous ranges of
/// near-equal length, runs `f` on each range (concurrently when more
/// than one), and returns the per-range results **in range order**.
///
/// This is the deterministic-reduction primitive everything else builds
/// on: whatever associative merge the caller performs over the returned
/// `Vec` happens serially, in a shard order that does not depend on the
/// thread count or on scheduling.
pub fn par_ranges<R, F>(par: Parallelism, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let region = RegionStats::open(n);
    let threads = par.effective_threads(n);
    let bounds = split_points(n, threads);
    if threads <= 1 {
        // Serial execution still marks the thread as inside a region so
        // nested-region accounting is identical at every thread count.
        let results = with_region_flag(|| bounds.windows(2).map(|w| f(w[0]..w[1])).collect());
        region.close(&bounds);
        return results;
    }
    let results = std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (start, end) = (w[0], w[1]);
                let f = &f;
                scope.spawn(move || {
                    IN_PARALLEL_REGION.with(|c| c.set(true));
                    f(start..end)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    region.close(&bounds);
    results
}

/// Runs `f` with [`IN_PARALLEL_REGION`] set, restoring the prior value.
fn with_region_flag<R>(f: impl FnOnce() -> R) -> R {
    let prior = IN_PARALLEL_REGION.with(Cell::get);
    IN_PARALLEL_REGION.with(|c| c.set(true));
    let result = f();
    IN_PARALLEL_REGION.with(|c| c.set(prior));
    result
}

/// Observability bookkeeping for one parallel region. Only top-level
/// regions record (nested ones degrade to serial and would make the
/// `parallel_regions` counter depend on the shard count).
struct RegionStats {
    start: Option<std::time::Instant>,
}

impl RegionStats {
    fn open(_n: usize) -> RegionStats {
        let top_level =
            crate::obs::is_enabled() && !IN_PARALLEL_REGION.with(Cell::get);
        if top_level {
            crate::obs::incr(crate::obs::Counter::ParallelRegions);
        }
        RegionStats {
            start: top_level.then(std::time::Instant::now),
        }
    }

    fn close(self, bounds: &[usize]) {
        let Some(start) = self.start else { return };
        for w in bounds.windows(2) {
            crate::obs::observe(crate::obs::Hist::ShardItems, (w[1] - w[0]) as u64);
        }
        crate::obs::observe(
            crate::obs::Hist::RegionMicros,
            start.elapsed().as_micros() as u64,
        );
    }
}

/// `start` offsets of `threads` near-equal contiguous shards of `0..n`,
/// plus the terminal `n` — `threads + 1` monotone split points.
fn split_points(n: usize, threads: usize) -> Vec<usize> {
    let threads = threads.max(1);
    let base = n / threads;
    let extra = n % threads;
    let mut points = Vec::with_capacity(threads + 1);
    let mut at = 0;
    points.push(0);
    for i in 0..threads {
        at += base + usize::from(i < extra);
        points.push(at);
    }
    points
}

/// Order-preserving parallel map: `par_map(par, items, f)` equals
/// `items.iter().map(f).collect()` for any thread count.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut chunks = par_ranges(par, items.len(), |range| {
        items[range].iter().map(&f).collect::<Vec<R>>()
    });
    if chunks.len() == 1 {
        return chunks.pop().unwrap_or_default();
    }
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Runs `f(index, &mut item)` over every item, sharding the slice into
/// disjoint `&mut` chunks. Each item is touched by exactly one worker, so
/// in-place updates (GEMM absorbing a block into each future-window
/// model) stay race-free and deterministic.
pub fn par_for_each_mut<T, F>(par: Parallelism, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    if n == 0 {
        return;
    }
    let region = RegionStats::open(n);
    let threads = par.effective_threads(n);
    if threads <= 1 {
        with_region_flag(|| {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
        });
        region.close(&split_points(n, 1));
        return;
    }
    let bounds = split_points(n, threads);
    let shard_lens: Vec<usize> = bounds.windows(2).map(|w| w[1] - w[0]).collect();
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut offset = 0usize;
        let mut handles = Vec::with_capacity(threads);
        for len in shard_lens {
            let (shard, tail) = rest.split_at_mut(len);
            rest = tail;
            let start = offset;
            offset += len;
            let f = &f;
            handles.push(scope.spawn(move || {
                IN_PARALLEL_REGION.with(|c| c.set(true));
                for (i, item) in shard.iter_mut().enumerate() {
                    f(start + i, item);
                }
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    region.close(&bounds);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_points_cover_and_balance() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for t in 1..=9usize {
                let p = split_points(n, t);
                assert_eq!(p.len(), t + 1);
                assert_eq!(*p.first().unwrap(), 0);
                assert_eq!(*p.last().unwrap(), n);
                assert!(p.windows(2).all(|w| w[0] <= w[1]));
                let lens: Vec<usize> = p.windows(2).map(|w| w[1] - w[0]).collect();
                let (min, max) = (
                    lens.iter().min().copied().unwrap(),
                    lens.iter().max().copied().unwrap(),
                );
                assert!(max - min <= 1, "unbalanced {lens:?} for n={n} t={t}");
            }
        }
    }

    #[test]
    fn parallelism_constructors() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::serial().threads(), 1);
        assert!(Parallelism::new(4).threads() == 4);
        assert!(Parallelism::new(0).threads() >= 1); // auto
        assert!(Parallelism::auto().threads() >= 1);
    }

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1usize, 2, 3, 4, 8, 16] {
            let got = par_map(Parallelism::new(t), &items, |x| x * x + 1);
            assert_eq!(got, expected, "thread count {t}");
        }
    }

    #[test]
    fn par_ranges_results_arrive_in_range_order() {
        for t in [1usize, 2, 5, 8] {
            let ranges = par_ranges(Parallelism::new(t), 100, |r| r);
            let mut at = 0;
            for r in &ranges {
                assert_eq!(r.start, at);
                at = r.end;
            }
            assert_eq!(at, 100);
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_index_once() {
        for t in [1usize, 2, 4, 8] {
            let mut items = vec![0u64; 137];
            par_for_each_mut(Parallelism::new(t), &mut items, |i, v| {
                *v += i as u64 + 1;
            });
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "index {i} at {t} threads");
            }
        }
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        // Inner par_ranges inside a worker must not spawn: its shard
        // count collapses to 1 regardless of the requested threads.
        let inner_shards = par_ranges(Parallelism::new(4), 4, |_| {
            par_ranges(Parallelism::new(4), 100, |r| r).len()
        });
        assert!(inner_shards.iter().all(|&n| n == 1), "{inner_shards:?}");
        // Outside any region, the same call does shard.
        assert_eq!(par_ranges(Parallelism::new(4), 100, |r| r).len(), 4);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u32> = Vec::new();
        assert!(par_map(Parallelism::new(8), &items, |x| *x).is_empty());
        assert!(par_ranges::<usize, _>(Parallelism::new(8), 0, |r| r.len()).is_empty());
        let mut empty: [u8; 0] = [];
        par_for_each_mut(Parallelism::new(8), &mut empty, |_, _| {});
    }

    #[test]
    fn global_roundtrips() {
        // Relaxed test: other tests may race on the global, so just check
        // set→get coherence through the public API once.
        set_global(Parallelism::new(3));
        assert_eq!(global().threads(), 3);
        set_global(Parallelism::new(0)); // back to auto
        assert!(global().threads() >= 1);
    }
}
