//! Crash-safe file primitives shared by every persistence surface.
//!
//! DEMON's database is long-lived: blocks arrive forever and the on-disk
//! store (plus GEMM's model shelf) must survive a process crash at any
//! point between them. Two primitives make that tractable:
//!
//! * [`atomic_write`] — write-to-temp, fsync, rename, fsync-parent. A
//!   crash leaves either the old file or the new file, never a torn mix;
//!   a stray `*.tmp` is the only possible residue and loaders ignore it.
//! * **Framed files** ([`write_framed`] / [`read_framed`]) — every binary
//!   payload is wrapped in a small header carrying a magic, a format
//!   version, a per-file-class tag, the payload length and a CRC32 of the
//!   payload. Any truncation or bit flip anywhere in the file is detected
//!   *before* the payload is decoded, so corruption surfaces as a typed
//!   [`DemonError`] naming the file instead of a panic deep in a decoder.
//!
//! ## Frame layout (format version 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "DMON"
//! 4       2     format version, u16 LE (currently 2)
//! 6       2     file class tag (e.g. "TX", "TL", "SH")
//! 8       8     payload length, u64 LE
//! 16      4     CRC32 (IEEE) of the payload, u32 LE
//! 20      …     payload
//! ```
//!
//! The checksum is the same CRC32 used by gzip/zip (polynomial
//! `0xEDB88320`), implemented here because the workspace's dependency
//! budget is fixed.

use crate::error::DemonError;
use crate::Result;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every framed DEMON file.
pub const FRAME_MAGIC: [u8; 4] = *b"DMON";

/// Current on-disk format version, embedded in every frame header.
pub const FRAME_VERSION: u16 = 2;

/// Size in bytes of the frame header preceding the payload.
pub const FRAME_HEADER_LEN: usize = 20;

/// A two-byte tag identifying what kind of payload a frame carries, so a
/// file cannot be mistaken for one of a different class (e.g. a shelf
/// model copied over a block file).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameClass(pub [u8; 2]);

impl FrameClass {
    /// Raw transactions of one block (`block_<id>.txs`).
    pub const TRANSACTIONS: FrameClass = FrameClass(*b"TX");
    /// TID-lists of one block (`block_<id>.tid`).
    pub const TIDLISTS: FrameClass = FrameClass(*b"TL");
    /// A shelved GEMM model (`slot_<start>.model`).
    pub const SHELF: FrameClass = FrameClass(*b"SH");
    /// A spilled transaction-store entry (block + TID-lists).
    pub const TXENTRY: FrameClass = FrameClass(*b"TE");
    /// A spilled block of numeric points.
    pub const POINTS: FrameClass = FrameClass(*b"PB");
    /// A spilled block of labeled points.
    pub const LABELED: FrameClass = FrameClass(*b"LB");
    /// A `demon-serve` wire-protocol request.
    pub const REQUEST: FrameClass = FrameClass(*b"RQ");
    /// A `demon-serve` wire-protocol response.
    pub const RESPONSE: FrameClass = FrameClass(*b"RS");
    /// One write-ahead-log record (`wal-<gen>.log` holds a sequence of
    /// these frames back to back).
    pub const WAL: FrameClass = FrameClass(*b"WL");
    /// The WAL directory's `CURRENT` pointer naming the live generation.
    pub const WAL_CURRENT: FrameClass = FrameClass(*b"CG");

    /// The block manifest of a generic (non-itemset) serving snapshot
    /// directory: model-class tag + covered block ids.
    pub const SNAP_MANIFEST: FrameClass = FrameClass(*b"SM");
}

impl std::fmt::Display for FrameClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.0[0] as char, self.0[1] as char)
    }
}

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3, the gzip/zip polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The sibling temp path used by [`atomic_write`]: `<file>.tmp`.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `bytes` to `path` atomically: the data lands in `<path>.tmp`
/// first, is fsynced, and is renamed over `path`; the parent directory is
/// then fsynced so the rename itself survives a crash. Readers never see
/// a torn file — at worst a stray `*.tmp` is left behind.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        // Directory fsync is best-effort: some filesystems (and Windows)
        // refuse to open directories; the rename is still atomic.
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Wraps `payload` in a frame header; returns the full file contents and
/// the payload checksum (also recorded inside the header).
pub fn encode_frame(class: FrameClass, payload: &[u8]) -> (Vec<u8>, u32) {
    let crc = crc32(payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&class.0);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    (out, crc)
}

/// Validates the frame header of `bytes` and returns the payload together
/// with its checksum. Every defect — short header, wrong magic, wrong
/// version, wrong class, length disagreement, checksum mismatch — becomes
/// a typed error naming `file` and the offending offset.
pub fn decode_frame<'a>(class: FrameClass, bytes: &'a [u8], file: &str) -> Result<(&'a [u8], u32)> {
    let corrupt = |detail: String| DemonError::Corrupt {
        file: file.to_string(),
        detail,
    };
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(corrupt(format!(
            "truncated frame header ({} of {FRAME_HEADER_LEN} bytes)",
            bytes.len()
        )));
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(corrupt(format!(
            "bad magic at offset 0: expected {FRAME_MAGIC:02x?}, found {:02x?}",
            &bytes[0..4]
        )));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FRAME_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} at offset 4 (this build reads {FRAME_VERSION})"
        )));
    }
    if bytes[6..8] != class.0 {
        return Err(corrupt(format!(
            "wrong file class at offset 6: expected {:02x?} ({class}), found {:02x?}",
            class.0,
            &bytes[6..8]
        )));
    }
    let len = u64::from_le_bytes(
        bytes[8..16]
            .try_into()
            .map_err(|_| corrupt("unreachable: 8-byte slice".into()))?,
    );
    let actual_len = (bytes.len() - FRAME_HEADER_LEN) as u64;
    if len != actual_len {
        return Err(corrupt(format!(
            "payload length mismatch at offset 8: header says {len} bytes, file holds {actual_len}"
        )));
    }
    let expected = u32::from_le_bytes(
        bytes[16..20]
            .try_into()
            .map_err(|_| corrupt("unreachable: 4-byte slice".into()))?,
    );
    let payload = &bytes[FRAME_HEADER_LEN..];
    let actual = crc32(payload);
    if expected != actual {
        return Err(DemonError::ChecksumMismatch {
            file: file.to_string(),
            expected,
            actual,
        });
    }
    Ok((payload, actual))
}

/// A parsed frame header, for streaming readers that receive the header
/// and the payload separately (a socket, a pipe) and therefore cannot
/// hand [`decode_frame`] the whole file at once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// The file-class tag the frame was validated against.
    pub class: FrameClass,
    /// Payload length the header promises.
    pub payload_len: u64,
    /// CRC32 the payload must hash to.
    pub crc: u32,
}

/// Validates the fixed-size frame header of a streaming read (magic,
/// version, class) and returns the payload length and checksum still to
/// be verified. `source` names the peer or file in error messages.
pub fn decode_frame_header(class: FrameClass, bytes: &[u8], source: &str) -> Result<FrameHeader> {
    let corrupt = |detail: String| DemonError::Corrupt {
        file: source.to_string(),
        detail,
    };
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(corrupt(format!(
            "truncated frame header ({} of {FRAME_HEADER_LEN} bytes)",
            bytes.len()
        )));
    }
    if bytes[0..4] != FRAME_MAGIC {
        return Err(corrupt(format!(
            "bad magic at offset 0: expected {FRAME_MAGIC:02x?}, found {:02x?}",
            &bytes[0..4]
        )));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FRAME_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} at offset 4 (this build reads {FRAME_VERSION})"
        )));
    }
    if bytes[6..8] != class.0 {
        return Err(corrupt(format!(
            "wrong file class at offset 6: expected {:02x?} ({class}), found {:02x?}",
            class.0,
            &bytes[6..8]
        )));
    }
    let payload_len = u64::from_le_bytes(
        bytes[8..16]
            .try_into()
            .map_err(|_| corrupt("unreachable: 8-byte slice".into()))?,
    );
    let crc = u32::from_le_bytes(
        bytes[16..20]
            .try_into()
            .map_err(|_| corrupt("unreachable: 4-byte slice".into()))?,
    );
    Ok(FrameHeader {
        class,
        payload_len,
        crc,
    })
}

/// Verifies a streamed payload against its already-parsed header: the
/// length must match and the CRC32 must hash out. The counterpart of
/// [`decode_frame_header`] for the payload half of a streaming read.
pub fn verify_frame_payload(header: &FrameHeader, payload: &[u8], source: &str) -> Result<()> {
    if payload.len() as u64 != header.payload_len {
        return Err(DemonError::Corrupt {
            file: source.to_string(),
            detail: format!(
                "payload length mismatch at offset 8: header says {} bytes, stream holds {}",
                header.payload_len,
                payload.len()
            ),
        });
    }
    let actual = crc32(payload);
    if actual != header.crc {
        return Err(DemonError::ChecksumMismatch {
            file: source.to_string(),
            expected: header.crc,
            actual,
        });
    }
    Ok(())
}

/// Atomically writes `payload` to `path` as a framed file; returns the
/// payload checksum so callers can record it in a manifest.
pub fn write_framed(path: &Path, class: FrameClass, payload: &[u8]) -> Result<u32> {
    let (bytes, crc) = encode_frame(class, payload);
    atomic_write(path, &bytes)?;
    Ok(crc)
}

/// Reads and validates a framed file, returning the payload and its
/// checksum. A missing file surfaces as [`DemonError::Io`].
pub fn read_framed(path: &Path, class: FrameClass) -> Result<(Vec<u8>, u32)> {
    let bytes = std::fs::read(path)?;
    let name = path.display().to_string();
    let (payload, crc) = decode_frame(class, &bytes, &name)?;
    Ok((payload.to_vec(), crc))
}

/// Whether an I/O error is worth retrying (interrupted syscall or a
/// transiently unavailable resource), as opposed to a persistent failure
/// like `NotFound` or `PermissionDenied`.
pub fn is_transient_io(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
    )
}

/// [`read_framed`] with a bounded retry on transient I/O errors.
/// Corruption and persistent I/O failures are returned immediately.
pub fn read_framed_with_retry(
    path: &Path,
    class: FrameClass,
    attempts: u32,
) -> Result<(Vec<u8>, u32)> {
    let mut last = None;
    for _ in 0..attempts.max(1) {
        match read_framed(path, class) {
            Err(DemonError::Io(e)) if is_transient_io(&e) => last = Some(e),
            other => return other,
        }
    }
    Err(DemonError::Io(last.unwrap_or_else(|| {
        std::io::Error::other("retry loop exhausted without an error")
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"demon"), crc32(b"demon"));
        assert_ne!(crc32(b"demon"), crc32(b"demoN"));
    }

    #[test]
    fn frame_roundtrips() {
        let payload = b"the quick brown fox";
        let (bytes, crc) = encode_frame(FrameClass::TRANSACTIONS, payload);
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + payload.len());
        let (back, crc2) = decode_frame(FrameClass::TRANSACTIONS, &bytes, "f").unwrap();
        assert_eq!(back, payload);
        assert_eq!(crc, crc2);
        // Empty payloads are legal frames.
        let (bytes, _) = encode_frame(FrameClass::SHELF, b"");
        let (back, _) = decode_frame(FrameClass::SHELF, &bytes, "f").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn every_truncation_is_detected() {
        let (bytes, _) = encode_frame(FrameClass::TIDLISTS, b"payload bytes");
        for cut in 0..bytes.len() {
            let err = decode_frame(FrameClass::TIDLISTS, &bytes[..cut], "f").unwrap_err();
            assert!(
                matches!(
                    err,
                    DemonError::Corrupt { .. } | DemonError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let (bytes, _) = encode_frame(FrameClass::TRANSACTIONS, b"payload bytes");
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0xFF] {
                let mut bad = bytes.clone();
                bad[i] ^= mask;
                let err = decode_frame(FrameClass::TRANSACTIONS, &bad, "f").unwrap_err();
                assert!(
                    matches!(
                        err,
                        DemonError::Corrupt { .. } | DemonError::ChecksumMismatch { .. }
                    ),
                    "flip at {i} (mask {mask:#x}): unexpected {err}"
                );
            }
        }
    }

    #[test]
    fn streaming_header_and_payload_roundtrip() {
        let payload = b"streamed payload";
        let (bytes, crc) = encode_frame(FrameClass::REQUEST, payload);
        let header =
            decode_frame_header(FrameClass::REQUEST, &bytes[..FRAME_HEADER_LEN], "peer").unwrap();
        assert_eq!(header.payload_len, payload.len() as u64);
        assert_eq!(header.crc, crc);
        verify_frame_payload(&header, payload, "peer").unwrap();
        // Short payload, long payload, flipped bit: all rejected.
        assert!(verify_frame_payload(&header, &payload[..3], "peer").is_err());
        let mut long = payload.to_vec();
        long.push(0);
        assert!(verify_frame_payload(&header, &long, "peer").is_err());
        let mut bad = payload.to_vec();
        bad[0] ^= 1;
        let err = verify_frame_payload(&header, &bad, "peer").unwrap_err();
        assert!(matches!(err, DemonError::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn streaming_header_rejects_defects() {
        let (bytes, _) = encode_frame(FrameClass::RESPONSE, b"x");
        let header = &bytes[..FRAME_HEADER_LEN];
        assert!(decode_frame_header(FrameClass::RESPONSE, &header[..10], "peer").is_err());
        assert!(decode_frame_header(FrameClass::REQUEST, header, "peer")
            .unwrap_err()
            .to_string()
            .contains("file class"));
        let mut bad = header.to_vec();
        bad[0] ^= 0xFF; // magic
        assert!(decode_frame_header(FrameClass::RESPONSE, &bad, "peer").is_err());
        let mut bad = header.to_vec();
        bad[4] ^= 0xFF; // version
        assert!(decode_frame_header(FrameClass::RESPONSE, &bad, "peer").is_err());
    }

    #[test]
    fn wrong_class_is_rejected() {
        let (bytes, _) = encode_frame(FrameClass::TRANSACTIONS, b"x");
        let err = decode_frame(FrameClass::SHELF, &bytes, "f").unwrap_err();
        assert!(err.to_string().contains("file class"), "{err}");
    }

    #[test]
    fn errors_name_the_file() {
        let err = decode_frame(FrameClass::SHELF, b"", "store/slot_3.model").unwrap_err();
        assert!(err.to_string().contains("slot_3.model"), "{err}");
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = std::env::temp_dir().join(format!("demon-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!tmp_path(&path).exists(), "tmp file must not linger");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn framed_file_roundtrip_on_disk() {
        let dir = std::env::temp_dir().join(format!("demon-durable-f-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bin");
        let crc = write_framed(&path, FrameClass::SHELF, b"model state").unwrap();
        let (payload, crc2) = read_framed(&path, FrameClass::SHELF).unwrap();
        assert_eq!(payload, b"model state");
        assert_eq!(crc, crc2);
        // Missing file is an Io error (so shelf loaders can rebuild).
        let missing = read_framed(&dir.join("gone.bin"), FrameClass::SHELF).unwrap_err();
        assert!(matches!(missing, DemonError::Io(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        assert!(is_transient_io(&Error::from(ErrorKind::Interrupted)));
        assert!(is_transient_io(&Error::from(ErrorKind::TimedOut)));
        assert!(!is_transient_io(&Error::from(ErrorKind::NotFound)));
        assert!(!is_transient_io(&Error::from(ErrorKind::PermissionDenied)));
    }
}
