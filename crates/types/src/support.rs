//! Minimum-support thresholds.

use crate::{DemonError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated minimum-support threshold `κ` with `0 < κ < 1` (paper §3).
///
/// Support thresholds are *fractions* of the selected data, while the mining
/// code works with absolute counts; [`MinSupport::count_for`] performs the
/// conversion, rounding up so that `count/n ≥ κ` holds exactly for every
/// itemset that meets the absolute bound.
#[derive(Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct MinSupport(f64);

impl MinSupport {
    /// Validates `0 < κ < 1`.
    pub fn new(kappa: f64) -> Result<Self> {
        if kappa.is_finite() && 0.0 < kappa && kappa < 1.0 {
            Ok(MinSupport(kappa))
        } else {
            Err(DemonError::InvalidMinSupport(kappa))
        }
    }

    /// The threshold as a fraction.
    #[inline]
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Smallest absolute count that is frequent in a dataset of `n` records:
    /// `⌈κ·n⌉` (with a floor of 1 so the empty dataset stays degenerate-free).
    #[inline]
    pub fn count_for(self, n: u64) -> u64 {
        let raw = (self.0 * n as f64).ceil() as u64;
        raw.max(1)
    }
}

impl fmt::Display for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "κ={}", self.0)
    }
}

impl fmt::Debug for MinSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_open_interval() {
        assert!(MinSupport::new(0.01).is_ok());
        assert!(MinSupport::new(0.999).is_ok());
    }

    #[test]
    fn rejects_out_of_range() {
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN, f64::INFINITY] {
            assert!(MinSupport::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn count_for_rounds_up() {
        let k = MinSupport::new(0.01).unwrap();
        assert_eq!(k.count_for(1000), 10);
        assert_eq!(k.count_for(1001), 11); // 10.01 → 11
        assert_eq!(k.count_for(50), 1);
        assert_eq!(k.count_for(0), 1); // floor of 1
    }

    #[test]
    fn count_threshold_is_tight() {
        // Every count ≥ count_for(n) has fraction ≥ κ, and count_for(n)-1 < κ·n.
        let k = MinSupport::new(0.013).unwrap();
        for n in [1u64, 7, 100, 12345] {
            let c = k.count_for(n);
            assert!(c as f64 / n as f64 >= k.fraction() || n == 0);
            if c > 1 {
                assert!(((c - 1) as f64) < k.fraction() * n as f64);
            }
        }
    }
}
