//! Numeric points for the clustering machinery.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A d-dimensional point.
///
/// BIRCH's cluster features only ever need component-wise sums and squared
/// norms, so the point type stays a plain boxed slice of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Point(Box<[f64]>);

impl Point {
    /// Builds a point from its coordinates.
    pub fn new(coords: Vec<f64>) -> Self {
        Point(coords.into_boxed_slice())
    }

    /// The origin in `d` dimensions.
    pub fn origin(d: usize) -> Self {
        Point(vec![0.0; d].into_boxed_slice())
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Panics in debug builds when dimensionalities differ; the clustering
    /// code always works inside a single fixed-dimension block sequence.
    #[inline]
    pub fn dist2(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm2(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum()
    }
}

impl From<Vec<f64>> for Point {
    fn from(v: Vec<f64>) -> Self {
        Point::new(v)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.3}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_match_hand_computation() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(a.dist2(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.norm2(), 25.0);
    }

    #[test]
    fn origin_is_zero_vector() {
        let o = Point::origin(3);
        assert_eq!(o.coords(), &[0.0, 0.0, 0.0]);
        assert_eq!(o.dim(), 3);
        assert_eq!(o.norm2(), 0.0);
    }

    #[test]
    fn dist_to_self_is_zero() {
        let p = Point::new(vec![1.5, -2.5, 7.0]);
        assert_eq!(p.dist2(&p), 0.0);
    }

    #[test]
    fn debug_prints_rounded_coords() {
        let p = Point::new(vec![1.0, 2.25]);
        assert_eq!(format!("{p:?}"), "(1.000, 2.250)");
    }
}
