//! Itemsets: sorted, duplicate-free sets of items with the operations the
//! Apriori/BORDERS machinery needs (prefix join, subset enumeration).

use crate::Item;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of items, stored sorted ascending without duplicates.
///
/// The ordering invariant makes subset tests linear merges and lets the
/// classic *prefix join* of Apriori candidate generation (join two k-itemsets
/// sharing their first `k-1` items) operate on raw slices.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ItemSet(Box<[Item]>);

impl ItemSet {
    /// Builds an itemset, sorting and de-duplicating the input.
    pub fn new(mut items: Vec<Item>) -> Self {
        items.sort_unstable();
        items.dedup();
        ItemSet(items.into_boxed_slice())
    }

    /// The empty itemset.
    pub fn empty() -> Self {
        ItemSet(Box::new([]))
    }

    /// A singleton itemset.
    pub fn singleton(item: Item) -> Self {
        ItemSet(Box::new([item]))
    }

    /// Builds from a slice of raw ids (test/bench convenience).
    pub fn from_ids(ids: &[u32]) -> Self {
        ItemSet::new(ids.iter().copied().map(Item).collect())
    }

    /// The items, sorted ascending.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.0
    }

    /// Cardinality of the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether `item` is a member (binary search).
    #[inline]
    pub fn contains(&self, item: Item) -> bool {
        self.0.binary_search(&item).is_ok()
    }

    /// Whether `self ⊆ other` (linear merge over two sorted slices).
    pub fn is_subset_of(&self, other: &ItemSet) -> bool {
        sorted_subset(&self.0, &other.0)
    }

    /// Whether `self ⊂ other` (proper subset).
    pub fn is_proper_subset_of(&self, other: &ItemSet) -> bool {
        self.len() < other.len() && self.is_subset_of(other)
    }

    /// Set union, preserving sortedness.
    pub fn union(&self, other: &ItemSet) -> ItemSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut a, mut b) = (self.0.iter().peekable(), other.0.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&x), Some(&&y)) => {
                    use std::cmp::Ordering::*;
                    match x.cmp(&y) {
                        Less => {
                            out.push(x);
                            a.next();
                        }
                        Greater => {
                            out.push(y);
                            b.next();
                        }
                        Equal => {
                            out.push(x);
                            a.next();
                            b.next();
                        }
                    }
                }
                (Some(&&x), None) => {
                    out.push(x);
                    a.next();
                }
                (None, Some(&&y)) => {
                    out.push(y);
                    b.next();
                }
                (None, None) => break,
            }
        }
        ItemSet(out.into_boxed_slice())
    }

    /// The prefix join of Apriori candidate generation.
    ///
    /// If `self` and `other` are k-itemsets agreeing on their first `k-1`
    /// items, returns the (k+1)-itemset that extends the common prefix with
    /// both last items; otherwise returns `None`.
    pub fn prefix_join(&self, other: &ItemSet) -> Option<ItemSet> {
        let k = self.len();
        if k == 0 || other.len() != k {
            return None;
        }
        if self.0[..k - 1] != other.0[..k - 1] {
            return None;
        }
        let (x, y) = (self.0[k - 1], other.0[k - 1]);
        if x == y {
            return None;
        }
        let mut out = Vec::with_capacity(k + 1);
        out.extend_from_slice(&self.0[..k - 1]);
        if x < y {
            out.push(x);
            out.push(y);
        } else {
            out.push(y);
            out.push(x);
        }
        Some(ItemSet(out.into_boxed_slice()))
    }

    /// Extends the set with one item, returning `None` when already present.
    pub fn with_item(&self, item: Item) -> Option<ItemSet> {
        match self.0.binary_search(&item) {
            Ok(_) => None,
            Err(pos) => {
                let mut out = Vec::with_capacity(self.len() + 1);
                out.extend_from_slice(&self.0[..pos]);
                out.push(item);
                out.extend_from_slice(&self.0[pos..]);
                Some(ItemSet(out.into_boxed_slice()))
            }
        }
    }

    /// Iterates over all `(k-1)`-subsets of a k-itemset (each obtained by
    /// dropping one element). Used for the Apriori prune step and for
    /// negative-border bookkeeping.
    pub fn proper_maximal_subsets(&self) -> impl Iterator<Item = ItemSet> + '_ {
        (0..self.len()).map(move |skip| {
            let mut out = Vec::with_capacity(self.len() - 1);
            for (i, &it) in self.0.iter().enumerate() {
                if i != skip {
                    out.push(it);
                }
            }
            ItemSet(out.into_boxed_slice())
        })
    }

    /// All 2-subsets of the set (used by the ECUT+ materialization
    /// heuristic when decomposing an itemset into covered pairs).
    pub fn pairs(&self) -> impl Iterator<Item = (Item, Item)> + '_ {
        let s = &self.0;
        (0..s.len()).flat_map(move |i| (i + 1..s.len()).map(move |j| (s[i], s[j])))
    }
}

/// Linear-merge subset test over two sorted slices.
pub(crate) fn sorted_subset(needle: &[Item], hay: &[Item]) -> bool {
    if needle.len() > hay.len() {
        return false;
    }
    let mut h = hay.iter();
    'outer: for want in needle {
        for have in h.by_ref() {
            match have.cmp(want) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

impl From<Vec<Item>> for ItemSet {
    fn from(v: Vec<Item>) -> Self {
        ItemSet::new(v)
    }
}

impl FromIterator<Item> for ItemSet {
    fn from_iter<T: IntoIterator<Item = Item>>(iter: T) -> Self {
        ItemSet::new(iter.into_iter().collect())
    }
}

impl fmt::Display for ItemSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, item) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for ItemSet {
    // Forward to Display: keeps dumps of candidate lists readable in tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sorts_and_dedups() {
        let s = ItemSet::from_ids(&[3, 1, 3, 2]);
        assert_eq!(s.items(), ItemSet::from_ids(&[1, 2, 3]).items());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn subset_relations() {
        let a = ItemSet::from_ids(&[1, 3]);
        let b = ItemSet::from_ids(&[1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(a.is_proper_subset_of(&b));
        assert!(b.is_subset_of(&b));
        assert!(!b.is_proper_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(ItemSet::empty().is_subset_of(&a));
    }

    #[test]
    fn union_merges_sorted() {
        let a = ItemSet::from_ids(&[1, 4, 6]);
        let b = ItemSet::from_ids(&[2, 4, 9]);
        assert_eq!(a.union(&b), ItemSet::from_ids(&[1, 2, 4, 6, 9]));
        assert_eq!(a.union(&ItemSet::empty()), a);
    }

    #[test]
    fn prefix_join_joins_shared_prefix() {
        let a = ItemSet::from_ids(&[1, 2, 5]);
        let b = ItemSet::from_ids(&[1, 2, 7]);
        assert_eq!(a.prefix_join(&b), Some(ItemSet::from_ids(&[1, 2, 5, 7])));
        // Symmetric result regardless of argument order.
        assert_eq!(b.prefix_join(&a), Some(ItemSet::from_ids(&[1, 2, 5, 7])));
    }

    #[test]
    fn prefix_join_rejects_mismatched_prefix_or_size() {
        let a = ItemSet::from_ids(&[1, 2, 5]);
        let c = ItemSet::from_ids(&[1, 3, 7]);
        assert_eq!(a.prefix_join(&c), None);
        let d = ItemSet::from_ids(&[1, 2]);
        assert_eq!(a.prefix_join(&d), None);
        assert_eq!(a.prefix_join(&a), None);
        assert_eq!(ItemSet::empty().prefix_join(&ItemSet::empty()), None);
    }

    #[test]
    fn singleton_join_builds_pairs() {
        let a = ItemSet::singleton(Item(4));
        let b = ItemSet::singleton(Item(2));
        assert_eq!(a.prefix_join(&b), Some(ItemSet::from_ids(&[2, 4])));
    }

    #[test]
    fn with_item_inserts_in_order() {
        let a = ItemSet::from_ids(&[1, 5]);
        assert_eq!(a.with_item(Item(3)), Some(ItemSet::from_ids(&[1, 3, 5])));
        assert_eq!(a.with_item(Item(0)), Some(ItemSet::from_ids(&[0, 1, 5])));
        assert_eq!(a.with_item(Item(9)), Some(ItemSet::from_ids(&[1, 5, 9])));
        assert_eq!(a.with_item(Item(5)), None);
    }

    #[test]
    fn maximal_subsets_drop_one_each() {
        let s = ItemSet::from_ids(&[1, 2, 3]);
        let subs: Vec<_> = s.proper_maximal_subsets().collect();
        assert_eq!(
            subs,
            vec![
                ItemSet::from_ids(&[2, 3]),
                ItemSet::from_ids(&[1, 3]),
                ItemSet::from_ids(&[1, 2]),
            ]
        );
    }

    #[test]
    fn pairs_enumerates_all_2_subsets() {
        let s = ItemSet::from_ids(&[1, 2, 3]);
        let pairs: Vec<_> = s.pairs().collect();
        assert_eq!(
            pairs,
            vec![
                (Item(1), Item(2)),
                (Item(1), Item(3)),
                (Item(2), Item(3))
            ]
        );
    }

    #[test]
    fn display_formats_braced() {
        assert_eq!(ItemSet::from_ids(&[2, 1]).to_string(), "{i1 i2}");
        assert_eq!(ItemSet::empty().to_string(), "{}");
    }
}
