//! Wall-clock timestamps and block intervals.
//!
//! The web-trace experiments (paper §5.3) segment a 21-day request stream
//! into blocks of 4/6/8/12/24-hour granularity and describe the discovered
//! patterns in calendar terms ("12 Noon – 4 PM on all working days …").
//! A timestamp here is seconds since an arbitrary epoch; the [`crate::calendar`]
//! module turns it into (day, hour) coordinates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds since the (experiment-local) epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

/// Seconds in one hour.
pub const HOUR: u64 = 3600;
/// Seconds in one day.
pub const DAY: u64 = 24 * HOUR;

impl Timestamp {
    /// Builds a timestamp from whole days and hours past the epoch.
    pub fn from_day_hour(day: u64, hour: u64) -> Timestamp {
        Timestamp(day * DAY + hour * HOUR)
    }

    /// Seconds since epoch.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Whole days since epoch.
    #[inline]
    pub fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Hour of day, `0..24`.
    #[inline]
    pub fn hour(self) -> u64 {
        (self.0 % DAY) / HOUR
    }

    /// Timestamp advanced by `secs` seconds.
    #[inline]
    pub fn plus_secs(self, secs: u64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}+{:02}h", self.day(), self.hour())
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A half-open wall-clock interval `[start, end)` covered by one block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockInterval {
    /// Inclusive start of the interval.
    pub start: Timestamp,
    /// Exclusive end of the interval.
    pub end: Timestamp,
}

impl BlockInterval {
    /// Builds an interval; `start` must precede `end`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(start < end, "empty or inverted block interval");
        BlockInterval { start, end }
    }

    /// Interval length in seconds.
    #[inline]
    pub fn duration_secs(self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Whether `t` falls inside the half-open interval.
    #[inline]
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }
}

impl fmt::Debug for BlockInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_hour_roundtrip() {
        let t = Timestamp::from_day_hour(3, 14);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour(), 14);
        assert_eq!(t.secs(), 3 * DAY + 14 * HOUR);
    }

    #[test]
    fn plus_secs_advances() {
        let t = Timestamp::from_day_hour(0, 23).plus_secs(2 * HOUR);
        assert_eq!(t.day(), 1);
        assert_eq!(t.hour(), 1);
    }

    #[test]
    fn interval_contains_half_open() {
        let iv = BlockInterval::new(Timestamp(100), Timestamp(200));
        assert!(iv.contains(Timestamp(100)));
        assert!(iv.contains(Timestamp(199)));
        assert!(!iv.contains(Timestamp(200)));
        assert!(!iv.contains(Timestamp(99)));
        assert_eq!(iv.duration_secs(), 100);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn interval_rejects_inversion() {
        let _ = BlockInterval::new(Timestamp(5), Timestamp(5));
    }

    #[test]
    fn display_shows_day_and_hour() {
        assert_eq!(Timestamp::from_day_hour(2, 5).to_string(), "d2+05h");
    }
}
