//! Blocks: the unit of systematic data evolution.

use crate::{BlockInterval, Point, Transaction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a block in the (conceptually infinite) sequence
/// `D_1, D_2, …`. Identifiers are natural numbers increasing in arrival
/// order (paper §2.1); we number from **1** to match the paper's notation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct BlockId(pub u64);

impl BlockId {
    /// The first block identifier.
    pub const FIRST: BlockId = BlockId(1);

    /// The raw identifier value.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// The identifier of the next block to arrive.
    #[inline]
    pub fn next(self) -> BlockId {
        BlockId(self.0 + 1)
    }

    /// Zero-based position of this block in the sequence.
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!(self.0 >= 1, "block ids are 1-based");
        (self.0 - 1) as usize
    }
}

impl From<u64> for BlockId {
    #[inline]
    fn from(v: u64) -> Self {
        BlockId(v)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// A block of records added to the database in one evolution step.
///
/// A block is immutable after construction: systematic evolution adds and
/// retires whole blocks, never edits records in place. The optional
/// [`BlockInterval`] records the wall-clock span covered by the block
/// (irregular spans are allowed — paper §2.1) and drives the calendar
/// reporting in the pattern-detection experiments.
#[derive(Clone, Serialize, Deserialize)]
pub struct Block<T> {
    id: BlockId,
    interval: Option<BlockInterval>,
    records: Vec<T>,
}

/// A block of market-basket transactions.
pub type TxBlock = Block<Transaction>;
/// A block of numeric points.
pub type PointBlock = Block<Point>;

impl<T> Block<T> {
    /// Builds a block with no wall-clock interval.
    pub fn new(id: BlockId, records: Vec<T>) -> Self {
        Block {
            id,
            interval: None,
            records,
        }
    }

    /// Builds a block covering the wall-clock interval `interval`.
    pub fn with_interval(id: BlockId, interval: BlockInterval, records: Vec<T>) -> Self {
        Block {
            id,
            interval: Some(interval),
            records,
        }
    }

    /// The block identifier.
    #[inline]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// The wall-clock interval covered by the block, if known.
    #[inline]
    pub fn interval(&self) -> Option<BlockInterval> {
        self.interval
    }

    /// The records in the block.
    #[inline]
    pub fn records(&self) -> &[T] {
        &self.records
    }

    /// Number of records.
    #[inline]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the block holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.records.iter()
    }

    /// Consumes the block, yielding its records.
    pub fn into_records(self) -> Vec<T> {
        self.records
    }

    /// Merges several blocks into one coarser block — the paper's time
    /// hierarchy (§2.1: "we just merge all blocks that fall under the
    /// same parent"). Records concatenate in block order; the interval
    /// spans from the earliest start to the latest end when every input
    /// carries one.
    pub fn merge(id: BlockId, blocks: Vec<Block<T>>) -> Block<T> {
        assert!(!blocks.is_empty(), "cannot merge zero blocks");
        let interval = blocks
            .iter()
            .map(|b| b.interval())
            .collect::<Option<Vec<_>>>()
            .map(|ivs| {
                let start = ivs.iter().map(|iv| iv.start).min().expect("non-empty");
                let end = ivs.iter().map(|iv| iv.end).max().expect("non-empty");
                BlockInterval::new(start, end)
            });
        let mut records = Vec::with_capacity(blocks.iter().map(Block::len).sum());
        for b in blocks {
            records.extend(b.records);
        }
        Block {
            id,
            interval,
            records,
        }
    }
}

impl<'a, T> IntoIterator for &'a Block<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl<T> fmt::Debug for Block<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} records]", self.id, self.records.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Timestamp;

    #[test]
    fn block_id_is_one_based() {
        assert_eq!(BlockId::FIRST.value(), 1);
        assert_eq!(BlockId::FIRST.index(), 0);
        assert_eq!(BlockId(3).next(), BlockId(4));
        assert_eq!(BlockId(3).index(), 2);
    }

    #[test]
    fn block_exposes_records_and_len() {
        let b: Block<u32> = Block::new(BlockId(1), vec![10, 20, 30]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.records(), &[10, 20, 30]);
        assert_eq!(b.iter().copied().sum::<u32>(), 60);
        assert_eq!(b.interval(), None);
    }

    #[test]
    fn block_with_interval_keeps_it() {
        let iv = BlockInterval::new(Timestamp(0), Timestamp(3600));
        let b: Block<u32> = Block::with_interval(BlockId(2), iv, vec![]);
        assert!(b.is_empty());
        assert_eq!(b.interval(), Some(iv));
    }

    #[test]
    fn into_records_consumes() {
        let b: Block<u32> = Block::new(BlockId(1), vec![1, 2]);
        assert_eq!(b.into_records(), vec![1, 2]);
    }

    #[test]
    fn merge_concatenates_and_spans_intervals() {
        let iv = |a: u64, b: u64| BlockInterval::new(Timestamp(a), Timestamp(b));
        let b1: Block<u32> = Block::with_interval(BlockId(1), iv(0, 100), vec![1, 2]);
        let b2: Block<u32> = Block::with_interval(BlockId(2), iv(100, 200), vec![3]);
        let merged = Block::merge(BlockId(10), vec![b1, b2]);
        assert_eq!(merged.id(), BlockId(10));
        assert_eq!(merged.records(), &[1, 2, 3]);
        assert_eq!(merged.interval(), Some(iv(0, 200)));
    }

    #[test]
    fn merge_without_intervals_yields_none() {
        let b1: Block<u32> = Block::new(BlockId(1), vec![1]);
        let b2: Block<u32> =
            Block::with_interval(BlockId(2), BlockInterval::new(Timestamp(0), Timestamp(1)), vec![2]);
        let merged = Block::merge(BlockId(3), vec![b1, b2]);
        assert_eq!(merged.interval(), None);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn merge_rejects_empty_input() {
        let _: Block<u32> = Block::merge(BlockId(1), vec![]);
    }

    #[test]
    fn debug_is_compact() {
        let b: Block<u32> = Block::new(BlockId(5), vec![1]);
        assert_eq!(format!("{b:?}"), "D5[1 records]");
    }
}
