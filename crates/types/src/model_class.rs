//! The model-class tag shared by the WAL, the wire protocol, and the
//! serving daemon.
//!
//! DEMON is generic over the maintained model class (§3.2: GEMM works
//! for "any class of data mining models"), and so is the serving stack:
//! one daemon binary serves frequent itemsets, BIRCH+ cluster trees, or
//! classification trees depending on `--model`. Every durable or
//! wire-visible artifact that embeds model-specific bytes — WAL records,
//! `IngestBlock` requests, snapshot manifests — carries a one-byte
//! [`ModelClass`] tag so a daemon can *reject* foreign payloads with a
//! typed error instead of misinterpreting them.
//!
//! Tag values are part of the on-disk format and must never be reused.

use std::fmt;

/// The class of model a daemon maintains and its artifacts encode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ModelClass {
    /// Frequent itemsets maintained by BORDERS (`ItemsetMaintainer`).
    Itemsets = 1,
    /// BIRCH+ CF-trees over point blocks (`ClusterMaintainer`).
    Clusters = 2,
    /// Refit decision trees over labeled blocks (`TreeMaintainer`).
    Trees = 3,
    /// Incremental-DBSCAN density models over point blocks
    /// (`DbscanMaintainer`); the only class whose MRW window maintenance
    /// is deletion-based rather than refit-based.
    Density = 4,
}

impl ModelClass {
    /// Every model class, in tag order.
    pub const ALL: [ModelClass; 4] = [
        ModelClass::Itemsets,
        ModelClass::Clusters,
        ModelClass::Trees,
        ModelClass::Density,
    ];

    /// The one-byte wire/WAL tag.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Decodes a wire/WAL tag. Unknown tags are `None` — callers turn
    /// that into a typed corruption or mismatch error naming the byte.
    pub fn from_tag(tag: u8) -> Option<ModelClass> {
        match tag {
            1 => Some(ModelClass::Itemsets),
            2 => Some(ModelClass::Clusters),
            3 => Some(ModelClass::Trees),
            4 => Some(ModelClass::Density),
            _ => None,
        }
    }

    /// The CLI / stats-JSON name (`itemsets`, `clusters`, `trees`,
    /// `dbscan`).
    pub fn name(self) -> &'static str {
        match self {
            ModelClass::Itemsets => "itemsets",
            ModelClass::Clusters => "clusters",
            ModelClass::Trees => "trees",
            ModelClass::Density => "dbscan",
        }
    }

    /// Parses a CLI name, case-sensitively.
    pub fn parse(s: &str) -> Option<ModelClass> {
        ModelClass::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Renders a possibly-unknown tag for error messages: the class name
    /// when the tag is known, `class tag <n>` otherwise.
    pub fn describe_tag(tag: u8) -> String {
        match ModelClass::from_tag(tag) {
            Some(c) => c.name().to_string(),
            None => format!("class tag {tag}"),
        }
    }
}

impl fmt::Display for ModelClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip_and_unknowns_are_rejected() {
        for class in ModelClass::ALL {
            assert_eq!(ModelClass::from_tag(class.tag()), Some(class));
            assert_eq!(ModelClass::parse(class.name()), Some(class));
            assert_eq!(class.to_string(), class.name());
        }
        assert_eq!(ModelClass::from_tag(0), None);
        assert_eq!(ModelClass::from_tag(9), None);
        assert_eq!(ModelClass::parse("Itemsets"), None);
        assert_eq!(ModelClass::describe_tag(2), "clusters");
        assert_eq!(ModelClass::describe_tag(7), "class tag 7");
    }
}
