//! Core data types shared by every crate in the DEMON workspace.
//!
//! The DEMON framework (Ganti, Gehrke, Ramakrishnan; ICDE 2000) mines
//! *systematically evolving* data: a database that grows by whole **blocks**
//! of records at a time. This crate defines the vocabulary used throughout
//! the reproduction:
//!
//! * [`Item`], [`Tid`], [`Transaction`] and [`ItemSet`] — the market-basket
//!   vocabulary used by the frequent-itemset machinery;
//! * [`Point`] — the numeric-vector record used by the clustering machinery;
//! * [`Block`] and [`BlockId`] — a batch of records added to the database in
//!   one evolution step, together with its logical position in the sequence;
//! * [`Timestamp`] and the [`calendar`] helpers — wall-clock structure for
//!   the web-trace experiments (day-of-week, hour-of-day, block granularity);
//! * [`MinSupport`] — a validated minimum-support threshold `0 < κ < 1`;
//! * [`DemonError`] — the shared error type;
//! * [`durable`] — crash-safe file primitives (atomic writes, framed
//!   checksummed files) shared by the store and GEMM's model shelf;
//! * [`parallel`] — the deterministic parallel-execution layer
//!   ([`Parallelism`] plus order-preserving sharding primitives) used by
//!   every hot mining path;
//! * [`obs`] — the observability layer (operation counters, histograms,
//!   span timers, JSONL event log) threaded through every hot path and
//!   surfaced by `demon-cli --stats` / `--trace-out`;
//! * [`wal`] — the write-ahead-log codec and generation layout behind
//!   `demon-serve`'s fsync-before-ack durability.
//!
//! Records are deliberately simple owned values: a block, once formed, is
//! immutable (the paper's "systematic block evolution" — records are never
//! updated in place, only whole blocks are added or retired).
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §2 | systematic block evolution | [`Block`], [`BlockId`] |
//! | §2 | market-basket records | [`Item`], [`Tid`], [`Transaction`], [`ItemSet`] |
//! | §2 | minimum support κ | [`MinSupport`] |
//! | §3.1.2 | numeric records for BIRCH | [`Point`] |
//! | §5 | web-trace calendar structure | [`Timestamp`], [`calendar`] |
//! | §3.2 ("may run in parallel") | off-line update parallelism | [`parallel`] |
//! | — (engineering) | crash-safe persistence primitives | [`durable`] |
//! | — (engineering) | metrics, spans, event log | [`obs`] |
//! | — (engineering) | durable serving (WAL) | [`wal`] |
//!
//! # Example
//!
//! ```
//! use demon_types::{Block, BlockId, Item, ItemSet, MinSupport, Tid, Transaction};
//!
//! let tx = Transaction::new(Tid(1), vec![Item(3), Item(1), Item(3)]);
//! assert_eq!(tx.items(), &[Item(1), Item(3)]); // sorted, de-duplicated
//!
//! let pattern = ItemSet::from_ids(&[1, 3]);
//! assert!(tx.contains_all(pattern.items()));
//!
//! let block = Block::new(BlockId(1), vec![tx]);
//! assert_eq!(block.len(), 1);
//!
//! let minsup = MinSupport::new(0.01)?;
//! assert_eq!(minsup.count_for(1000), 10); // ⌈κ·n⌉
//! # Ok::<(), demon_types::DemonError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod block;
pub mod calendar;
pub mod durable;
mod error;
pub mod hash;
mod item;
mod itemset;
mod model_class;
pub mod obs;
pub mod parallel;
mod point;
mod support;
pub mod timestamp;
mod transaction;
pub mod wal;

pub use block::{Block, BlockId, PointBlock, TxBlock};
pub use parallel::Parallelism;
pub use error::DemonError;
pub use hash::{FastMap, FastSet};
pub use item::Item;
pub use itemset::ItemSet;
pub use model_class::ModelClass;
pub use point::Point;
pub use support::MinSupport;
pub use timestamp::{BlockInterval, Timestamp};
pub use transaction::{Tid, Transaction};

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, DemonError>;
