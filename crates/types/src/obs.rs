//! Observability: operation counters, log₂ histograms, scoped span
//! timers, and a structured JSONL event log — all behind one global
//! on/off switch that costs a single relaxed atomic load when disabled.
//!
//! # Design
//!
//! The recorder is process-global, like [`crate::parallel::set_global`]:
//! hot paths deep inside the mining kernels cannot thread a handle
//! through every call without distorting the APIs the paper describes,
//! so they call [`add`]/[`incr`]/[`span`] directly and the functions
//! no-op unless [`enable`] ran. Every recording entry point starts with
//! `if !is_enabled() { return; }` on a `Relaxed` load, which inlines to
//! a load-and-branch — cheap enough to leave in release hot loops
//! (bench-guarded: disabled-recorder medians must stay within noise of
//! a build without any instrumentation).
//!
//! # Determinism contract
//!
//! The workspace guarantees bit-identical results at any thread count,
//! and the recorder is held to the same standard:
//!
//! * **Counters** ([`Counter`]) only measure quantities whose *totals*
//!   are independent of sharding — candidates probed, intersections
//!   performed, border promotions. They are accumulated with relaxed
//!   atomic adds, which commute, so the totals are equal at 1, 2 or 8
//!   threads (asserted by `tests/determinism.rs`).
//! * **Histograms** ([`Hist`]) hold the quantities that legitimately
//!   *do* depend on the thread count (shard sizes, region wall-clock):
//!   they are reported but never part of the invariance contract.
//! * **Events** are only emitted from outside parallel regions (span
//!   guards check [`crate::parallel::in_parallel_region`]), so the
//!   JSONL event *sequence* is deterministic; wall-clock durations in
//!   the payloads of course vary run to run.
//!
//! # Event schema
//!
//! One JSON object per line, always with `"seq"` (0-based emission
//! index) and `"type"`. See `DESIGN.md` § Observability for the full
//! catalog; the shapes are:
//!
//! ```json
//! {"seq":0,"type":"span_begin","name":"mine"}
//! {"seq":1,"type":"span_end","name":"mine","us":1234}
//! {"seq":2,"type":"counters","candidates_probed":77, ...}
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The catalog of operation counters. Every counter measures a quantity
/// whose total is independent of the thread count (see the module docs
/// for why that restriction exists).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Candidate itemsets whose support was asked for (any backend).
    CandidatesProbed,
    /// TID-list intersections performed by ECUT / ECUT+.
    Intersections,
    /// Pairwise intersections resolved by the naive two-pointer merge
    /// kernel (comparable list lengths, sparse overlap window).
    IntersectMerge,
    /// Pairwise intersections resolved by the galloping kernel (one
    /// list much shorter than the other).
    IntersectGallop,
    /// Pairwise intersections resolved by the u64-bitset-chunk kernel
    /// (dense overlap window).
    IntersectBitset,
    /// TID entries read while intersecting or scanning (8 bytes each).
    TidsScanned,
    /// Transactions visited by the PT-Scan backend.
    TxScanned,
    /// Bytes of encoded block payload read or written by the store codec.
    CodecBytes,
    /// Itemsets promoted across the negative border (infrequent → frequent).
    BorderPromotions,
    /// Itemsets demoted across the negative border (frequent → infrequent).
    BorderDemotions,
    /// GEMM future-model reads answered from the shelf.
    ShelfHits,
    /// GEMM future-model reads that had to rebuild from the block stream.
    ShelfMisses,
    /// GEMM window advances served by projecting an existing model.
    GemmProjections,
    /// GEMM window advances that shifted/rebuilt model slots.
    GemmShifts,
    /// Bytes written to the disk shelf.
    ShelfBytesWritten,
    /// Bytes read back from the disk shelf.
    ShelfBytesRead,
    /// CF-tree leaf-entry insertions (BIRCH phase 1).
    CfInserts,
    /// CF-tree node splits.
    CfSplits,
    /// CF-tree rebuilds (threshold escalation).
    CfRebuilds,
    /// BIRCH phase-2 refinement iterations.
    Phase2Iterations,
    /// FOCUS bootstrap resamples drawn.
    BootstrapResamples,
    /// Parallel regions entered (`par_ranges` / `par_for_each_mut`).
    ParallelRegions,
    /// Block-store reads answered from the resident set.
    StoreHits,
    /// Block-store reads that had to load a spilled block from disk.
    StoreMisses,
    /// Blocks evicted from a block store's resident set.
    StoreEvictions,
    /// Bytes written to block-store spill files.
    StoreBytesSpilled,
    /// High-water mark of resident block-store bytes (recorded with
    /// [`record_max`], not accumulated).
    StoreBytesResident,
    /// Requests served by the `demon-serve` daemon (any verb).
    ServeRequests,
    /// Request payload bytes received by the daemon (frame headers included).
    ServeBytesIn,
    /// Response bytes sent by the daemon (frame headers included).
    ServeBytesOut,
    /// High-water mark of the daemon's ingest-queue depth (recorded with
    /// [`record_max`], not accumulated).
    ServeQueueDepth,
    /// Ingest requests rejected because the bounded queue stayed full past
    /// the backpressure deadline (or arrived after shutdown began).
    ServeRejects,
    /// Records appended to the write-ahead log.
    WalAppends,
    /// Bytes appended to the write-ahead log (frame headers included).
    WalBytes,
    /// fsyncs issued by the write-ahead log (appends and rotations).
    WalFsyncs,
    /// WAL records replayed into the monitor during startup recovery
    /// (duplicates of the snapshot are skipped and not counted).
    WalReplays,
    /// Torn WAL tails dropped during recovery (truncated or corrupt
    /// final records; at most one per WAL file read).
    WalTornTails,
    /// Blocks routed to and applied by a serving shard (sharded daemon;
    /// the total equals the blocks ingested regardless of shard count).
    ServeShardIngests,
    /// Queries answered from an immutable shard-replica snapshot
    /// (sharded daemon; the total is shard-count independent).
    ServeShardQueries,
    /// Epoch-replica pointer flips published by the sharded daemon's
    /// sequencer (one per applied block, plus the recovery publish).
    ServeReplicaSwaps,
    /// High-water mark of the block-count spread between the fullest and
    /// the emptiest serving shard (recorded with [`record_max`], not
    /// accumulated) — the router's imbalance gauge.
    ServeShardImbalance,
    /// Replica model-JSON renders performed lazily on the first
    /// `QueryModel` hit of an epoch (replicas are published with the
    /// JSON deferred; epochs nobody queries never pay the render).
    ServeReplicaLazyRenders,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 42] = [
        Counter::CandidatesProbed,
        Counter::Intersections,
        Counter::IntersectMerge,
        Counter::IntersectGallop,
        Counter::IntersectBitset,
        Counter::TidsScanned,
        Counter::TxScanned,
        Counter::CodecBytes,
        Counter::BorderPromotions,
        Counter::BorderDemotions,
        Counter::ShelfHits,
        Counter::ShelfMisses,
        Counter::GemmProjections,
        Counter::GemmShifts,
        Counter::ShelfBytesWritten,
        Counter::ShelfBytesRead,
        Counter::CfInserts,
        Counter::CfSplits,
        Counter::CfRebuilds,
        Counter::Phase2Iterations,
        Counter::BootstrapResamples,
        Counter::ParallelRegions,
        Counter::StoreHits,
        Counter::StoreMisses,
        Counter::StoreEvictions,
        Counter::StoreBytesSpilled,
        Counter::StoreBytesResident,
        Counter::ServeRequests,
        Counter::ServeBytesIn,
        Counter::ServeBytesOut,
        Counter::ServeQueueDepth,
        Counter::ServeRejects,
        Counter::WalAppends,
        Counter::WalBytes,
        Counter::WalFsyncs,
        Counter::WalReplays,
        Counter::WalTornTails,
        Counter::ServeShardIngests,
        Counter::ServeShardQueries,
        Counter::ServeReplicaSwaps,
        Counter::ServeShardImbalance,
        Counter::ServeReplicaLazyRenders,
    ];

    /// The snake_case name used in `--stats` tables, JSONL events and
    /// the `BENCH_*.json` op-count section.
    pub fn name(self) -> &'static str {
        match self {
            Counter::CandidatesProbed => "candidates_probed",
            Counter::Intersections => "intersections",
            Counter::IntersectMerge => "intersect.merge",
            Counter::IntersectGallop => "intersect.gallop",
            Counter::IntersectBitset => "intersect.bitset",
            Counter::TidsScanned => "tids_scanned",
            Counter::TxScanned => "tx_scanned",
            Counter::CodecBytes => "codec_bytes",
            Counter::BorderPromotions => "border_promotions",
            Counter::BorderDemotions => "border_demotions",
            Counter::ShelfHits => "shelf_hits",
            Counter::ShelfMisses => "shelf_misses",
            Counter::GemmProjections => "gemm_projections",
            Counter::GemmShifts => "gemm_shifts",
            Counter::ShelfBytesWritten => "shelf_bytes_written",
            Counter::ShelfBytesRead => "shelf_bytes_read",
            Counter::CfInserts => "cf_inserts",
            Counter::CfSplits => "cf_splits",
            Counter::CfRebuilds => "cf_rebuilds",
            Counter::Phase2Iterations => "phase2_iterations",
            Counter::BootstrapResamples => "bootstrap_resamples",
            Counter::ParallelRegions => "parallel_regions",
            Counter::StoreHits => "store.hits",
            Counter::StoreMisses => "store.misses",
            Counter::StoreEvictions => "store.evictions",
            Counter::StoreBytesSpilled => "store.bytes_spilled",
            Counter::StoreBytesResident => "store.bytes_resident",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeBytesIn => "serve.bytes_in",
            Counter::ServeBytesOut => "serve.bytes_out",
            Counter::ServeQueueDepth => "serve.queue_depth",
            Counter::ServeRejects => "serve.rejects",
            Counter::WalAppends => "wal.appends",
            Counter::WalBytes => "wal.bytes",
            Counter::WalFsyncs => "wal.fsyncs",
            Counter::WalReplays => "wal.replays",
            Counter::WalTornTails => "wal.torn_tails",
            Counter::ServeShardIngests => "serve.shard.ingests",
            Counter::ServeShardQueries => "serve.shard.queries",
            Counter::ServeReplicaSwaps => "serve.shard.replica_swaps",
            Counter::ServeShardImbalance => "serve.shard.imbalance",
            Counter::ServeReplicaLazyRenders => "serve.replica_lazy_renders",
        }
    }
}

/// Histograms for quantities that depend on the thread count or on
/// wall-clock time — reported, but outside the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Items per shard of a parallel region.
    ShardItems,
    /// Wall-clock microseconds per parallel region (fork to join).
    RegionMicros,
    /// Wall-clock microseconds per completed span.
    SpanMicros,
}

impl Hist {
    /// Every histogram, in display order.
    pub const ALL: [Hist; 3] = [Hist::ShardItems, Hist::RegionMicros, Hist::SpanMicros];

    /// The snake_case name used in `--stats` tables.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ShardItems => "shard_items",
            Hist::RegionMicros => "region_micros",
            Hist::SpanMicros => "span_micros",
        }
    }
}

const N_COUNTERS: usize = Counter::ALL.len();
const N_HISTS: usize = Hist::ALL.len();
/// log₂ buckets: bucket `i` holds values in `[2^(i-1), 2^i)`, bucket 0
/// holds zero. 65 buckets cover the full `u64` range.
const N_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; N_COUNTERS] = [ZERO; N_COUNTERS];
static HIST_BUCKETS: [[AtomicU64; N_BUCKETS]; N_HISTS] =
    [const { [ZERO; N_BUCKETS] }; N_HISTS];
static HIST_SUM: [AtomicU64; N_HISTS] = [ZERO; N_HISTS];
static HIST_COUNT: [AtomicU64; N_HISTS] = [ZERO; N_HISTS];

static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());

/// Turns the recorder on. Counters start accumulating and spans start
/// emitting events. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Already-accumulated state is kept until
/// [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is currently on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes every counter and histogram and discards buffered events.
/// Does not change the enabled flag.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for h in &HIST_BUCKETS {
        for b in h {
            b.store(0, Ordering::Relaxed);
        }
    }
    for s in &HIST_SUM {
        s.store(0, Ordering::Relaxed);
    }
    for c in &HIST_COUNT {
        c.store(0, Ordering::Relaxed);
    }
    EVENTS.lock().expect("obs event sink poisoned").clear();
}

/// Adds `n` to a counter. A relaxed load-and-branch when disabled.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if !is_enabled() {
        return;
    }
    COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Adds 1 to a counter.
#[inline]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Raises a counter to `value` if `value` is larger — a monotone gauge
/// (used for high-water marks like `store.bytes_resident`). `fetch_max`
/// commutes, so the determinism contract holds as long as the recorded
/// values themselves are sharding-independent.
#[inline]
pub fn record_max(counter: Counter, value: u64) {
    if !is_enabled() {
        return;
    }
    COUNTERS[counter as usize].fetch_max(value, Ordering::Relaxed);
}

/// Records one observation into a histogram.
#[inline]
pub fn observe(hist: Hist, value: u64) {
    if !is_enabled() {
        return;
    }
    let bucket = match value {
        0 => 0,
        v => 64 - v.leading_zeros() as usize,
    };
    HIST_BUCKETS[hist as usize][bucket].fetch_add(1, Ordering::Relaxed);
    HIST_SUM[hist as usize].fetch_add(value, Ordering::Relaxed);
    HIST_COUNT[hist as usize].fetch_add(1, Ordering::Relaxed);
}

/// The current value of one counter.
pub fn counter_value(counter: Counter) -> u64 {
    COUNTERS[counter as usize].load(Ordering::Relaxed)
}

/// A point-in-time copy of every counter and histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-histogram summaries, in [`Hist::ALL`] order.
    pub hists: Vec<HistSummary>,
}

/// Summary of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSummary {
    /// The histogram's snake_case name.
    pub name: &'static str,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// `(bucket_upper_bound, count)` for every non-empty log₂ bucket.
    pub buckets: Vec<(u64, u64)>,
}

impl Snapshot {
    /// The value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// Sum of all counter values — a quick "did anything record" probe.
    pub fn total(&self) -> u64 {
        self.counters.iter().map(|&(_, v)| v).sum()
    }
}

/// Captures the current counters and histograms.
pub fn snapshot() -> Snapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name(), counter_value(c)))
        .collect();
    let hists = Hist::ALL
        .iter()
        .map(|&h| {
            let i = h as usize;
            let buckets = HIST_BUCKETS[i]
                .iter()
                .enumerate()
                .filter_map(|(b, cell)| {
                    let count = cell.load(Ordering::Relaxed);
                    (count > 0).then(|| (bucket_bound(b), count))
                })
                .collect();
            HistSummary {
                name: h.name(),
                count: HIST_COUNT[i].load(Ordering::Relaxed),
                sum: HIST_SUM[i].load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect();
    Snapshot { counters, hists }
}

/// Inclusive upper bound of log₂ bucket `b` (`0` for the zero bucket).
fn bucket_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// Renders the human-readable stats table (`demon-cli --stats` prints
/// this to stderr). Zero-valued counters are omitted.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::from("--- obs counters ---\n");
    let width = snap
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.hists.iter().map(|h| h.name.len()))
        .max()
        .unwrap_or(0);
    for &(name, value) in &snap.counters {
        if value > 0 {
            out.push_str(&format!("{name:<width$}  {value}\n"));
        }
    }
    let live: Vec<&HistSummary> = snap.hists.iter().filter(|h| h.count > 0).collect();
    if !live.is_empty() {
        out.push_str("--- obs histograms (count / sum / mean) ---\n");
        for h in live {
            let mean = h.sum as f64 / h.count as f64;
            out.push_str(&format!(
                "{:<width$}  {} / {} / {mean:.1}\n",
                h.name, h.count, h.sum
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Events and spans
// ---------------------------------------------------------------------

/// One structured event, rendered as one JSONL line.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// 0-based emission index.
    pub seq: u64,
    /// Event type: `span_begin`, `span_end`, `counters`, or a custom tag.
    pub kind: &'static str,
    /// Event payload, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A JSON-renderable event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"seq\":{},\"type\":\"{}\"", self.seq, self.kind);
        for (key, value) in &self.fields {
            out.push_str(&format!(",\"{key}\":"));
            match value {
                FieldValue::U64(v) => out.push_str(&v.to_string()),
                FieldValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
                FieldValue::F64(_) => out.push_str("null"),
                FieldValue::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\t' => out.push_str("\\t"),
                            '\r' => out.push_str("\\r"),
                            c if (c as u32) < 0x20 => {
                                out.push_str(&format!("\\u{:04x}", c as u32));
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
            }
        }
        out.push('}');
        out
    }
}

/// Emits a structured event. Dropped (silently) when the recorder is
/// disabled **or** the calling thread is inside a parallel region — the
/// event sequence must not depend on thread interleaving.
pub fn emit(kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !is_enabled() || crate::parallel::in_parallel_region() {
        return;
    }
    let mut events = EVENTS.lock().expect("obs event sink poisoned");
    let seq = events.len() as u64;
    events.push(Event { seq, kind, fields });
}

/// Takes every buffered event, leaving the sink empty.
pub fn drain_events() -> Vec<Event> {
    std::mem::take(&mut *EVENTS.lock().expect("obs event sink poisoned"))
}

/// Renders all buffered events as JSONL (one event per line, trailing
/// newline included when non-empty) without draining them.
pub fn events_jsonl() -> String {
    let events = EVENTS.lock().expect("obs event sink poisoned");
    let mut out = String::new();
    for e in events.iter() {
        out.push_str(&e.to_json());
        out.push('\n');
    }
    out
}

/// An RAII span timer: emits `span_begin` on creation and `span_end`
/// (with elapsed microseconds) on drop, and records the duration into
/// [`Hist::SpanMicros`]. Inert when the recorder is disabled; begin/end
/// events are suppressed inside parallel regions (the duration is still
/// observed into the histogram).
#[must_use = "a span measures the scope it is bound to"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Instant,
    armed: bool,
}

/// Opens a span. Bind it (`let _span = obs::span("mine");`) so it drops
/// at scope exit.
pub fn span(name: &'static str) -> Span {
    let armed = is_enabled();
    if armed {
        emit("span_begin", vec![("name", FieldValue::Str(name.to_string()))]);
    }
    Span { name, start: Instant::now(), armed }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let us = self.start.elapsed().as_micros() as u64;
        observe(Hist::SpanMicros, us);
        emit(
            "span_end",
            vec![
                ("name", FieldValue::Str(self.name.to_string())),
                ("us", FieldValue::U64(us)),
            ],
        );
    }
}

/// Emits a `counters` event carrying every non-zero counter — the
/// conventional final line of a `--trace-out` file.
pub fn emit_counters_event() {
    let snap = snapshot();
    let fields: Vec<(&'static str, FieldValue)> = snap
        .counters
        .iter()
        .filter(|&&(_, v)| v > 0)
        .map(|&(name, v)| (name, FieldValue::U64(v)))
        .collect();
    emit("counters", fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counters, histograms and events share process-global state, so a
    /// single test owns the whole lifecycle (the rest of the suite runs
    /// with the recorder disabled).
    #[test]
    fn recorder_lifecycle() {
        // Disabled: everything is a no-op.
        reset();
        add(Counter::Intersections, 5);
        observe(Hist::SpanMicros, 10);
        emit("custom", vec![("k", 1u64.into())]);
        {
            let _span = span("noop");
        }
        assert_eq!(counter_value(Counter::Intersections), 0);
        assert_eq!(snapshot().total(), 0);
        assert!(drain_events().is_empty());

        // Enabled: counters accumulate, spans nest, events buffer.
        enable();
        incr(Counter::CandidatesProbed);
        add(Counter::CandidatesProbed, 2);
        observe(Hist::ShardItems, 0);
        observe(Hist::ShardItems, 1000);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        emit_counters_event();
        let snap = snapshot();
        assert_eq!(snap.counter("candidates_probed"), Some(3));
        let shard = &snap.hists[Hist::ShardItems as usize];
        assert_eq!(shard.count, 2);
        assert_eq!(shard.sum, 1000);
        assert_eq!(shard.buckets.len(), 2); // zero bucket + 1000's bucket

        let jsonl = events_jsonl();
        let events = drain_events();
        // begin(outer) begin(inner) end(inner) end(outer) counters
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, "span_begin");
        assert_eq!(events[2].kind, "span_end");
        assert_eq!(events[4].kind, "counters");
        assert!(events.iter().enumerate().all(|(i, e)| e.seq == i as u64));
        assert_eq!(jsonl.lines().count(), 5);
        for line in jsonl.lines() {
            let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("seq").is_some() && v.get("type").is_some());
        }

        let table = render_table(&snapshot());
        assert!(table.contains("candidates_probed"));
        assert!(table.contains("shard_items"));

        disable();
        reset();
        assert_eq!(snapshot().total(), 0);
    }

    #[test]
    fn event_json_escapes_strings() {
        let e = Event {
            seq: 0,
            kind: "x",
            fields: vec![("s", FieldValue::Str("a\"b\\c\nd".into()))],
        };
        assert_eq!(e.to_json(), r#"{"seq":0,"type":"x","s":"a\"b\\c\nd"}"#);
    }
}
