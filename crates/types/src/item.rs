//! Items: the literals of the market-basket domain.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single item (literal) from the item universe `I = {i_1, …, i_n}`.
///
/// Items are dense `u32` identifiers. The synthetic generators and the
/// web-trace encoder both map their domains onto `0..n`, which lets the
/// mining code index per-item arrays (TID-list directories, singleton
/// counters) directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Item(pub u32);

impl Item {
    /// Returns the raw identifier.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Returns the identifier widened to `usize` for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Item {
    #[inline]
    fn from(v: u32) -> Self {
        Item(v)
    }
}

impl From<Item> for u32 {
    #[inline]
    fn from(v: Item) -> Self {
        v.0
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Debug for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_roundtrips_through_u32() {
        let it = Item::from(42u32);
        assert_eq!(u32::from(it), 42);
        assert_eq!(it.id(), 42);
        assert_eq!(it.index(), 42usize);
    }

    #[test]
    fn item_orders_by_id() {
        assert!(Item(1) < Item(2));
        assert_eq!(Item(7), Item(7));
    }

    #[test]
    fn item_displays_with_prefix() {
        assert_eq!(Item(3).to_string(), "i3");
        assert_eq!(format!("{:?}", Item(3)), "i3");
    }

    #[test]
    fn item_serde_is_transparent() {
        let json = serde_json::to_string(&Item(9)).unwrap();
        assert_eq!(json, "9");
        let back: Item = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Item(9));
    }
}
