//! Calendar structure over [`Timestamp`]s.
//!
//! The pattern-detection experiments describe discovered block sequences in
//! calendar terms: working days, weekends, Tuesdays and Thursdays, a labor
//! day holiday. The experiment epoch mirrors the DEC trace: **day 0 is
//! Monday 1996-09-02 (Labor Day)**, and the trace runs for 21 days.

use crate::Timestamp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Day of week. The experiment epoch (day 0) is a Monday.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Weekday {
    /// Monday
    Mon,
    /// Tuesday
    Tue,
    /// Wednesday
    Wed,
    /// Thursday
    Thu,
    /// Friday
    Fri,
    /// Saturday
    Sat,
    /// Sunday
    Sun,
}

impl Weekday {
    const ALL: [Weekday; 7] = [
        Weekday::Mon,
        Weekday::Tue,
        Weekday::Wed,
        Weekday::Thu,
        Weekday::Fri,
        Weekday::Sat,
        Weekday::Sun,
    ];

    /// Weekday of the given day index (day 0 = Monday).
    pub fn of_day(day: u64) -> Weekday {
        Self::ALL[(day % 7) as usize]
    }

    /// Whether this is a Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self, Weekday::Sat | Weekday::Sun)
    }
}

impl fmt::Display for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Weekday::Mon => "Mon",
            Weekday::Tue => "Tue",
            Weekday::Wed => "Wed",
            Weekday::Thu => "Thu",
            Weekday::Fri => "Fri",
            Weekday::Sat => "Sat",
            Weekday::Sun => "Sun",
        };
        f.write_str(s)
    }
}

impl fmt::Debug for Weekday {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Weekday of a timestamp.
pub fn weekday(t: Timestamp) -> Weekday {
    Weekday::of_day(t.day())
}

/// Day indices (relative to the epoch) that are holidays in the experiment
/// calendar. Day 0 models Labor Day 1996-09-02.
pub const HOLIDAYS: [u64; 1] = [0];

/// Whether `day` is a working day: a non-holiday weekday.
pub fn is_working_day(day: u64) -> bool {
    !Weekday::of_day(day).is_weekend() && !HOLIDAYS.contains(&day)
}

/// Formats a day index as a calendar date in September 1996
/// (day 0 ↦ `9-2-1996`), matching the paper's reporting style.
pub fn format_date(day: u64) -> String {
    format!("9-{}-1996", day + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_day_is_monday() {
        assert_eq!(Weekday::of_day(0), Weekday::Mon);
        assert_eq!(Weekday::of_day(1), Weekday::Tue);
        assert_eq!(Weekday::of_day(5), Weekday::Sat);
        assert_eq!(Weekday::of_day(6), Weekday::Sun);
        assert_eq!(Weekday::of_day(7), Weekday::Mon);
    }

    #[test]
    fn weekend_classification() {
        assert!(Weekday::Sat.is_weekend());
        assert!(Weekday::Sun.is_weekend());
        assert!(!Weekday::Wed.is_weekend());
    }

    #[test]
    fn labor_day_is_not_a_working_day() {
        assert!(!is_working_day(0)); // holiday Monday
        assert!(is_working_day(1)); // Tuesday 9-3
        assert!(!is_working_day(5)); // Saturday
        assert!(!is_working_day(6)); // Sunday
        assert!(is_working_day(7)); // the *next* Monday, 9-9
    }

    #[test]
    fn weekday_of_timestamp() {
        assert_eq!(weekday(Timestamp::from_day_hour(2, 13)), Weekday::Wed);
    }

    #[test]
    fn date_formatting_matches_paper_style() {
        assert_eq!(format_date(0), "9-2-1996");
        assert_eq!(format_date(7), "9-9-1996");
        assert_eq!(format_date(20), "9-22-1996");
    }
}
