//! The daemon: a fixed pool of worker threads serving framed requests
//! over TCP, one writer applying ingested blocks in arrival order.
//!
//! ## Concurrency shape
//!
//! ```text
//!  client sockets ──▶ worker threads (N, accept + serve)
//!                        │ queries            │ IngestBlock
//!                        ▼                    ▼
//!                  RwLock<DemonMonitor>   bounded ingest queue
//!                        ▲                    │
//!                        └── ingester thread ◀┘  (single writer)
//! ```
//!
//! * **Queries** (`QueryModel`, `QuerySequences`, `Stats`, `Snapshot`)
//!   take the monitor read lock, so any number run concurrently with
//!   each other and block only while a block is being applied.
//! * **Ingest** is serialized through a bounded queue drained by one
//!   ingester thread holding the write lock per block. The worker that
//!   accepted the request blocks on a completion slot, so a successful
//!   `IngestBlock` acknowledgment means the block is *applied* — a
//!   query on the same connection afterwards sees it. When the queue
//!   stays full past the backpressure deadline the request is rejected
//!   with a typed error (`serve.rejects`), never buffered unboundedly.
//! * **Shutdown** closes the queue (already-queued blocks still apply),
//!   wakes every worker out of `accept`, and `run` returns after the
//!   drain — the graceful exit the `Shutdown` verb promises.
//!
//! Per-connection read/write timeouts bound how long a dead peer can
//! pin a worker. The recorder is enabled at bind time so the `Stats`
//! verb always reports live `serve.*` counters.

use crate::protocol::{self, Request, Response};
use demon_core::bss::{BlockSelector, WiBss};
use demon_core::engine::DataSpan;
use demon_core::monitor::DemonMonitor;
use demon_core::ItemsetMaintainer;
use demon_focus::similarity::{ItemsetSimilarity, SimilarityConfig};
use demon_itemsets::persist::save_store;
use demon_itemsets::CounterKind;
use demon_store::StoreConfig;
use demon_types::durable::FrameClass;
use demon_types::obs::{self, Counter};
use demon_types::{MinSupport, Result, TxBlock};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The monitor type the daemon owns: frequent itemsets + compact
/// sequences over one evolving transaction stream.
pub type ServedMonitor = DemonMonitor<ItemsetMaintainer, ItemsetSimilarity>;

/// Everything that shapes a daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Item-universe size of the monitored stream.
    pub n_items: u32,
    /// Minimum support κ of the maintained model.
    pub minsup: MinSupport,
    /// Update-phase counting backend.
    pub counter: CounterKind,
    /// Model data span: `None` = unrestricted window, `Some(w)` = the
    /// `w` most recent blocks (GEMM).
    pub window: Option<usize>,
    /// Pattern-detection window (`None` = unrestricted).
    pub pattern_window: Option<usize>,
    /// FOCUS similarity threshold α for the compact-sequence miner.
    pub alpha: f64,
    /// Worker threads accepting and serving connections.
    pub workers: usize,
    /// Ingest-queue capacity (blocks buffered but not yet applied).
    pub queue_capacity: usize,
    /// How long an `IngestBlock` waits on a full queue before it is
    /// rejected (backpressure deadline).
    pub queue_timeout: Duration,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Storage-engine config of the monitored store (`--memory-budget`).
    pub store_config: StoreConfig,
}

impl ServeConfig {
    /// A config with the documented defaults: 4 workers, a 64-block
    /// queue, 5 s backpressure deadline, 30 s connection timeouts, an
    /// unrestricted window and an in-memory store.
    pub fn new(addr: impl Into<String>, n_items: u32, minsup: MinSupport) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            n_items,
            minsup,
            counter: CounterKind::Ecut,
            window: None,
            pattern_window: None,
            alpha: 0.12,
            workers: 4,
            queue_capacity: 64,
            queue_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            store_config: StoreConfig::InMemory,
        }
    }
}

/// What a completed daemon run did, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Requests served across all connections and verbs.
    pub requests: u64,
    /// Blocks ingested into the monitor.
    pub blocks: u64,
}

type IngestResult = std::result::Result<(), String>;

/// The completion slot an ingesting worker parks on until the ingester
/// thread has applied (or rejected) its block.
#[derive(Default)]
struct DoneSlot {
    result: Mutex<Option<IngestResult>>,
    cv: Condvar,
}

impl DoneSlot {
    fn fill(&self, r: IngestResult) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> IngestResult {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.clone() {
                return r;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Job {
    block: TxBlock,
    done: Arc<DoneSlot>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    open: bool,
}

/// The bounded ingest queue: writers wait up to the backpressure
/// deadline for a slot, then get a typed rejection (`serve.rejects`).
struct IngestQueue {
    capacity: usize,
    timeout: Duration,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl IngestQueue {
    fn new(capacity: usize, timeout: Duration) -> IngestQueue {
        IngestQueue {
            capacity: capacity.max(1),
            timeout,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues a block, waiting out backpressure; returns the slot the
    /// caller parks on, or the rejection message.
    fn submit(&self, block: TxBlock) -> std::result::Result<Arc<DoneSlot>, String> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + self.timeout;
        while state.jobs.len() >= self.capacity && state.open {
            let now = Instant::now();
            if now >= deadline {
                obs::incr(Counter::ServeRejects);
                return Err(format!(
                    "ingest queue full ({} blocks) past the backpressure deadline",
                    self.capacity
                ));
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if !state.open {
            obs::incr(Counter::ServeRejects);
            return Err("server is shutting down".to_string());
        }
        let done = Arc::new(DoneSlot::default());
        state.jobs.push_back(Job {
            block,
            done: Arc::clone(&done),
        });
        obs::record_max(Counter::ServeQueueDepth, state.jobs.len() as u64);
        self.not_empty.notify_one();
        Ok(done)
    }

    /// The ingester's blocking pop. `None` only after [`close`], once
    /// every queued job has been drained — the graceful-shutdown drain.
    fn next_job(&self) -> Option<Job> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.open = false;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }
}

struct Shared {
    monitor: RwLock<ServedMonitor>,
    queue: IngestQueue,
    shutdown: AtomicBool,
    requests: AtomicU64,
    blocks: AtomicU64,
    addr: SocketAddr,
    n_items: u32,
    io_timeout: Duration,
    workers: usize,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
}

fn build_monitor(config: &ServeConfig) -> Result<ServedMonitor> {
    let maintainer = ItemsetMaintainer::with_store_config(
        config.n_items,
        config.minsup,
        config.counter,
        &config.store_config,
    )?;
    let span = match config.window {
        None => DataSpan::Unrestricted(WiBss::All),
        Some(w) => DataSpan::MostRecent {
            w,
            selector: BlockSelector::all(),
        },
    };
    let oracle = ItemsetSimilarity::new(
        config.n_items,
        config.minsup,
        SimilarityConfig::Threshold {
            alpha: config.alpha,
        },
    );
    DemonMonitor::new(maintainer, span, oracle, config.pattern_window)
}

impl Server {
    /// Binds the listener and builds the monitor, but serves nothing
    /// yet. Enables the obs recorder so `Stats` is always live.
    pub fn bind(config: ServeConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let monitor = build_monitor(&config)?;
        obs::enable();
        let shared = Arc::new(Shared {
            monitor: RwLock::new(monitor),
            queue: IngestQueue::new(config.queue_capacity, config.queue_timeout),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            blocks: AtomicU64::new(0),
            addr,
            n_items: config.n_items,
            io_timeout: config.io_timeout,
            workers: config.workers.max(1),
        });
        Ok(Server { shared, listener })
    }

    /// The address the daemon is listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until a `Shutdown` request: spawns the ingester and the
    /// worker pool, then joins them all. Queued blocks are drained
    /// before the ingester exits.
    pub fn run(self) -> Result<ServeSummary> {
        let mut handles = Vec::new();
        {
            let shared = Arc::clone(&self.shared);
            handles.push(
                std::thread::Builder::new()
                    .name("serve-ingester".to_string())
                    .spawn(move || ingester_loop(&shared))?,
            );
        }
        for i in 0..self.shared.workers {
            let shared = Arc::clone(&self.shared);
            let listener = self.listener.try_clone()?;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &listener))?,
            );
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(ServeSummary {
            requests: self.shared.requests.load(Ordering::Relaxed),
            blocks: self.shared.blocks.load(Ordering::Relaxed),
        })
    }
}

/// The single writer: applies queued blocks in arrival order, then
/// answers the parked worker. A panicking `add_block` (e.g. a spill
/// fault) poisons the monitor but never kills the ingester — later
/// jobs are answered with a typed error instead of hanging forever.
fn ingester_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.next_job() {
        let block = job.block;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match shared.monitor.write() {
                Ok(mut monitor) => monitor.add_block(block).map(|_| ()).map_err(|e| e.to_string()),
                Err(_) => Err("monitor poisoned by an earlier ingest fault".to_string()),
            }
        }))
        .unwrap_or_else(|_| Err("ingest panicked; monitor poisoned".to_string()));
        if result.is_ok() {
            shared.blocks.fetch_add(1, Ordering::SeqCst);
        }
        job.done.fill(result);
    }
}

fn worker_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                handle_connection(shared, stream);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serves one connection until the peer hangs up, a timeout fires, or a
/// malformed frame arrives (transport damage drops the connection; a
/// malformed *payload* inside a valid frame gets a typed `Err` response
/// and the connection lives on).
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "client".to_string());
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let mut reader = &stream;
    loop {
        let (payload, bytes_in) =
            match protocol::read_message(&mut reader, FrameClass::REQUEST, &peer) {
                Ok(Some(message)) => message,
                // Clean close, timeout, or a corrupt frame: drop the
                // connection (there is no trustworthy frame boundary to
                // answer on).
                Ok(None) | Err(_) => return,
            };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ServeRequests);
        obs::add(Counter::ServeBytesIn, bytes_in as u64);
        let (response, shutdown_after) = match Request::decode(&payload) {
            Ok(request) => dispatch(shared, request),
            Err(e) => (Response::Err(e.to_string()), false),
        };
        let mut writer = &stream;
        match protocol::write_message(&mut writer, FrameClass::RESPONSE, &response.encode()) {
            Ok(bytes_out) => obs::add(Counter::ServeBytesOut, bytes_out as u64),
            Err(_) => return,
        }
        if shutdown_after {
            begin_shutdown(shared);
            return;
        }
    }
}

fn dispatch(shared: &Arc<Shared>, request: Request) -> (Response, bool) {
    match request {
        Request::IngestBlock { n_items, block } => {
            if n_items != shared.n_items {
                return (
                    Response::Err(format!(
                        "item universe mismatch: client encoded {n_items}, server monitors {}",
                        shared.n_items
                    )),
                    false,
                );
            }
            let result = shared
                .queue
                .submit(block)
                .and_then(|done| done.wait());
            match result {
                Ok(()) => (Response::Ok, false),
                Err(msg) => (Response::Err(msg), false),
            }
        }
        Request::QueryModel => {
            let monitor = match shared.monitor.read() {
                Ok(m) => m,
                Err(_) => return (Response::Err("monitor poisoned".into()), false),
            };
            match monitor.model() {
                Some(model) => match serde_json::to_string(model) {
                    Ok(json) => (Response::Model(json), false),
                    Err(e) => (Response::Err(format!("model serialization: {e}")), false),
                },
                None => (
                    Response::Err("no model yet (no blocks ingested)".into()),
                    false,
                ),
            }
        }
        Request::QuerySequences => match shared.monitor.read() {
            Ok(monitor) => (Response::Sequences(monitor.sequences()), false),
            Err(_) => (Response::Err("monitor poisoned".into()), false),
        },
        Request::Stats => (Response::Stats(stats_json(shared)), false),
        Request::Snapshot { dir } => {
            let monitor = match shared.monitor.read() {
                Ok(m) => m,
                Err(_) => return (Response::Err("monitor poisoned".into()), false),
            };
            let store = monitor.engine().maintainer().store();
            match save_store(store, Path::new(&dir)) {
                Ok(()) => (Response::SnapshotDone(store.len() as u64), false),
                Err(e) => (Response::Err(format!("snapshot to {dir}: {e}")), false),
            }
        }
        Request::Shutdown => (Response::Ok, true),
    }
}

/// The `Stats` body: the daemon's own gauges plus the full obs counter
/// table, as one JSON object. Built by hand — every key is a static
/// snake_case name, so no escaping is ever needed.
fn stats_json(shared: &Arc<Shared>) -> String {
    let mut out = format!(
        "{{\"blocks\":{},\"requests\":{},\"queue_depth\":{},\"counters\":{{",
        shared.blocks.load(Ordering::SeqCst),
        shared.requests.load(Ordering::Relaxed),
        shared.queue.depth(),
    );
    for (i, (name, value)) in obs::snapshot().counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("}}");
    out
}

/// Flags shutdown, closes the queue (the ingester drains what is
/// already queued, then exits) and wakes every worker out of `accept`
/// with throwaway connections.
fn begin_shutdown(shared: &Arc<Shared>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    for _ in 0..shared.workers {
        // Each connect pops one worker out of accept; it sees the flag
        // and exits. Failures are fine — the worker is already gone.
        let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
    }
}
