//! The daemon: a fixed pool of worker threads serving framed requests
//! over TCP, one writer applying ingested blocks in arrival order —
//! optionally behind a write-ahead log, so an acknowledged block
//! survives `kill -9`.
//!
//! The runtime is generic over [`ServableModel`]: the same queue, WAL,
//! recovery, compaction and dispatch serve frequent itemsets (the
//! seed class, byte-for-byte unchanged), BIRCH+ clusters and windowed
//! decision trees — `ServeConfig::model` picks the class, and every
//! wire payload and WAL record carries its class tag so a mismatched
//! client (or a WAL replayed into the wrong daemon) is refused with a
//! typed error instead of decode soup.
//!
//! ## Concurrency shape
//!
//! ```text
//!  client sockets ──▶ worker threads (N, accept + serve)
//!                        │ queries            │ IngestBlock
//!                        ▼                    ▼
//!                  RwLock<DemonMonitor>   bounded ingest queue
//!                        ▲                    │
//!                        └── ingester thread ◀┘  (single writer)
//!                        │         │ append+fsync before apply
//!                        ▼         ▼
//!                  compactor ◀── wal-<gen>.log
//!                  (snapshot + rotate)
//! ```
//!
//! * **Queries** (`QueryModel`, `QuerySequences`, `Stats`, `Snapshot`)
//!   take the monitor read lock, so any number run concurrently with
//!   each other and block only while a block is being applied.
//! * **Ingest** is serialized through a bounded queue drained by one
//!   ingester thread holding the write lock per block. The worker that
//!   accepted the request blocks on a completion slot, so a successful
//!   `IngestBlock` acknowledgment means the block is *applied* — a
//!   query on the same connection afterwards sees it. When the queue
//!   stays full past the backpressure deadline the request is rejected
//!   with a typed `Busy` error (`serve.rejects`), never buffered
//!   unboundedly.
//! * **Durability** (`wal_dir` set): before applying a block, the
//!   ingester appends the block's encoded ingest request to the live
//!   `wal-<gen>.log` as one framed, checksummed record and **fsyncs**
//!   it. Only then is the block applied and acknowledged, so an ack
//!   means the block is both applied *and* durable. On startup,
//!   [`Server::bind`] recovers: load `snapshot-<CURRENT>` (Strict),
//!   replay every WAL generation ≥ `CURRENT` oldest-first (torn tails
//!   dropped, `DuplicateBlock` replays skipped idempotently), truncate
//!   the torn tail, and resume appending. A WAL whose records carry a
//!   different model class tag is refused outright — replaying point
//!   blocks into an itemset monitor would corrupt it silently.
//! * **Group commit** (`wal_group_commit`): the ingester drains every
//!   block already queued behind the one it popped, appends them all,
//!   then issues *one* covering fsync before applying and acking in
//!   arrival order. Every ack still happens only after the fsync that
//!   covers its block — the durability contract is unchanged; only the
//!   fsync count per burst drops from N to 1.
//! * **Compaction**: when the live WAL crosses `wal_max_bytes` the
//!   ingester rotates to `wal-<gen+1>.log` (it is the sole appender
//!   *and* applier, so at the rotation instant the monitor covers
//!   everything in the old log) and signals the compactor thread, which
//!   snapshots the store atomically to `snapshot-<gen+1>`, flips the
//!   framed `CURRENT` pointer, and deletes the shadowed generations. A
//!   crash at any instant recovers from whichever generation `CURRENT`
//!   still names.
//! * **Shutdown** closes the queue (already-queued blocks still apply),
//!   wakes every worker out of `accept`, and `run` returns after the
//!   drain — the graceful exit the `Shutdown` verb promises.
//!
//! Per-connection read/write timeouts bound how long a dead peer can
//! pin a worker. The recorder is enabled at bind time so the `Stats`
//! verb always reports live `serve.*` and `wal.*` counters.

use crate::model::{
    ClusterModel, DbscanModel, ItemsetModel, MaintainedModel, ServableModel, TreeModel,
};
use crate::protocol::{self, Request, Response, WireError};
use demon_core::monitor::DemonMonitor;
use demon_core::ItemsetMaintainer;
use demon_focus::similarity::ItemsetSimilarity;
use demon_itemsets::CounterKind;
use demon_store::StoreConfig;
use demon_types::durable::FrameClass;
use demon_types::obs::{self, Counter};
use demon_types::wal::{self, WalWriter};
use demon_types::{Block, DemonError, MinSupport, ModelClass, Result};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// The monitor type the default (`--model itemsets`) daemon owns:
/// frequent itemsets + compact sequences over one evolving transaction
/// stream.
pub type ServedMonitor = DemonMonitor<ItemsetMaintainer, ItemsetSimilarity>;

/// The monitor a daemon serving model class `S` owns.
type Monitor<S> =
    DemonMonitor<<S as ServableModel>::Maintainer, <S as ServableModel>::Oracle>;

/// Everything that shapes a daemon instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// The model class this daemon maintains and serves.
    pub model: ModelClass,
    /// Item-universe size of the monitored stream (`--model itemsets`).
    pub n_items: u32,
    /// Minimum support κ of the maintained model (`--model itemsets`).
    pub minsup: MinSupport,
    /// Update-phase counting backend (`--model itemsets`).
    pub counter: CounterKind,
    /// Point dimensionality (`--model clusters|trees`).
    pub dim: usize,
    /// BIRCH phase-2 cluster count k (`--model clusters`).
    pub k: usize,
    /// Label-domain size (`--model trees`).
    pub classes: u32,
    /// DBSCAN neighborhood radius ε (`--model dbscan`).
    pub eps: f64,
    /// DBSCAN core threshold: a point with at least this many ε-neighbors
    /// (itself included) is core (`--model dbscan`).
    pub min_pts: usize,
    /// Model data span: `None` = unrestricted window, `Some(w)` = the
    /// `w` most recent blocks (GEMM).
    pub window: Option<usize>,
    /// Pattern-detection window (`None` = unrestricted).
    pub pattern_window: Option<usize>,
    /// FOCUS similarity threshold α for the compact-sequence miner.
    pub alpha: f64,
    /// Worker threads accepting and serving connections (with `shards ≥
    /// 2` these become the readiness-style event-loop threads).
    pub workers: usize,
    /// Serving-state partitions. `1` (the default) keeps the original
    /// single-lock daemon; `≥ 2` switches to the partitioned runtime —
    /// per-shard stores and WAL lanes behind one sequencer, epoch-swapped
    /// read replicas, and a poll-based connection loop (see
    /// [`crate::shard`]). Query responses and persisted snapshots are
    /// byte-identical across shard counts. Requires a model class with
    /// an exact shard merge ([`crate::model::ShardableModel`] — itemsets
    /// only); other classes are refused with the typed
    /// [`DemonError::ShardsUnsupported`].
    pub shards: usize,
    /// Ingest-queue capacity (blocks buffered but not yet applied).
    pub queue_capacity: usize,
    /// How long an `IngestBlock` waits on a full queue before it is
    /// rejected (backpressure deadline).
    pub queue_timeout: Duration,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Storage-engine config of the monitored store (`--memory-budget`).
    pub store_config: StoreConfig,
    /// Write-ahead-log directory. `Some(dir)` makes every acknowledged
    /// ingest durable (fsynced before the ack) and recovers the monitor
    /// from `dir` at bind time; `None` keeps the daemon memory-only.
    pub wal_dir: Option<PathBuf>,
    /// Compaction threshold: once the live WAL file crosses this many
    /// bytes, the daemon snapshots the store and rotates the log.
    pub wal_max_bytes: u64,
    /// Group commit: batch the WAL appends of every queued block behind
    /// one covering fsync. Acks still land only after the fsync that
    /// covers them; under a write burst the fsyncs-per-block drop
    /// toward zero.
    pub wal_group_commit: bool,
}

impl ServeConfig {
    /// A config with the documented defaults: the itemset model class,
    /// 4 workers, a 64-block queue, 5 s backpressure deadline, 30 s
    /// connection timeouts, an unrestricted window, an in-memory store,
    /// and no WAL (pass `wal_dir` to make ingest durable; WAL files
    /// rotate at 8 MiB).
    pub fn new(addr: impl Into<String>, n_items: u32, minsup: MinSupport) -> ServeConfig {
        ServeConfig {
            addr: addr.into(),
            model: ModelClass::Itemsets,
            n_items,
            minsup,
            counter: CounterKind::Ecut,
            dim: 2,
            k: 4,
            classes: 2,
            eps: 1.0,
            min_pts: 4,
            window: None,
            pattern_window: None,
            alpha: 0.12,
            workers: 4,
            shards: 1,
            queue_capacity: 64,
            queue_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(30),
            store_config: StoreConfig::InMemory,
            wal_dir: None,
            wal_max_bytes: 8 << 20,
            wal_group_commit: false,
        }
    }
}

/// What a completed daemon run did, returned by [`Server::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Requests served across all connections and verbs.
    pub requests: u64,
    /// Blocks ingested into the monitor (recovered blocks included).
    pub blocks: u64,
}

type IngestResult = std::result::Result<(), WireError>;

/// The completion slot an ingesting worker parks on until the ingester
/// thread has applied (or rejected) its block.
#[derive(Default)]
struct DoneSlot {
    result: Mutex<Option<IngestResult>>,
    cv: Condvar,
}

impl DoneSlot {
    fn fill(&self, r: IngestResult) {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> IngestResult {
        let mut slot = self.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = slot.clone() {
                return r;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
        }
    }
}

struct Job<R> {
    block: Block<R>,
    done: Arc<DoneSlot>,
}

struct QueueState<R> {
    jobs: VecDeque<Job<R>>,
    open: bool,
}

/// The bounded ingest queue: writers wait up to the backpressure
/// deadline for a slot, then get a typed rejection (`serve.rejects`).
struct IngestQueue<R> {
    capacity: usize,
    timeout: Duration,
    state: Mutex<QueueState<R>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<R> IngestQueue<R> {
    fn new(capacity: usize, timeout: Duration) -> IngestQueue<R> {
        IngestQueue {
            capacity: capacity.max(1),
            timeout,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues a block, waiting out backpressure; returns the slot the
    /// caller parks on, or the typed rejection.
    fn submit(&self, block: Block<R>) -> std::result::Result<Arc<DoneSlot>, WireError> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + self.timeout;
        while state.jobs.len() >= self.capacity && state.open {
            let now = Instant::now();
            if now >= deadline {
                obs::incr(Counter::ServeRejects);
                return Err(WireError::Busy(format!(
                    "ingest queue full ({} blocks) past the backpressure deadline",
                    self.capacity
                )));
            }
            let (guard, _) = self
                .not_full
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if !state.open {
            obs::incr(Counter::ServeRejects);
            return Err(WireError::Busy("server is shutting down".to_string()));
        }
        let done = Arc::new(DoneSlot::default());
        state.jobs.push_back(Job {
            block,
            done: Arc::clone(&done),
        });
        obs::record_max(Counter::ServeQueueDepth, state.jobs.len() as u64);
        self.not_empty.notify_one();
        Ok(done)
    }

    /// The ingester's blocking pop. `None` only after [`close`], once
    /// every queued job has been drained — the graceful-shutdown drain.
    fn next_job(&self) -> Option<Job<R>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                self.not_full.notify_one();
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drains every currently queued job without blocking — the group-
    /// commit batch, so one covering fsync amortizes across a burst.
    fn drain_ready(&self) -> Vec<Job<R>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let jobs: Vec<Job<R>> = state.jobs.drain(..).collect();
        if !jobs.is_empty() {
            self.not_full.notify_all();
        }
        jobs
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.open = false;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }
}

struct Shared<S: ServableModel> {
    monitor: RwLock<Monitor<S>>,
    queue: IngestQueue<S::Record>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    blocks: AtomicU64,
    addr: SocketAddr,
    /// The per-block wire meta this daemon expects (item universe for
    /// itemsets, dimensionality for points).
    meta: u32,
    render_ctx: S::RenderCtx,
    io_timeout: Duration,
    workers: usize,
}

/// The ingester's durable-ingest state: the live WAL writer plus the
/// channel to the compactor. Owned by the ingester thread alone — the
/// single-appender discipline is what makes rotation sound.
struct Durability {
    dir: PathBuf,
    writer: WalWriter,
    gen: u64,
    max_bytes: u64,
    /// The model-class tag stamped on every record (and every rotated
    /// writer).
    class: u8,
    /// Whether the ingester batches appends behind one covering fsync.
    group_commit: bool,
    /// Highest block id the monitor has applied; a retried duplicate is
    /// detected *before* the append so it never grows the log.
    last_id: Option<u64>,
    compact_tx: mpsc::Sender<u64>,
    /// One compaction at a time; while it runs, the live log simply
    /// keeps growing past the threshold.
    compacting: Arc<AtomicBool>,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    inner: ServerInner,
}

/// The runtimes behind the one public daemon type: the single-lock
/// thread-per-connection daemon, monomorphized per model class
/// (`shards == 1`; the itemset instance is the seed daemon, byte-for-
/// byte unchanged), and the partitioned runtime (`shards ≥ 2`,
/// itemsets only — the one class with an exact shard merge).
enum ServerInner {
    Itemsets(LegacyServer<ItemsetModel>),
    Clusters(LegacyServer<ClusterModel>),
    Trees(LegacyServer<TreeModel>),
    Density(LegacyServer<DbscanModel>),
    Sharded(Box<crate::shard::ShardedServer<ItemsetModel>>),
}

/// The single-lock runtime serving one model class.
struct LegacyServer<S: ServableModel> {
    shared: Arc<Shared<S>>,
    listener: TcpListener,
    durability: Option<Durability>,
    compact_rx: Option<mpsc::Receiver<u64>>,
}

fn build_monitor<S: ServableModel>(config: &ServeConfig) -> Result<Monitor<S>> {
    // Delegated so a class can pick its own window engine (incremental
    // DBSCAN slides by deletion instead of GEMM's per-window refits).
    S::build_monitor(config)
}

/// What WAL recovery rebuilt: the monitor with every durable block
/// re-applied, the reopened live log, and its generation.
struct Recovered<S: ServableModel> {
    monitor: Monitor<S>,
    writer: WalWriter,
    gen: u64,
}

/// The typed refusal when a WAL record (header tag or request body)
/// carries a different model class than the recovering daemon.
fn cross_class_replay<S: ServableModel>(got: u8) -> DemonError {
    DemonError::ModelClassMismatch {
        expected: S::CLASS.name().to_string(),
        got: ModelClass::describe_tag(got),
    }
}

/// Recovers a monitor from a WAL directory: load `snapshot-<CURRENT>`
/// under `Strict` (the snapshot was written atomically — damage there
/// is real bit rot and must be loud), replay every WAL generation ≥
/// `CURRENT` oldest-first, then reopen the newest log for appending
/// with its torn tail (if any) truncated away.
///
/// Replay is idempotent and salvaging: a record already covered by the
/// snapshot is a [`DemonError::DuplicateBlock`] and is skipped; a
/// record that fails to apply was by definition never acknowledged
/// (acks happen only after a successful apply) and is skipped too; a
/// torn tail ends the file's clean prefix and is dropped (counted
/// under `wal.torn_tails`). A record tagged with a *different model
/// class* is not salvage — it means this WAL belongs to another
/// daemon, and recovery refuses with the typed
/// [`DemonError::ModelClassMismatch`] instead of replaying garbage.
fn recover<S: ServableModel>(dir: &Path, config: &ServeConfig) -> Result<Recovered<S>> {
    std::fs::create_dir_all(dir)?;
    let current = wal::read_current(dir)?;
    let mut monitor = build_monitor::<S>(config)?;

    if current > 0 {
        let snap = wal::snapshot_dir_path(dir, current);
        for block in S::load_snapshot(&snap, config)? {
            monitor.add_block(block)?;
        }
    }

    // Generations below CURRENT (and snapshot dirs other than CURRENT,
    // including a compaction's tmp residue) are shadowed: delete them
    // so a crash mid-cleanup converges instead of accreting.
    for entry in std::fs::read_dir(dir)?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = wal::parse_wal_file_name(name) {
            if g < current {
                let _ = std::fs::remove_file(entry.path());
            }
        } else if name.starts_with("snapshot-")
            && wal::parse_snapshot_dir_name(name) != Some(current)
        {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }

    let mut next_seq = 0u64;
    let mut live_gen = current;
    let mut live_valid_len = 0u64;
    let mut live_exists = false;
    for g in wal::list_wal_generations(dir)? {
        if g < current {
            continue;
        }
        let path = wal::wal_file_path(dir, g);
        let report = wal::read_wal(&path)?;
        for record in &report.records {
            if record.class != S::CLASS.tag() {
                return Err(cross_class_replay::<S>(record.class));
            }
            let Ok(Request::IngestBlock {
                class,
                id,
                interval,
                meta,
                payload,
            }) = Request::decode(&record.body)
            else {
                continue;
            };
            if class != S::CLASS.tag() {
                return Err(cross_class_replay::<S>(class));
            }
            let Ok(records) = S::decode_records(&payload, id, meta) else {
                continue;
            };
            let block = match interval {
                Some(iv) => Block::with_interval(id, iv, records),
                None => Block::new(id, records),
            };
            match monitor.add_block(block) {
                Ok(_) => obs::incr(Counter::WalReplays),
                Err(DemonError::DuplicateBlock { .. }) => {} // snapshot covers it
                Err(_) => {} // appended but never acked: no promise broken
            }
        }
        if let Some(s) = report.next_seq() {
            next_seq = s;
        }
        live_gen = g;
        live_valid_len = report.valid_len;
        live_exists = true;
    }

    let live_path = wal::wal_file_path(dir, live_gen);
    let writer = if live_exists {
        WalWriter::open_after_recovery(&live_path, live_valid_len, next_seq, S::CLASS.tag())?
    } else {
        WalWriter::create(&live_path, next_seq, S::CLASS.tag())?
    };
    Ok(Recovered {
        monitor,
        writer,
        gen: live_gen,
    })
}

impl Server {
    /// Binds the listener and builds the monitor, but serves nothing
    /// yet. With `wal_dir` set this is also where crash recovery
    /// happens — when `bind` returns, every durable block is applied.
    /// Enables the obs recorder so `Stats` is always live.
    pub fn bind(config: ServeConfig) -> Result<Server> {
        obs::enable();
        if config.shards == 0 {
            return Err(DemonError::InvalidParameter(
                "--shards must be at least 1".to_string(),
            ));
        }
        if config.shards > 1 {
            if config.model != ModelClass::Itemsets {
                // Sharding needs the exact scatter/gather merge
                // (`ShardableModel`); only itemset supports are
                // additive over disjoint block sets.
                return Err(DemonError::ShardsUnsupported {
                    class: config.model.name(),
                });
            }
            if config.window.is_some() {
                return Err(DemonError::InvalidParameter(
                    "sharded serving (--shards ≥ 2) requires the unrestricted window; \
                     --window (GEMM) is only available with --shards 1"
                        .to_string(),
                ));
            }
            let sharded = crate::shard::ShardedServer::<ItemsetModel>::bind(&config)?;
            return Ok(Server {
                inner: ServerInner::Sharded(Box::new(sharded)),
            });
        }
        let inner = match config.model {
            ModelClass::Itemsets => ServerInner::Itemsets(LegacyServer::bind(config)?),
            ModelClass::Clusters => ServerInner::Clusters(LegacyServer::bind(config)?),
            ModelClass::Trees => ServerInner::Trees(LegacyServer::bind(config)?),
            ModelClass::Density => ServerInner::Density(LegacyServer::bind(config)?),
        };
        Ok(Server { inner })
    }

    /// The address the daemon is listening on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        match &self.inner {
            ServerInner::Itemsets(s) => s.shared.addr,
            ServerInner::Clusters(s) => s.shared.addr,
            ServerInner::Trees(s) => s.shared.addr,
            ServerInner::Density(s) => s.shared.addr,
            ServerInner::Sharded(s) => s.local_addr(),
        }
    }

    /// Serves until a `Shutdown` request: spawns the ingester (or the
    /// sharded sequencer), the compactor (when durable) and the worker
    /// pool (or event-loop threads), then joins them all. Queued blocks
    /// are drained before the writer exits.
    pub fn run(self) -> Result<ServeSummary> {
        match self.inner {
            ServerInner::Itemsets(s) => s.run(),
            ServerInner::Clusters(s) => s.run(),
            ServerInner::Trees(s) => s.run(),
            ServerInner::Density(s) => s.run(),
            ServerInner::Sharded(s) => s.run(),
        }
    }
}

impl<S: ServableModel> LegacyServer<S> {
    fn bind(config: ServeConfig) -> Result<LegacyServer<S>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (monitor, durability, compact_rx) = match &config.wal_dir {
            None => (build_monitor::<S>(&config)?, None, None),
            Some(dir) => {
                let recovered = recover::<S>(dir, &config)?;
                let (tx, rx) = mpsc::channel();
                let durability = Durability {
                    dir: dir.clone(),
                    writer: recovered.writer,
                    gen: recovered.gen,
                    max_bytes: config.wal_max_bytes.max(1),
                    class: S::CLASS.tag(),
                    group_commit: config.wal_group_commit,
                    last_id: S::block_ids(recovered.monitor.engine().maintainer())
                        .last()
                        .map(|id| id.value()),
                    compact_tx: tx,
                    compacting: Arc::new(AtomicBool::new(false)),
                };
                (recovered.monitor, Some(durability), Some(rx))
            }
        };
        let blocks = S::block_ids(monitor.engine().maintainer()).len() as u64;
        let render_ctx = S::render_ctx(monitor.engine().maintainer());
        let shared = Arc::new(Shared {
            monitor: RwLock::new(monitor),
            queue: IngestQueue::new(config.queue_capacity, config.queue_timeout),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            blocks: AtomicU64::new(blocks),
            addr,
            meta: S::block_meta(&config),
            render_ctx,
            io_timeout: config.io_timeout,
            workers: config.workers.max(1),
        });
        Ok(LegacyServer {
            shared,
            listener,
            durability,
            compact_rx,
        })
    }

    fn run(self) -> Result<ServeSummary> {
        let LegacyServer {
            shared,
            listener,
            durability,
            compact_rx,
        } = self;
        let mut handles = Vec::new();
        if let Some(rx) = compact_rx {
            let dir = durability
                .as_ref()
                .map(|d| d.dir.clone())
                .unwrap_or_default();
            let flag = durability
                .as_ref()
                .map(|d| Arc::clone(&d.compacting))
                .unwrap_or_default();
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("serve-compactor".to_string())
                    .spawn(move || compactor_loop(&shared, &dir, &flag, &rx))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("serve-ingester".to_string())
                    .spawn(move || ingester_loop(&shared, durability))?,
            );
        }
        for i in 0..shared.workers {
            let shared = Arc::clone(&shared);
            let listener = listener.try_clone()?;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &listener))?,
            );
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(ServeSummary {
            requests: shared.requests.load(Ordering::Relaxed),
            blocks: shared.blocks.load(Ordering::SeqCst),
        })
    }
}

static CRASH_HITS: AtomicU64 = AtomicU64::new(0);

/// Fault-injection hook: `DEMON_SERVE_CRASH=<point>:<n>` aborts the
/// process — the moral equivalent of `kill -9`, no destructors, no
/// flushes — the `n`-th time the named crash point is reached. Inert
/// unless the fault tests arm it. Shared with the sharded sequencer and
/// compactor, which hit the same named points.
pub(crate) fn crash_point(point: &str) {
    let Ok(spec) = std::env::var("DEMON_SERVE_CRASH") else {
        return;
    };
    let Some((name, nth)) = spec.split_once(':') else {
        return;
    };
    if name != point {
        return;
    }
    let Ok(nth) = nth.parse::<u64>() else {
        return;
    };
    if CRASH_HITS.fetch_add(1, Ordering::SeqCst) + 1 == nth {
        std::process::abort();
    }
}

/// Appends one block to the WAL (skipping a detected duplicate),
/// either fsyncing immediately (the seed path) or leaving the sync to
/// the batch's covering fsync (group commit). `None` means appended or
/// skipped cleanly; `Some` is the typed failure to ack instead.
fn append_block<S: ServableModel>(
    d: &mut Durability,
    meta: u32,
    block: &Block<S::Record>,
    group: bool,
) -> Option<WireError> {
    let duplicate = d.last_id.is_some_and(|last| block.id().value() <= last);
    if duplicate {
        return None;
    }
    let payload = match S::encode_records(block) {
        Ok(p) => p,
        Err(e) => return Some(WireError::Other(format!("wal encode: {e}"))),
    };
    let body = Request::IngestBlock {
        class: S::CLASS.tag(),
        id: block.id(),
        interval: block.interval(),
        meta,
        payload,
    }
    .encode();
    let appended = if group {
        d.writer.append_unsynced(&body)
    } else {
        d.writer.append(&body)
    };
    match appended {
        Ok(_) => None,
        Err(e) => Some(WireError::Io(format!("wal append: {e}"))),
    }
}

/// The single writer: appends each queued block to the WAL (fsync),
/// applies it, then answers the parked worker — in that order, so an
/// acknowledgment implies both durability and visibility. A panicking
/// `add_block` (e.g. a spill fault) poisons the monitor but never kills
/// the ingester — later jobs are answered with a typed error instead of
/// hanging forever.
///
/// With group commit enabled, every job already queued behind the
/// popped one joins its batch: all appends first, one covering fsync,
/// then the applies and acks in arrival order. An ack still only
/// happens after the fsync covering its block.
fn ingester_loop<S: ServableModel>(shared: &Arc<Shared<S>>, mut durability: Option<Durability>) {
    while let Some(job) = shared.queue.next_job() {
        let group = durability.as_ref().is_some_and(|d| d.group_commit);
        let mut batch = vec![job];
        if group {
            batch.extend(shared.queue.drain_ready());
        }

        // WAL first: a block must be durable before it can be acked.
        // Duplicates are detected before the append so a retried block
        // never grows the log; an append failure fails the request
        // without applying (an applied-but-not-durable block would turn
        // a later DuplicateBlock retry into a silent durability lie).
        let mut wal_failures: Vec<Option<WireError>> = Vec::with_capacity(batch.len());
        for job in &batch {
            crash_point("before_append");
            let failure = match durability.as_mut() {
                Some(d) => append_block::<S>(d, shared.meta, &job.block, group),
                None => None,
            };
            wal_failures.push(failure);
        }
        if group {
            if let Some(d) = durability.as_mut() {
                if let Err(e) = d.writer.sync() {
                    // The covering fsync failed: nothing in the batch is
                    // durable, so nothing may be applied or acked Ok.
                    let msg = format!("wal sync: {e}");
                    for f in &mut wal_failures {
                        f.get_or_insert_with(|| WireError::Io(msg.clone()));
                    }
                }
            }
        }

        for (job, wal_failure) in batch.into_iter().zip(wal_failures) {
            let block = job.block;
            let block_id = block.id().value();
            crash_point("after_append");

            let result = match wal_failure {
                Some(e) => Err(e),
                None => std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    match shared.monitor.write() {
                        Ok(mut monitor) => monitor
                            .add_block(block)
                            .map(|_| ())
                            .map_err(|e| WireError::from_error(&e)),
                        Err(_) => Err(WireError::Other(
                            "monitor poisoned by an earlier ingest fault".to_string(),
                        )),
                    }
                }))
                .unwrap_or_else(|_| {
                    Err(WireError::Other(
                        "ingest panicked; monitor poisoned".to_string(),
                    ))
                }),
            };
            if result.is_ok() {
                shared.blocks.fetch_add(1, Ordering::SeqCst);
                if let Some(d) = durability.as_mut() {
                    d.last_id = Some(block_id);
                    // Rotate only after the apply: the monitor now covers
                    // every record in the old log, so the compactor's
                    // snapshot (taken later, under the read lock) is
                    // guaranteed to shadow it.
                    maybe_rotate(d);
                }
            }
            job.done.fill(result);
            crash_point("after_ack");
        }
    }
}

/// Rotates the live WAL once it crosses the size threshold: create
/// `wal-<gen+1>.log`, swap the writer, and hand generation `gen+1` to
/// the compactor. Skipped while a compaction is already in flight.
fn maybe_rotate(d: &mut Durability) {
    if d.writer.bytes() < d.max_bytes {
        return;
    }
    if d.compacting.swap(true, Ordering::SeqCst) {
        return;
    }
    let next_gen = d.gen + 1;
    match WalWriter::create(
        &wal::wal_file_path(&d.dir, next_gen),
        d.writer.next_seq(),
        d.class,
    ) {
        Ok(writer) => {
            d.writer = writer;
            d.gen = next_gen;
            // A send failure means the compactor died; keep serving —
            // the log just stops rotating.
            let _ = d.compact_tx.send(next_gen);
        }
        Err(_) => {
            // Could not open the next log: keep appending to the old
            // one and try again at the next threshold crossing.
            d.compacting.store(false, Ordering::SeqCst);
        }
    }
}

/// The compactor: for each rotated generation, snapshot the store
/// atomically, flip `CURRENT`, and delete the shadowed WAL files and
/// snapshots. A crash anywhere in here is recoverable — before the
/// `CURRENT` flip the old generation chain is intact; after it the new
/// one is.
fn compactor_loop<S: ServableModel>(
    shared: &Arc<Shared<S>>,
    dir: &Path,
    compacting: &Arc<AtomicBool>,
    rx: &mpsc::Receiver<u64>,
) {
    while let Ok(gen) = rx.recv() {
        let result: Result<()> = (|| {
            {
                let monitor = shared.monitor.read().map_err(|_| {
                    DemonError::InvalidParameter("monitor poisoned; compaction skipped".into())
                })?;
                S::save_snapshot(
                    monitor.engine().maintainer(),
                    &wal::snapshot_dir_path(dir, gen),
                )?;
            }
            crash_point("mid_compaction");
            wal::write_current(dir, gen)?;
            Ok(())
        })();
        if result.is_ok() {
            // The old generations are shadowed by CURRENT=gen; deleting
            // them is cleanup, not correctness (recovery re-deletes).
            for g in wal::list_wal_generations(dir).unwrap_or_default() {
                if g < gen {
                    let _ = std::fs::remove_file(wal::wal_file_path(dir, g));
                }
            }
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if name.starts_with("snapshot-")
                        && wal::parse_snapshot_dir_name(name) != Some(gen)
                    {
                        let _ = std::fs::remove_dir_all(entry.path());
                    }
                }
            }
        }
        compacting.store(false, Ordering::SeqCst);
    }
}

fn worker_loop<S: ServableModel>(shared: &Arc<Shared<S>>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                handle_connection(shared, stream);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// Serves one connection until the peer hangs up, a timeout fires, or a
/// malformed frame arrives (transport damage drops the connection; a
/// malformed *payload* inside a valid frame gets a typed `Err` response
/// and the connection lives on).
fn handle_connection<S: ServableModel>(shared: &Arc<Shared<S>>, stream: TcpStream) {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "client".to_string());
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.io_timeout));
    let mut reader = &stream;
    loop {
        let (payload, bytes_in) =
            match protocol::read_message(&mut reader, FrameClass::REQUEST, &peer) {
                Ok(Some(message)) => message,
                // Clean close, timeout, or a corrupt frame: drop the
                // connection (there is no trustworthy frame boundary to
                // answer on).
                Ok(None) | Err(_) => return,
            };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ServeRequests);
        obs::add(Counter::ServeBytesIn, bytes_in as u64);
        let (response, shutdown_after) = match Request::decode(&payload) {
            Ok(request) => dispatch(shared, request),
            Err(e) => (Response::Err(WireError::Other(e.to_string())), false),
        };
        let mut writer = &stream;
        match protocol::write_message(&mut writer, FrameClass::RESPONSE, &response.encode()) {
            Ok(bytes_out) => obs::add(Counter::ServeBytesOut, bytes_out as u64),
            Err(_) => return,
        }
        if shutdown_after {
            begin_shutdown(shared);
            return;
        }
    }
}

fn dispatch<S: ServableModel>(shared: &Arc<Shared<S>>, request: Request) -> (Response, bool) {
    match request {
        Request::IngestBlock {
            class,
            id,
            interval,
            meta,
            payload,
        } => {
            if class != S::CLASS.tag() {
                return (
                    Response::Err(WireError::class_mismatch(S::CLASS, class)),
                    false,
                );
            }
            if let Some(msg) = S::meta_mismatch(shared.meta, meta) {
                return (Response::Err(WireError::Other(msg)), false);
            }
            let records = match S::decode_records(&payload, id, meta) {
                Ok(records) => records,
                Err(e) => return (Response::Err(WireError::Other(e.to_string())), false),
            };
            let block = match interval {
                Some(iv) => Block::with_interval(id, iv, records),
                None => Block::new(id, records),
            };
            let result = shared
                .queue
                .submit(block)
                .and_then(|done| done.wait());
            match result {
                Ok(()) => (Response::Ok, false),
                Err(e) => (Response::Err(e), false),
            }
        }
        Request::QueryModel { class } => {
            if let Some(c) = class {
                if c != S::CLASS.tag() {
                    return (Response::Err(WireError::class_mismatch(S::CLASS, c)), false);
                }
            }
            let monitor = match shared.monitor.read() {
                Ok(m) => m,
                Err(_) => {
                    return (
                        Response::Err(WireError::Other("monitor poisoned".into())),
                        false,
                    )
                }
            };
            match monitor.model() {
                Some(model) => match render_model::<S>(&shared.render_ctx, model) {
                    Ok(json) => (Response::Model(json), false),
                    Err(msg) => (Response::Err(WireError::Other(msg)), false),
                },
                None => (
                    Response::Err(WireError::Other("no model yet (no blocks ingested)".into())),
                    false,
                ),
            }
        }
        Request::QuerySequences => match shared.monitor.read() {
            Ok(monitor) => (Response::Sequences(monitor.sequences()), false),
            Err(_) => (
                Response::Err(WireError::Other("monitor poisoned".into())),
                false,
            ),
        },
        Request::Stats => (Response::Stats(stats_json(shared)), false),
        Request::Snapshot { dir } => {
            let monitor = match shared.monitor.read() {
                Ok(m) => m,
                Err(_) => {
                    return (
                        Response::Err(WireError::Other("monitor poisoned".into())),
                        false,
                    )
                }
            };
            // All-or-nothing: a failure leaves no partial directory at
            // `dir`, and the error stays typed end to end.
            match S::save_snapshot(monitor.engine().maintainer(), Path::new(&dir)) {
                Ok(blocks) => (Response::SnapshotDone(blocks), false),
                Err(DemonError::Io(e)) => (
                    Response::Err(WireError::Io(format!("snapshot to {dir}: {e}"))),
                    false,
                ),
                Err(e) => (
                    Response::Err(WireError::Other(format!("snapshot to {dir}: {e}"))),
                    false,
                ),
            }
        }
        Request::Shutdown => (Response::Ok, true),
    }
}

/// Renders the model through the class hook, unwrapping the typed
/// serialization error back to the exact seed message text.
fn render_model<S: ServableModel>(
    ctx: &S::RenderCtx,
    model: &MaintainedModel<S>,
) -> std::result::Result<String, String> {
    S::render_model_json(ctx, model).map_err(|e| match e {
        DemonError::Serde(msg) => msg,
        other => other.to_string(),
    })
}

/// The `Stats` body: the daemon's own gauges plus the full obs counter
/// table, as one JSON object. Built by hand — every key is a static
/// snake_case name, so no escaping is ever needed.
fn stats_json<S: ServableModel>(shared: &Arc<Shared<S>>) -> String {
    let mut out = format!(
        "{{\"blocks\":{},\"requests\":{},\"queue_depth\":{},\"counters\":{{",
        shared.blocks.load(Ordering::SeqCst),
        shared.requests.load(Ordering::Relaxed),
        shared.queue.depth(),
    );
    for (i, (name, value)) in obs::snapshot().counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("}}");
    out
}

/// Flags shutdown, closes the queue (the ingester drains what is
/// already queued, then exits) and wakes every worker out of `accept`
/// with throwaway connections.
fn begin_shutdown<S: ServableModel>(shared: &Arc<Shared<S>>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    for _ in 0..shared.workers {
        // Each connect pops one worker out of accept; it sees the flag
        // and exits. Failures are fine — the worker is already gone.
        let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
    }
}
