//! The serving abstraction: what a model class must provide to be
//! hosted by the daemon.
//!
//! The daemon itself is generic — one queue, one WAL, one monitor, one
//! wire protocol. Everything class-specific funnels through
//! [`ServableModel`]:
//!
//! | Capability | Trait hook |
//! |---|---|
//! | wire tag + name | [`ServableModel::CLASS`] |
//! | build the maintainer / oracle | [`ServableModel::maintainer`], [`ServableModel::oracle`] |
//! | per-block wire meta (universe / dim) | [`ServableModel::block_meta`], [`ServableModel::meta_mismatch`] |
//! | block-record wire codec | [`ServableModel::encode_records`], [`ServableModel::decode_records`] |
//! | model → canonical JSON | [`ServableModel::render_model_json`] |
//! | snapshot persist / load | [`ServableModel::save_snapshot`], [`ServableModel::load_snapshot`] |
//! | exact shard merge (optional) | [`ShardableModel`] |
//!
//! Four classes implement it: [`ItemsetModel`] (the seed daemon,
//! byte-for-byte unchanged), [`ClusterModel`] (BIRCH+ over point
//! blocks), [`TreeModel`] (windowed decision trees over labeled
//! points) and [`DbscanModel`] (incremental DBSCAN density models —
//! the one class whose `--window` engine slides by *deleting* the
//! departing block's points instead of refitting, via the
//! [`ServableModel::build_monitor`] hook).
//!
//! ## Sharding is a capability, not a default
//!
//! The partitioned runtime (`--shards ≥ 2`) needs an *exact*
//! scatter/gather: the model absorbed from per-shard stores must be
//! byte-identical to the 1-shard model. Frequent-itemset supports are
//! additive over disjoint block sets, so [`ItemsetModel`] implements
//! [`ShardableModel`]. A CF-tree's shape depends on insertion order
//! across the whole stream and a decision tree refits over every
//! covered record, so neither clusters nor trees can merge shards
//! exactly — they deliberately do **not** implement [`ShardableModel`],
//! and `--shards ≥ 2` with `--model clusters|trees` is refused with the
//! typed [`DemonError::ShardsUnsupported`] instead of silently serving
//! approximate answers.
//!
//! ## Generic snapshots
//!
//! Itemset snapshots keep the seed's `save_store_atomic` layout (the
//! BENCH gates and fsck know those bytes). Clusters and trees persist
//! through the storage engine's own framed [`Spillable`] encoding: one
//! `block_<id>.bin` per block plus a `blocks.manifest` (frame class
//! `SM`) naming the model class and the id set, written into a temp
//! directory and renamed — the same all-or-nothing contract.

use std::path::Path;

use crate::server::ServeConfig;
use demon_clustering::{BirchParams, DbscanParams, PointBlockEntry};
use demon_core::bss::{BlockSelector, WiBss};
use demon_core::engine::DataSpan;
use demon_core::maintainer::ModelMaintainer;
use demon_core::monitor::DemonMonitor;
use demon_core::{ClusterMaintainer, DbscanMaintainer, ItemsetMaintainer, TreeMaintainer};
use demon_focus::similarity::{
    ClusterSimilarity, DbscanSimilarity, ItemsetSimilarity, SimilarityConfig, SimilarityOracle,
    TreeSimilarity,
};
use demon_itemsets::persist::{
    decode_block_txs, encode_block_txs, load_store_configured, save_store_atomic, RecoveryPolicy,
};
use demon_itemsets::TxStore;
use demon_store::{BlockStore, Spillable, StoreConfig};
use demon_trees::{LabeledBlockEntry, LabeledPoint, TreeParams};
use demon_types::durable::{self, FrameClass};
use demon_types::{Block, BlockId, DemonError, ModelClass, Point, Result};

/// The maintained model type of a servable class.
pub type MaintainedModel<S> = <<S as ServableModel>::Maintainer as ModelMaintainer>::Model;

/// Everything the daemon needs from a model class. All hooks are
/// associated functions — implementors are zero-sized markers, never
/// instantiated.
pub trait ServableModel: Send + Sync + 'static {
    /// The record type of the monitored block stream.
    type Record: Clone + Send + Sync + 'static;
    /// The incremental maintainer (paper §3.1).
    type Maintainer: ModelMaintainer<Record = Self::Record> + Send + Sync + 'static;
    /// The FOCUS similarity oracle feeding the pattern miner.
    type Oracle: SimilarityOracle<Self::Record> + Send + Sync + 'static;
    /// What [`ServableModel::render_model_json`] needs besides the model
    /// itself (e.g. the BIRCH phase-2 parameters). `()` when rendering
    /// is pure serialization.
    type RenderCtx: Clone + Send + Sync + 'static;

    /// The wire/WAL class tag.
    const CLASS: ModelClass;

    /// Builds the maintainer from the daemon config.
    fn maintainer(config: &ServeConfig) -> Result<Self::Maintainer>;

    /// Builds the full monitor (engine + pattern miner) from the daemon
    /// config. The default maps `--window` to GEMM's most-recent-window
    /// span; classes with a cheaper window mechanism (incremental DBSCAN
    /// slides by deletion) override it.
    fn build_monitor(config: &ServeConfig) -> Result<DemonMonitor<Self::Maintainer, Self::Oracle>> {
        let span = match config.window {
            None => DataSpan::Unrestricted(WiBss::All),
            Some(w) => DataSpan::MostRecent {
                w,
                selector: BlockSelector::all(),
            },
        };
        DemonMonitor::new(
            Self::maintainer(config)?,
            span,
            Self::oracle(config),
            config.pattern_window,
        )
    }

    /// Builds the similarity oracle from the daemon config.
    fn oracle(config: &ServeConfig) -> Self::Oracle;

    /// The per-block wire meta this daemon expects (item-universe size
    /// for itemsets, point dimensionality for clusters and trees).
    fn block_meta(config: &ServeConfig) -> u32;

    /// The typed-refusal text when a client's block meta disagrees with
    /// the daemon's, or `None` when they agree.
    fn meta_mismatch(expected: u32, got: u32) -> Option<String>;

    /// Encodes a block's records (records only — id and interval travel
    /// at the protocol layer).
    fn encode_records(block: &Block<Self::Record>) -> Result<Vec<u8>>;

    /// Decodes a record payload, validating against `meta`.
    fn decode_records(payload: &[u8], id: BlockId, meta: u32) -> Result<Vec<Self::Record>>;

    /// Captures whatever rendering needs from the maintainer.
    fn render_ctx(maintainer: &Self::Maintainer) -> Self::RenderCtx;

    /// The model as canonical JSON — the exact `QueryModel` body, byte-
    /// identical to what the batch pipeline prints for the same blocks.
    fn render_model_json(ctx: &Self::RenderCtx, model: &MaintainedModel<Self>) -> Result<String>;

    /// Ids of every block the maintainer holds, ascending.
    fn block_ids(maintainer: &Self::Maintainer) -> Vec<BlockId>;

    /// Persists the maintainer's blocks to `dir` all-or-nothing;
    /// returns the persisted block count.
    fn save_snapshot(maintainer: &Self::Maintainer, dir: &Path) -> Result<u64>;

    /// Loads a [`ServableModel::save_snapshot`] directory back into
    /// blocks, ascending by id, strictly (corruption is a typed error).
    fn load_snapshot(dir: &Path, config: &ServeConfig) -> Result<Vec<Block<Self::Record>>>;
}

/// The optional exact shard-merge capability behind `--shards ≥ 2`.
///
/// Implementing this is a *proof obligation*: the model absorbed via
/// [`ShardableModel::absorb_sharded`] over disjoint per-shard stores
/// must be byte-identical to the model a single maintainer would
/// produce from the same stream. Classes whose models depend on global
/// insertion order (CF-trees, refitted decision trees) must not
/// implement it — the daemon then refuses sharding with the typed
/// [`DemonError::ShardsUnsupported`].
pub trait ShardableModel: ServableModel {
    /// Absorbs block `id` into `model`, counting across the per-shard
    /// stores (exact scatter/gather).
    fn absorb_sharded(
        model: &mut MaintainedModel<Self>,
        shards: &[Self::Maintainer],
        id: BlockId,
        config: &ServeConfig,
    ) -> Result<()>;

    /// Gathers every shard's blocks into one fresh single-store
    /// maintainer, registered in block-id order — the exact 1-shard
    /// register path, so the merged store is byte-identical to what a
    /// `--shards 1` daemon would persist. This is the one merge helper
    /// behind both the `Snapshot` verb and WAL compaction.
    fn merged_maintainer(
        config: &ServeConfig,
        shards: &[Self::Maintainer],
        latest: Option<BlockId>,
    ) -> Result<Self::Maintainer>;
}

/// Frequent itemsets + compact sequences — the seed daemon's class.
pub enum ItemsetModel {}

impl ServableModel for ItemsetModel {
    type Record = demon_types::Transaction;
    type Maintainer = ItemsetMaintainer;
    type Oracle = ItemsetSimilarity;
    type RenderCtx = ();

    const CLASS: ModelClass = ModelClass::Itemsets;

    fn maintainer(config: &ServeConfig) -> Result<ItemsetMaintainer> {
        ItemsetMaintainer::with_store_config(
            config.n_items,
            config.minsup,
            config.counter,
            &config.store_config,
        )
    }

    fn oracle(config: &ServeConfig) -> ItemsetSimilarity {
        ItemsetSimilarity::new(
            config.n_items,
            config.minsup,
            SimilarityConfig::Threshold {
                alpha: config.alpha,
            },
        )
    }

    fn block_meta(config: &ServeConfig) -> u32 {
        config.n_items
    }

    fn meta_mismatch(expected: u32, got: u32) -> Option<String> {
        (got != expected).then(|| {
            format!("item universe mismatch: client encoded {got}, server monitors {expected}")
        })
    }

    fn encode_records(block: &Block<Self::Record>) -> Result<Vec<u8>> {
        Ok(encode_block_txs(block))
    }

    fn decode_records(payload: &[u8], id: BlockId, meta: u32) -> Result<Vec<Self::Record>> {
        Ok(decode_block_txs(payload, id, meta)?.into_records())
    }

    fn render_ctx(_maintainer: &ItemsetMaintainer) -> Self::RenderCtx {}

    fn render_model_json((): &Self::RenderCtx, model: &MaintainedModel<Self>) -> Result<String> {
        serde_json::to_string(model)
            .map_err(|e| DemonError::Serde(format!("model serialization: {e}")))
    }

    fn block_ids(maintainer: &ItemsetMaintainer) -> Vec<BlockId> {
        maintainer.store().block_ids().to_vec()
    }

    fn save_snapshot(maintainer: &ItemsetMaintainer, dir: &Path) -> Result<u64> {
        save_store_atomic(maintainer.store(), dir)?;
        Ok(maintainer.store().len() as u64)
    }

    fn load_snapshot(dir: &Path, _config: &ServeConfig) -> Result<Vec<Block<Self::Record>>> {
        // Loaded into a transient in-memory store and handed back as
        // blocks; the caller replays them into the configured engine.
        let (store, _) = load_store_configured(dir, RecoveryPolicy::Strict, &StoreConfig::InMemory)?;
        store
            .block_ids()
            .to_vec()
            .iter()
            .map(|&id| {
                store
                    .block(id)
                    .map(|b| (*b).clone())
                    .ok_or(DemonError::UnknownBlock(id.value()))
            })
            .collect()
    }
}

impl ShardableModel for ItemsetModel {
    fn absorb_sharded(
        model: &mut MaintainedModel<Self>,
        shards: &[ItemsetMaintainer],
        id: BlockId,
        config: &ServeConfig,
    ) -> Result<()> {
        let stores: Vec<&TxStore> = shards.iter().map(ItemsetMaintainer::store).collect();
        model.absorb_block_sharded(&stores, id, config.counter)?;
        Ok(())
    }

    fn merged_maintainer(
        config: &ServeConfig,
        shards: &[ItemsetMaintainer],
        latest: Option<BlockId>,
    ) -> Result<ItemsetMaintainer> {
        let mut merged = ItemsetMaintainer::with_store_config(
            config.n_items,
            config.minsup,
            config.counter,
            &StoreConfig::InMemory,
        )?;
        let last = latest.map_or(0, |b| b.value());
        for id in 1..=last {
            let id = BlockId(id);
            let s = crate::shard::shard_of(id, shards.len());
            let block = (*shards[s]
                .store()
                .block(id)
                .ok_or(DemonError::UnknownBlock(id.value()))?)
            .clone();
            merged.register_block(block);
        }
        Ok(merged)
    }
}

/// BIRCH+ cluster maintenance over point blocks.
pub enum ClusterModel {}

impl ClusterModel {
    fn params(config: &ServeConfig) -> BirchParams {
        BirchParams::new(config.dim, config.k)
    }
}

impl ServableModel for ClusterModel {
    type Record = Point;
    type Maintainer = ClusterMaintainer;
    type Oracle = ClusterSimilarity;
    type RenderCtx = BirchParams;

    const CLASS: ModelClass = ModelClass::Clusters;

    fn maintainer(config: &ServeConfig) -> Result<ClusterMaintainer> {
        ClusterMaintainer::with_store_config(Self::params(config), &config.store_config)
    }

    fn oracle(config: &ServeConfig) -> ClusterSimilarity {
        ClusterSimilarity::new(Self::params(config), config.alpha)
    }

    fn block_meta(config: &ServeConfig) -> u32 {
        config.dim as u32
    }

    fn meta_mismatch(expected: u32, got: u32) -> Option<String> {
        dim_mismatch(expected, got)
    }

    fn encode_records(block: &Block<Point>) -> Result<Vec<u8>> {
        let dim = block.records().first().map_or(0, |p| p.coords().len());
        let mut buf = Vec::with_capacity(8 + block.len() * dim * 8);
        buf.extend_from_slice(&(block.len() as u64).to_le_bytes());
        for p in block.records() {
            if p.coords().len() != dim {
                return Err(DemonError::Serde(format!(
                    "block {}: mixed point dimensions {} and {dim}",
                    block.id(),
                    p.coords().len()
                )));
            }
            for &c in p.coords() {
                buf.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
        Ok(buf)
    }

    fn decode_records(payload: &[u8], id: BlockId, meta: u32) -> Result<Vec<Point>> {
        decode_point_rows(payload, id, meta as usize, 0).map(|rows| {
            rows.into_iter()
                .map(|(_, coords)| Point::new(coords))
                .collect()
        })
    }

    fn render_ctx(maintainer: &ClusterMaintainer) -> BirchParams {
        *maintainer.params()
    }

    fn render_model_json(params: &BirchParams, model: &MaintainedModel<Self>) -> Result<String> {
        serde_json::to_string(&demon_clustering::phase2_model(model, params))
            .map_err(|e| DemonError::Serde(format!("model serialization: {e}")))
    }

    fn block_ids(maintainer: &ClusterMaintainer) -> Vec<BlockId> {
        maintainer.store().ids()
    }

    fn save_snapshot(maintainer: &ClusterMaintainer, dir: &Path) -> Result<u64> {
        save_blocks_atomic(maintainer.store(), Self::CLASS, dir)
    }

    fn load_snapshot(dir: &Path, _config: &ServeConfig) -> Result<Vec<Block<Point>>> {
        load_blocks_strict::<PointBlockEntry>(dir, Self::CLASS).map(|entries| {
            entries.into_iter().map(|e| e.0).collect()
        })
    }
}

/// Incremental DBSCAN density models over point blocks.
///
/// Shares [`ClusterModel`]'s wire codec and snapshot layout (both
/// persist raw point blocks through [`PointBlockEntry`]); differs in
/// the maintainer (deletion-capable [`DbscanMaintainer`]), the oracle
/// (core-reachability deviation), the rendered body (the canonical
/// [`demon_clustering::DbscanSummary`]) and the window engine — see
/// the [`ServableModel::build_monitor`] override.
pub enum DbscanModel {}

impl DbscanModel {
    fn params(config: &ServeConfig) -> DbscanParams {
        DbscanParams::new(config.dim, config.eps, config.min_pts)
    }
}

impl ServableModel for DbscanModel {
    type Record = Point;
    type Maintainer = DbscanMaintainer;
    type Oracle = DbscanSimilarity;
    type RenderCtx = ();

    const CLASS: ModelClass = ModelClass::Density;

    fn maintainer(config: &ServeConfig) -> Result<DbscanMaintainer> {
        DbscanMaintainer::with_store_config(Self::params(config), &config.store_config)
    }

    /// `--window w` slides by **deletion**: absorb the arriving block
    /// into the incremental structure, shed the departing one through
    /// `IncrementalDbscan::remove` — no per-window refits (paper
    /// §3.2.4's insert/delete cost asymmetry, made servable).
    fn build_monitor(config: &ServeConfig) -> Result<DemonMonitor<Self::Maintainer, Self::Oracle>> {
        match config.window {
            None => DemonMonitor::new(
                Self::maintainer(config)?,
                DataSpan::Unrestricted(WiBss::All),
                Self::oracle(config),
                config.pattern_window,
            ),
            Some(w) => DemonMonitor::new_decremental(
                Self::maintainer(config)?,
                w,
                Self::oracle(config),
                config.pattern_window,
            ),
        }
    }

    fn oracle(config: &ServeConfig) -> DbscanSimilarity {
        DbscanSimilarity::new(Self::params(config), config.alpha)
    }

    fn block_meta(config: &ServeConfig) -> u32 {
        config.dim as u32
    }

    fn meta_mismatch(expected: u32, got: u32) -> Option<String> {
        dim_mismatch(expected, got)
    }

    fn encode_records(block: &Block<Point>) -> Result<Vec<u8>> {
        ClusterModel::encode_records(block)
    }

    fn decode_records(payload: &[u8], id: BlockId, meta: u32) -> Result<Vec<Point>> {
        ClusterModel::decode_records(payload, id, meta)
    }

    fn render_ctx(_maintainer: &DbscanMaintainer) -> Self::RenderCtx {}

    fn render_model_json((): &Self::RenderCtx, model: &MaintainedModel<Self>) -> Result<String> {
        serde_json::to_string(&model.summary())
            .map_err(|e| DemonError::Serde(format!("model serialization: {e}")))
    }

    fn block_ids(maintainer: &DbscanMaintainer) -> Vec<BlockId> {
        maintainer.store().ids()
    }

    fn save_snapshot(maintainer: &DbscanMaintainer, dir: &Path) -> Result<u64> {
        save_blocks_atomic(maintainer.store(), Self::CLASS, dir)
    }

    fn load_snapshot(dir: &Path, _config: &ServeConfig) -> Result<Vec<Block<Point>>> {
        load_blocks_strict::<PointBlockEntry>(dir, Self::CLASS)
            .map(|entries| entries.into_iter().map(|e| e.0).collect())
    }
}

/// Windowed decision trees over labeled point blocks.
pub enum TreeModel {}

impl TreeModel {
    fn params(config: &ServeConfig) -> TreeParams {
        TreeParams::new(config.classes)
    }
}

impl ServableModel for TreeModel {
    type Record = LabeledPoint;
    type Maintainer = TreeMaintainer;
    type Oracle = TreeSimilarity;
    type RenderCtx = ();

    const CLASS: ModelClass = ModelClass::Trees;

    fn maintainer(config: &ServeConfig) -> Result<TreeMaintainer> {
        TreeMaintainer::with_store_config(config.dim, Self::params(config), &config.store_config)
    }

    fn oracle(config: &ServeConfig) -> TreeSimilarity {
        TreeSimilarity::new(config.dim, Self::params(config), config.alpha)
    }

    fn block_meta(config: &ServeConfig) -> u32 {
        config.dim as u32
    }

    fn meta_mismatch(expected: u32, got: u32) -> Option<String> {
        dim_mismatch(expected, got)
    }

    fn encode_records(block: &Block<LabeledPoint>) -> Result<Vec<u8>> {
        let dim = block
            .records()
            .first()
            .map_or(0, |r| r.point.coords().len());
        let mut buf = Vec::with_capacity(8 + block.len() * (1 + dim) * 8);
        buf.extend_from_slice(&(block.len() as u64).to_le_bytes());
        for r in block.records() {
            if r.point.coords().len() != dim {
                return Err(DemonError::Serde(format!(
                    "block {}: mixed point dimensions {} and {dim}",
                    block.id(),
                    r.point.coords().len()
                )));
            }
            buf.extend_from_slice(&u64::from(r.label).to_le_bytes());
            for &c in r.point.coords() {
                buf.extend_from_slice(&c.to_bits().to_le_bytes());
            }
        }
        Ok(buf)
    }

    fn decode_records(payload: &[u8], id: BlockId, meta: u32) -> Result<Vec<LabeledPoint>> {
        decode_point_rows(payload, id, meta as usize, 1)?
            .into_iter()
            .map(|(head, coords)| {
                let label = u32::try_from(head[0]).map_err(|_| {
                    DemonError::Serde(format!("block {id}: label {} overflows u32", head[0]))
                })?;
                Ok(LabeledPoint {
                    point: Point::new(coords),
                    label,
                })
            })
            .collect()
    }

    fn render_ctx(_maintainer: &TreeMaintainer) -> Self::RenderCtx {}

    fn render_model_json((): &Self::RenderCtx, model: &MaintainedModel<Self>) -> Result<String> {
        serde_json::to_string(model)
            .map_err(|e| DemonError::Serde(format!("model serialization: {e}")))
    }

    fn block_ids(maintainer: &TreeMaintainer) -> Vec<BlockId> {
        maintainer.store().ids()
    }

    fn save_snapshot(maintainer: &TreeMaintainer, dir: &Path) -> Result<u64> {
        save_blocks_atomic(maintainer.store(), Self::CLASS, dir)
    }

    fn load_snapshot(dir: &Path, _config: &ServeConfig) -> Result<Vec<Block<LabeledPoint>>> {
        load_blocks_strict::<LabeledBlockEntry>(dir, Self::CLASS).map(|entries| {
            entries.into_iter().map(|e| e.0).collect()
        })
    }
}

/// The dimension-mismatch refusal shared by the point-record classes.
fn dim_mismatch(expected: u32, got: u32) -> Option<String> {
    (got != expected)
        .then(|| format!("dimension mismatch: client encoded {got}, server expects {expected}"))
}

/// Decodes a `count | rows` point payload: each row is `extra` leading
/// u64 fields (e.g. the label) followed by `dim` f64 bit patterns. The
/// payload length must match exactly — a short or padded payload is a
/// typed error, never a partial block.
fn decode_point_rows(
    payload: &[u8],
    id: BlockId,
    dim: usize,
    extra: usize,
) -> Result<Vec<(Vec<u64>, Vec<f64>)>> {
    if payload.len() < 8 {
        return Err(DemonError::Serde(format!(
            "block {id}: truncated record payload ({} bytes)",
            payload.len()
        )));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&payload[..8]);
    let count = u64::from_le_bytes(raw);
    let need = count
        .checked_mul((extra + dim) as u64)
        .and_then(|w| w.checked_mul(8))
        .and_then(|w| w.checked_add(8));
    if need != Some(payload.len() as u64) {
        return Err(DemonError::Serde(format!(
            "block {id}: record payload size mismatch ({count} records of dim {dim})"
        )));
    }
    let mut pos = 8usize;
    let mut next_u64 = || {
        raw.copy_from_slice(&payload[pos..pos + 8]);
        pos += 8;
        u64::from_le_bytes(raw)
    };
    let mut rows = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let head: Vec<u64> = (0..extra).map(|_| next_u64()).collect();
        let coords: Vec<f64> = (0..dim).map(|_| f64::from_bits(next_u64())).collect();
        rows.push((head, coords));
    }
    Ok(rows)
}

/// Persists a [`BlockStore`] to `dir` all-or-nothing through the
/// engine's own framed [`Spillable`] encoding: `block_<id>.bin` per
/// block plus a `blocks.manifest` (class tag + id set, frame class
/// `SM`), written into `<dir>.tmp` and renamed only once complete —
/// the same contract as the itemset store's `save_store_atomic`.
fn save_blocks_atomic<R: Spillable>(
    store: &BlockStore<R>,
    class: ModelClass,
    dir: &Path,
) -> Result<u64> {
    let tmp = durable::tmp_path(dir);
    if tmp.exists() {
        std::fs::remove_dir_all(&tmp)?;
    }
    let ids = store.ids();
    let write = (|| -> Result<()> {
        std::fs::create_dir_all(&tmp)?;
        for &id in &ids {
            let entry = store
                .get(id)?
                .ok_or(DemonError::UnknownBlock(id.value()))?;
            let payload = entry.encode()?;
            durable::write_framed(
                &tmp.join(format!("block_{}.bin", id.value())),
                R::frame_class(),
                &payload,
            )?;
        }
        let mut manifest = Vec::with_capacity(9 + ids.len() * 8);
        manifest.push(class.tag());
        manifest.extend_from_slice(&(ids.len() as u64).to_le_bytes());
        for &id in &ids {
            manifest.extend_from_slice(&id.value().to_le_bytes());
        }
        durable::write_framed(
            &tmp.join("blocks.manifest"),
            FrameClass::SNAP_MANIFEST,
            &manifest,
        )?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_dir_all(&tmp);
        return Err(e);
    }
    if dir.exists() {
        let old = dir.with_extension("old");
        let _ = std::fs::remove_dir_all(&old);
        std::fs::rename(dir, &old)?;
        std::fs::rename(&tmp, dir)?;
        let _ = std::fs::remove_dir_all(&old);
    } else {
        std::fs::rename(&tmp, dir)?;
    }
    if let Some(parent) = dir.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(ids.len() as u64)
}

/// Loads a [`save_blocks_atomic`] directory strictly: every frame CRC
/// must verify, the manifest's class must match, and every listed block
/// must decode to its manifest id.
fn load_blocks_strict<R: Spillable>(dir: &Path, class: ModelClass) -> Result<Vec<R>> {
    let (manifest, _) = durable::read_framed(&dir.join("blocks.manifest"), FrameClass::SNAP_MANIFEST)?;
    if manifest.len() < 9 {
        return Err(DemonError::Serde(format!(
            "snapshot manifest too short ({} bytes)",
            manifest.len()
        )));
    }
    let tag = manifest[0];
    if tag != class.tag() {
        return Err(DemonError::ModelClassMismatch {
            expected: class.name().to_string(),
            got: ModelClass::describe_tag(tag),
        });
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&manifest[1..9]);
    let count = u64::from_le_bytes(raw) as usize;
    if manifest.len() != 9 + count * 8 {
        return Err(DemonError::Serde(format!(
            "snapshot manifest size mismatch ({count} ids)"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for i in 0..count {
        raw.copy_from_slice(&manifest[9 + i * 8..17 + i * 8]);
        let id = u64::from_le_bytes(raw);
        let path = dir.join(format!("block_{id}.bin"));
        let (payload, _) = durable::read_framed(&path, R::frame_class())?;
        entries.push(R::decode(&payload)?);
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{BlockInterval, Timestamp};
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("demon-serve-model-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn point_block(id: u64) -> Block<Point> {
        Block::with_interval(
            BlockId(id),
            BlockInterval::new(Timestamp(id), Timestamp(id + 1)),
            (0..6)
                .map(|i| Point::new(vec![i as f64 * 0.5, -(i as f64)]))
                .collect(),
        )
    }

    fn labeled_block(id: u64) -> Block<LabeledPoint> {
        Block::new(
            BlockId(id),
            (0..6)
                .map(|i| LabeledPoint::new(vec![i as f64, 1.0 - i as f64], (i % 2) as u32))
                .collect(),
        )
    }

    #[test]
    fn point_records_roundtrip_and_validate() {
        let block = point_block(3);
        let payload = ClusterModel::encode_records(&block).expect("encode");
        let records = ClusterModel::decode_records(&payload, BlockId(3), 2).expect("decode");
        assert_eq!(records, block.records());
        // Wrong dimension: the exact-length check refuses the payload.
        assert!(ClusterModel::decode_records(&payload, BlockId(3), 3).is_err());
        assert!(ClusterModel::decode_records(&payload[..payload.len() - 1], BlockId(3), 2).is_err());
    }

    #[test]
    fn labeled_records_roundtrip_and_validate() {
        let block = labeled_block(7);
        let payload = TreeModel::encode_records(&block).expect("encode");
        let records = TreeModel::decode_records(&payload, BlockId(7), 2).expect("decode");
        assert_eq!(records, block.records());
        assert!(TreeModel::decode_records(&payload, BlockId(7), 5).is_err());
        assert!(TreeModel::decode_records(&payload[..7], BlockId(7), 2).is_err());
    }

    #[test]
    fn generic_snapshots_roundtrip_and_pin_the_class() {
        let tmp = scratch("roundtrip");
        let store: BlockStore<PointBlockEntry> = BlockStore::in_memory();
        store.insert(BlockId(1), PointBlockEntry(point_block(1)));
        store.insert(BlockId(2), PointBlockEntry(point_block(2)));
        let dir = tmp.join("snap");
        let n = save_blocks_atomic(&store, ModelClass::Clusters, &dir).expect("save");
        assert_eq!(n, 2);

        let entries = load_blocks_strict::<PointBlockEntry>(&dir, ModelClass::Clusters)
            .expect("load");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0.records(), point_block(1).records());
        assert_eq!(entries[0].0.interval(), point_block(1).interval());

        // A labeled-tree daemon refuses the cluster snapshot with the
        // typed class mismatch, not a decode soup.
        let err = load_blocks_strict::<LabeledBlockEntry>(&dir, ModelClass::Trees)
            .expect_err("cross-class load");
        assert!(
            matches!(&err, DemonError::ModelClassMismatch { expected, got }
                if expected == "trees" && got == "clusters"),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&tmp);
    }

    #[test]
    fn snapshot_overwrite_is_atomic() {
        let tmp = scratch("overwrite");
        let dir = tmp.join("snap");
        let store: BlockStore<PointBlockEntry> = BlockStore::in_memory();
        store.insert(BlockId(1), PointBlockEntry(point_block(1)));
        save_blocks_atomic(&store, ModelClass::Clusters, &dir).expect("first save");
        store.insert(BlockId(2), PointBlockEntry(point_block(2)));
        save_blocks_atomic(&store, ModelClass::Clusters, &dir).expect("overwrite");
        let entries =
            load_blocks_strict::<PointBlockEntry>(&dir, ModelClass::Clusters).expect("load");
        assert_eq!(entries.len(), 2);
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
