//! The wire protocol: framed, checksummed request/response messages.
//!
//! Every message is one frame in the workspace's durable file format
//! ([`demon_types::durable`], format version 2): the 20-byte header
//! (magic, version, class tag, payload length, CRC32) followed by the
//! payload. Requests carry class `RQ`, responses class `RS` — a response
//! replayed into a request socket is rejected by the class check before
//! any payload decoding, exactly like a shelf model copied over a block
//! file on disk.
//!
//! ## Payload layout
//!
//! The first payload byte is the verb (request) or status (response)
//! tag; the rest is verb-specific. Numbers are fixed-width little-endian
//! (the payloads are small; varint packing buys nothing on a socket that
//! already frames). The protocol is generic over the model class: an
//! `IngestBlock` carries a one-byte [`demon_types::ModelClass`] tag, a
//! class-specific `meta` word (the item-universe size for itemsets, the
//! dimensionality for points and labeled points), and the records as
//! opaque class-codec bytes (for itemsets,
//! [`demon_itemsets::persist::encode_block_txs`] — a block crosses the
//! wire in exactly the bytes it persists as). The daemon decodes the
//! records through its `ServableModel` codec after checking the class
//! tag, so a foreign-class payload is rejected typed, never
//! misinterpreted.
//!
//! | request | tag | body |
//! |---|---|---|
//! | `IngestBlock` | 1 | class u8; block id u64; interval flag u8 (+ start/end u64); meta u32; record payload len u32; record payload |
//! | `QueryModel` | 2 | optionally: class u8 (absent = any class) |
//! | `QuerySequences` | 3 | — |
//! | `Stats` | 4 | — |
//! | `Snapshot` | 5 | dir len u32; dir bytes (UTF-8) |
//! | `Shutdown` | 6 | — |
//!
//! | response | tag | body |
//! |---|---|---|
//! | `Ok` | 0 | — |
//! | `Model` | 1 | model JSON (UTF-8) |
//! | `Sequences` | 2 | count u32; per sequence: len u32 + block ids u64 |
//! | `Stats` | 3 | stats JSON (UTF-8) |
//! | `SnapshotDone` | 4 | persisted block count u64 |
//! | `Err` | 5 | error code u8; code-specific body (see [`WireError`]) |
//!
//! Either side reads a message by pulling the fixed-size header,
//! validating magic/version/class ([`durable::decode_frame_header`]),
//! bounding the promised length by [`MAX_PAYLOAD`], then pulling and
//! CRC-checking the payload ([`durable::verify_frame_payload`]). A
//! clean EOF at a frame boundary means the peer hung up.

use demon_types::durable::{self, FrameClass, FRAME_HEADER_LEN};
use demon_types::{BlockId, BlockInterval, DemonError, ModelClass, Result, Timestamp};
use std::io::{Read, Write};

/// Upper bound on a single message payload (64 MiB). A header promising
/// more is corruption (or a hostile peer), not a large block.
pub const MAX_PAYLOAD: u64 = 64 << 20;

/// A request verb, as decoded from one `RQ` frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// Append one block to the monitored stream (through the server's
    /// bounded ingest queue). The block id and interval are protocol-level
    /// fields (the sequencer routes and dup-checks on them before any
    /// class-specific decoding); the records are opaque class-codec bytes
    /// validated against the daemon's own class and meta.
    IngestBlock {
        /// The model-class tag the payload is encoded for.
        class: u8,
        /// The block's id in the evolution sequence.
        id: BlockId,
        /// The block's wall-clock interval, when timestamped.
        interval: Option<BlockInterval>,
        /// Class-specific shape word: the item-universe size the client
        /// encoded against (itemsets) or the record dimensionality
        /// (clusters, trees).
        meta: u32,
        /// The records, in the class codec's bytes.
        payload: Vec<u8>,
    },
    /// Fetch the current model as canonical JSON. Optionally pins the
    /// model class the client expects — a daemon of a different class
    /// answers with a typed mismatch instead of JSON the client would
    /// misparse. `None` (the legacy encoding) accepts any class.
    QueryModel {
        /// The expected model-class tag, if the client pins one.
        class: Option<u8>,
    },
    /// Fetch the current compact block sequences.
    QuerySequences,
    /// Fetch the daemon's ingest count and obs counter table as JSON.
    Stats,
    /// Atomically persist the monitored store to a directory on the
    /// server's filesystem.
    Snapshot {
        /// Target directory (server-side path).
        dir: String,
    },
    /// Drain the ingest queue, stop accepting connections, exit cleanly.
    Shutdown,
}

/// A response, as decoded from one `RS` frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The request succeeded and has no body.
    Ok,
    /// The current model, serialized as canonical JSON.
    Model(String),
    /// The current compact block sequences.
    Sequences(Vec<Vec<BlockId>>),
    /// Daemon stats as JSON (`{"blocks":…,"counters":{…}}`).
    Stats(String),
    /// A snapshot completed; the payload is the persisted block count.
    SnapshotDone(u64),
    /// The request failed; the payload is a typed error the client can
    /// react to (retry, treat as already-applied, give up).
    Err(WireError),
}

/// A typed failure crossing the wire (response tag 5): one error-code
/// byte followed by code-specific fields, so a client reacts to the
/// *kind* of failure instead of parsing prose.
///
/// | code | variant | body |
/// |---|---|---|
/// | 0 | `Other` | message (UTF-8) |
/// | 1 | `Duplicate` | replayed id u64; latest applied id u64 |
/// | 2 | `Busy` | message (UTF-8) |
/// | 3 | `Io` | message (UTF-8) |
/// | 4 | `ClassMismatch` | daemon class tag u8; request class tag u8 |
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Any failure without a more specific code.
    Other(String),
    /// The ingested block id was already applied. A client that lost an
    /// ack to a transport fault treats this as success on retry: the
    /// ack was lost, not the block.
    Duplicate {
        /// The replayed block id.
        id: u64,
        /// The latest block id the daemon has already applied.
        latest: u64,
    },
    /// The daemon could not take the request right now (ingest queue
    /// full past the backpressure deadline, or shutting down) —
    /// retryable after a backoff.
    Busy(String),
    /// A server-side I/O failure (WAL append, snapshot write).
    Io(String),
    /// The request's model-class tag does not match the class this
    /// daemon maintains. Not retryable: the client is talking to the
    /// wrong daemon (or encoding for the wrong model).
    ClassMismatch {
        /// The class tag the daemon maintains.
        expected: u8,
        /// The class tag the request carried.
        got: u8,
    },
}

impl WireError {
    /// Builds the wire form of a server-side [`DemonError`], preserving
    /// the variants clients dispatch on.
    pub fn from_error(e: &DemonError) -> WireError {
        match e {
            DemonError::DuplicateBlock { id, latest } => WireError::Duplicate {
                id: *id,
                latest: *latest,
            },
            DemonError::Io(io) => WireError::Io(io.to_string()),
            other => WireError::Other(other.to_string()),
        }
    }

    /// The typed class-mismatch error for a daemon of class `expected`
    /// receiving a payload tagged `got`.
    pub fn class_mismatch(expected: ModelClass, got: u8) -> WireError {
        WireError::ClassMismatch {
            expected: expected.tag(),
            got,
        }
    }

    /// The client-side [`DemonError`] this wire error stands for:
    /// `Duplicate` becomes the engine's own typed
    /// [`DemonError::DuplicateBlock`], everything else a
    /// [`DemonError::Remote`] carrying the daemon's message.
    pub fn into_error(self) -> DemonError {
        match self {
            WireError::Duplicate { id, latest } => DemonError::DuplicateBlock { id, latest },
            WireError::ClassMismatch { expected, got } => DemonError::ModelClassMismatch {
                expected: ModelClass::describe_tag(expected),
                got: ModelClass::describe_tag(got),
            },
            WireError::Busy(msg) | WireError::Io(msg) | WireError::Other(msg) => {
                DemonError::Remote(msg)
            }
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Other(msg) | WireError::Busy(msg) | WireError::Io(msg) => {
                write!(f, "{msg}")
            }
            WireError::Duplicate { id, latest } => write!(
                f,
                "duplicate block D{id}: the daemon already applied blocks up to D{latest}"
            ),
            WireError::ClassMismatch { expected, got } => write!(
                f,
                "model class mismatch: this daemon maintains {}, but the request is tagged {}",
                ModelClass::describe_tag(*expected),
                ModelClass::describe_tag(*got)
            ),
        }
    }
}

// --- primitive readers over a positioned byte slice ---

fn get_u8(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u8> {
    let b = *bytes
        .get(*pos)
        .ok_or_else(|| DemonError::Serde(format!("{what}: unexpected end of payload at {pos}")))?;
    *pos += 1;
    Ok(b)
}

fn get_u32(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u32> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DemonError::Serde(format!("{what}: unexpected end of payload at {pos}")))?;
    let v = u32::from_le_bytes(bytes[*pos..end].try_into().map_err(|_| {
        DemonError::Serde(format!("{what}: unreachable 4-byte slice at {pos}"))
    })?);
    *pos = end;
    Ok(v)
}

fn get_u64(bytes: &[u8], pos: &mut usize, what: &str) -> Result<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DemonError::Serde(format!("{what}: unexpected end of payload at {pos}")))?;
    let v = u64::from_le_bytes(bytes[*pos..end].try_into().map_err(|_| {
        DemonError::Serde(format!("{what}: unreachable 8-byte slice at {pos}"))
    })?);
    *pos = end;
    Ok(v)
}

fn get_str(bytes: &[u8], pos: &mut usize, what: &str) -> Result<String> {
    let len = get_u32(bytes, pos, what)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DemonError::Serde(format!("{what}: length {len} exceeds payload")))?;
    let s = std::str::from_utf8(&bytes[*pos..end])
        .map_err(|e| DemonError::Serde(format!("{what}: invalid UTF-8: {e}")))?
        .to_string();
    *pos = end;
    Ok(s)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Serializes the request into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::IngestBlock {
                class,
                id,
                interval,
                meta,
                payload,
            } => {
                buf.push(1);
                buf.push(*class);
                buf.extend_from_slice(&id.value().to_le_bytes());
                match interval {
                    Some(iv) => {
                        buf.push(1);
                        buf.extend_from_slice(&iv.start.0.to_le_bytes());
                        buf.extend_from_slice(&iv.end.0.to_le_bytes());
                    }
                    None => buf.push(0),
                }
                buf.extend_from_slice(&meta.to_le_bytes());
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(payload);
            }
            Request::QueryModel { class } => {
                buf.push(2);
                if let Some(class) = class {
                    buf.push(*class);
                }
            }
            Request::QuerySequences => buf.push(3),
            Request::Stats => buf.push(4),
            Request::Snapshot { dir } => {
                buf.push(5);
                put_str(&mut buf, dir);
            }
            Request::Shutdown => buf.push(6),
        }
        buf
    }

    /// Decodes a frame payload into a request. Every defect is a typed
    /// error naming the offending field.
    pub fn decode(bytes: &[u8]) -> Result<Request> {
        let mut pos = 0usize;
        match get_u8(bytes, &mut pos, "request tag")? {
            1 => {
                let class = get_u8(bytes, &mut pos, "model class")?;
                let id = BlockId(get_u64(bytes, &mut pos, "block id")?);
                let interval = match get_u8(bytes, &mut pos, "interval flag")? {
                    0 => None,
                    1 => {
                        let start = Timestamp(get_u64(bytes, &mut pos, "interval start")?);
                        let end = Timestamp(get_u64(bytes, &mut pos, "interval end")?);
                        Some(BlockInterval { start, end })
                    }
                    other => {
                        return Err(DemonError::Serde(format!(
                            "interval flag must be 0 or 1, got {other}"
                        )))
                    }
                };
                let meta = get_u32(bytes, &mut pos, "class meta")?;
                let len = get_u32(bytes, &mut pos, "record payload length")? as usize;
                let end = pos.checked_add(len).filter(|&e| e <= bytes.len()).ok_or_else(
                    || DemonError::Serde(format!("record payload length {len} exceeds payload")),
                )?;
                let payload = bytes[pos..end].to_vec();
                Ok(Request::IngestBlock {
                    class,
                    id,
                    interval,
                    meta,
                    payload,
                })
            }
            2 => {
                let class = if pos < bytes.len() {
                    Some(get_u8(bytes, &mut pos, "model class")?)
                } else {
                    None
                };
                Ok(Request::QueryModel { class })
            }
            3 => Ok(Request::QuerySequences),
            4 => Ok(Request::Stats),
            5 => Ok(Request::Snapshot {
                dir: get_str(bytes, &mut pos, "snapshot dir")?,
            }),
            6 => Ok(Request::Shutdown),
            other => Err(DemonError::Serde(format!("unknown request tag {other}"))),
        }
    }
}

impl Response {
    /// Serializes the response into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Ok => buf.push(0),
            Response::Model(json) => {
                buf.push(1);
                buf.extend_from_slice(json.as_bytes());
            }
            Response::Sequences(seqs) => {
                buf.push(2);
                buf.extend_from_slice(&(seqs.len() as u32).to_le_bytes());
                for seq in seqs {
                    buf.extend_from_slice(&(seq.len() as u32).to_le_bytes());
                    for id in seq {
                        buf.extend_from_slice(&id.value().to_le_bytes());
                    }
                }
            }
            Response::Stats(json) => {
                buf.push(3);
                buf.extend_from_slice(json.as_bytes());
            }
            Response::SnapshotDone(blocks) => {
                buf.push(4);
                buf.extend_from_slice(&blocks.to_le_bytes());
            }
            Response::Err(e) => {
                buf.push(5);
                match e {
                    WireError::Other(msg) => {
                        buf.push(0);
                        buf.extend_from_slice(msg.as_bytes());
                    }
                    WireError::Duplicate { id, latest } => {
                        buf.push(1);
                        buf.extend_from_slice(&id.to_le_bytes());
                        buf.extend_from_slice(&latest.to_le_bytes());
                    }
                    WireError::Busy(msg) => {
                        buf.push(2);
                        buf.extend_from_slice(msg.as_bytes());
                    }
                    WireError::Io(msg) => {
                        buf.push(3);
                        buf.extend_from_slice(msg.as_bytes());
                    }
                    WireError::ClassMismatch { expected, got } => {
                        buf.push(4);
                        buf.push(*expected);
                        buf.push(*got);
                    }
                }
            }
        }
        buf
    }

    /// Decodes a frame payload into a response.
    pub fn decode(bytes: &[u8]) -> Result<Response> {
        let text = |bytes: &[u8]| -> Result<String> {
            String::from_utf8(bytes.to_vec())
                .map_err(|e| DemonError::Serde(format!("response body: invalid UTF-8: {e}")))
        };
        let mut pos = 0usize;
        match get_u8(bytes, &mut pos, "response tag")? {
            0 => Ok(Response::Ok),
            1 => Ok(Response::Model(text(&bytes[1..])?)),
            2 => {
                let n = get_u32(bytes, &mut pos, "sequence count")? as usize;
                let mut seqs = Vec::new();
                for _ in 0..n {
                    let len = get_u32(bytes, &mut pos, "sequence length")? as usize;
                    let mut seq = Vec::new();
                    for _ in 0..len {
                        seq.push(BlockId(get_u64(bytes, &mut pos, "sequence block id")?));
                    }
                    seqs.push(seq);
                }
                Ok(Response::Sequences(seqs))
            }
            3 => Ok(Response::Stats(text(&bytes[1..])?)),
            4 => Ok(Response::SnapshotDone(get_u64(bytes, &mut pos, "block count")?)),
            5 => {
                let err = match get_u8(bytes, &mut pos, "error code")? {
                    0 => WireError::Other(text(&bytes[pos..])?),
                    1 => WireError::Duplicate {
                        id: get_u64(bytes, &mut pos, "duplicate id")?,
                        latest: get_u64(bytes, &mut pos, "duplicate latest")?,
                    },
                    2 => WireError::Busy(text(&bytes[pos..])?),
                    3 => WireError::Io(text(&bytes[pos..])?),
                    4 => WireError::ClassMismatch {
                        expected: get_u8(bytes, &mut pos, "expected class")?,
                        got: get_u8(bytes, &mut pos, "got class")?,
                    },
                    other => {
                        return Err(DemonError::Serde(format!("unknown error code {other}")))
                    }
                };
                Ok(Response::Err(err))
            }
            other => Err(DemonError::Serde(format!("unknown response tag {other}"))),
        }
    }
}

/// Writes one framed message; returns the total bytes written (header
/// included), for the `serve.bytes_*` counters.
pub fn write_message(w: &mut impl Write, class: FrameClass, payload: &[u8]) -> Result<usize> {
    let (bytes, _) = durable::encode_frame(class, payload);
    w.write_all(&bytes)?;
    w.flush()?;
    Ok(bytes.len())
}

/// Reads one framed message of the given class. Returns the validated
/// payload plus the total bytes read, or `None` on a clean EOF at a
/// frame boundary (the peer hung up between messages). `source` names
/// the peer in error messages.
pub fn read_message(
    r: &mut impl Read,
    class: FrameClass,
    source: &str,
) -> Result<Option<(Vec<u8>, usize)>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish "no next message" (clean close) from a mid-header cut.
    let mut filled = 0usize;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(DemonError::Corrupt {
                    file: source.to_string(),
                    detail: format!(
                        "connection closed mid-header ({filled} of {FRAME_HEADER_LEN} bytes)"
                    ),
                })
            }
            n => filled += n,
        }
    }
    let parsed = durable::decode_frame_header(class, &header, source)?;
    if parsed.payload_len > MAX_PAYLOAD {
        return Err(DemonError::Corrupt {
            file: source.to_string(),
            detail: format!(
                "frame promises {} payload bytes (limit {MAX_PAYLOAD})",
                parsed.payload_len
            ),
        });
    }
    let mut payload = vec![0u8; parsed.payload_len as usize];
    r.read_exact(&mut payload).map_err(|e| DemonError::Corrupt {
        file: source.to_string(),
        detail: format!("connection closed mid-payload: {e}"),
    })?;
    durable::verify_frame_payload(&parsed, &payload, source)?;
    let total = FRAME_HEADER_LEN + payload.len();
    Ok(Some((payload, total)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_requests_roundtrip() {
        let cases = [
            (None, vec![7u8; 40]),
            (
                Some(BlockInterval {
                    start: Timestamp(100),
                    end: Timestamp(200),
                }),
                vec![1u8, 2, 3],
            ),
        ];
        for (interval, payload) in cases {
            let req = Request::IngestBlock {
                class: ModelClass::Itemsets.tag(),
                id: BlockId(2),
                interval,
                meta: 16,
                payload: payload.clone(),
            };
            match Request::decode(&req.encode()).unwrap() {
                Request::IngestBlock {
                    class,
                    id,
                    interval: back_iv,
                    meta,
                    payload: back,
                } => {
                    assert_eq!(class, ModelClass::Itemsets.tag());
                    assert_eq!(id, BlockId(2));
                    assert_eq!(back_iv, interval);
                    assert_eq!(meta, 16);
                    assert_eq!(back, payload);
                }
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn query_model_class_pin_roundtrips_and_legacy_is_any() {
        for class in [None, Some(ModelClass::Clusters.tag())] {
            let req = Request::QueryModel { class };
            assert!(matches!(
                Request::decode(&req.encode()).unwrap(),
                Request::QueryModel { class: back } if back == class
            ));
        }
        // The legacy encoding (bare tag byte) decodes as "any class".
        assert!(matches!(
            Request::decode(&[2]).unwrap(),
            Request::QueryModel { class: None }
        ));
    }

    #[test]
    fn bodyless_requests_roundtrip() {
        assert!(matches!(
            Request::decode(&Request::QuerySequences.encode()).unwrap(),
            Request::QuerySequences
        ));
        assert!(matches!(
            Request::decode(&Request::Stats.encode()).unwrap(),
            Request::Stats
        ));
        assert!(matches!(
            Request::decode(&Request::Shutdown.encode()).unwrap(),
            Request::Shutdown
        ));
        let snap = Request::Snapshot {
            dir: "/tmp/snap".into(),
        };
        assert!(matches!(
            Request::decode(&snap.encode()).unwrap(),
            Request::Snapshot { dir } if dir == "/tmp/snap"
        ));
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            Response::Ok,
            Response::Model("{\"x\":1}".into()),
            Response::Sequences(vec![vec![BlockId(1), BlockId(3)], vec![]]),
            Response::Stats("{\"blocks\":4}".into()),
            Response::SnapshotDone(9),
            Response::Err(WireError::Other("boom".into())),
            Response::Err(WireError::Duplicate { id: 2, latest: 7 }),
            Response::Err(WireError::Busy("queue full".into())),
            Response::Err(WireError::Io("disk full".into())),
            Response::Err(WireError::ClassMismatch { expected: 1, got: 2 }),
        ];
        for resp in cases {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn wire_errors_convert_to_and_from_demon_errors() {
        let dup = DemonError::DuplicateBlock { id: 2, latest: 4 };
        let wire = WireError::from_error(&dup);
        assert_eq!(wire, WireError::Duplicate { id: 2, latest: 4 });
        // The round trip restores the engine's typed duplicate error,
        // message text included.
        let back = wire.into_error();
        assert!(matches!(back, DemonError::DuplicateBlock { id: 2, latest: 4 }));
        assert!(back.to_string().contains("duplicate block"));
        assert!(back.to_string().contains("D2"));

        let io = DemonError::Io(std::io::Error::other("disk on fire"));
        assert!(matches!(WireError::from_error(&io), WireError::Io(m) if m.contains("disk")));
        let other = WireError::from_error(&DemonError::UnknownBlock(3));
        assert!(matches!(other, WireError::Other(_)));
        assert!(matches!(
            WireError::Busy("full".into()).into_error(),
            DemonError::Remote(m) if m == "full"
        ));

        let mismatch = WireError::class_mismatch(ModelClass::Itemsets, ModelClass::Trees.tag());
        assert_eq!(
            mismatch,
            WireError::ClassMismatch { expected: 1, got: 3 }
        );
        assert!(mismatch.to_string().contains("itemsets"));
        assert!(mismatch.to_string().contains("trees"));
        let back = mismatch.into_error();
        assert!(matches!(
            &back,
            DemonError::ModelClassMismatch { expected, got }
                if expected == "itemsets" && got == "trees"
        ));
        assert!(back.to_string().contains("model class mismatch"));
    }

    #[test]
    fn messages_roundtrip_through_a_stream() {
        let payload = Request::Stats.encode();
        let mut wire = Vec::new();
        let written = write_message(&mut wire, FrameClass::REQUEST, &payload).unwrap();
        assert_eq!(written, wire.len());
        let mut cursor = &wire[..];
        let (back, read) = read_message(&mut cursor, FrameClass::REQUEST, "test")
            .unwrap()
            .unwrap();
        assert_eq!(back, payload);
        assert_eq!(read, written);
        // The stream is drained: the next read is a clean EOF.
        assert!(read_message(&mut cursor, FrameClass::REQUEST, "test")
            .unwrap()
            .is_none());
    }

    #[test]
    fn wrong_class_truncation_and_flips_are_rejected() {
        let payload = Request::QueryModel { class: None }.encode();
        let mut wire = Vec::new();
        write_message(&mut wire, FrameClass::REQUEST, &payload).unwrap();
        // A response frame is not a request.
        assert!(read_message(&mut &wire[..], FrameClass::RESPONSE, "t").is_err());
        // Any truncation inside the message is detected.
        for cut in 1..wire.len() {
            assert!(
                read_message(&mut &wire[..cut], FrameClass::REQUEST, "t").is_err(),
                "cut at {cut} must not parse"
            );
        }
        // A flipped payload bit fails the CRC.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x10;
        assert!(read_message(&mut &bad[..], FrameClass::REQUEST, "t").is_err());
    }

    #[test]
    fn oversized_frames_are_rejected_before_allocation() {
        let (mut wire, _) = durable::encode_frame(FrameClass::REQUEST, b"x");
        // Forge a pathological length; the reader must refuse before
        // trying to allocate it.
        wire[8..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let err = read_message(&mut &wire[..], FrameClass::REQUEST, "t").unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[99]).is_err());
        assert!(Request::decode(&[1, 1]).is_err()); // truncated ingest
        assert!(Response::decode(&[99]).is_err());
        // Snapshot dir length pointing past the payload.
        let mut bad = vec![5u8];
        bad.extend_from_slice(&1000u32.to_le_bytes());
        bad.extend_from_slice(b"abc");
        assert!(Request::decode(&bad).is_err());
    }
}
