//! The partitioned serving runtime (`--shards ≥ 2`): per-shard stores
//! behind one sequencer, epoch-swapped read replicas, per-shard WAL
//! lanes under a shared generation pointer.
//!
//! ## Shape
//!
//! ```text
//!  client sockets ──▶ event-loop threads (readiness-style, non-blocking)
//!        │ queries answered inline          │ IngestBlock / Snapshot
//!        ▼                                  ▼
//!  Arc<Replica> (epoch-swapped)      bounded sequencer queue
//!        ▲                                  │
//!        └──── sequencer thread ◀───────────┘   (single writer)
//!              │ owns every shard store
//!              │ append+fsync to shard-<s>/wal-<gen>.log, then apply
//!              ▼
//!        compactor ◀── merged snapshot-<gen> + root CURRENT
//! ```
//!
//! * **Partition function**: block `b` belongs to shard
//!   `(b − 1) mod N` — round-robin by block id, so every prefix of the
//!   stream is balanced to within one block.
//! * **Exact scatter/gather**: the runtime is generic over
//!   [`ShardableModel`] — the *capability* subtrait of
//!   [`crate::model::ServableModel`] whose `absorb_sharded` proves the
//!   model built from disjoint per-shard stores byte-identical to the
//!   1-shard model. Itemsets qualify (supports are additive over
//!   disjoint block sets; [`demon_itemsets::count_supports_sharded`]
//!   reuses the `demon_types::parallel` per-shard-merge discipline);
//!   clusters and trees do not, and are refused at bind with the typed
//!   `ShardsUnsupported` error.
//! * **Replica epochs**: after each applied block the sequencer builds
//!   an immutable [`Replica`] — model cloned out, sequences
//!   pre-gathered — and flips the shared pointer
//!   (`serve.shard.replica_swaps`). Queries never touch mining state
//!   and never take the sequencer's locks. The model *JSON* is rendered
//!   lazily, once, by the first `QueryModel` that needs it
//!   (`serve.replica_lazy_renders`) — a write-heavy burst swaps dozens
//!   of replicas nobody queries, and pays serialization for none of
//!   them. Read-your-writes is unchanged: the replica (model included)
//!   is published *before* the ingest ack, only the stringification is
//!   deferred.
//! * **WAL lanes**: shard `s` appends to `wal_dir/shard-<s>/wal-<g>.log`.
//!   The root `CURRENT` pointer and the merged `snapshot-<g>` are shared
//!   across lanes; rotation moves every lane to `g+1` at once. The
//!   sequencer appends lanes in block-id order, so after a crash at most
//!   the highest appended id can be torn — recovery merges lane records
//!   by block id and replays the contiguous prefix, preserving the
//!   `acked ≤ applied ≤ acked+1` contract of the 1-shard WAL. Every
//!   lane record carries the model-class tag; a lane written by a
//!   different class refuses to replay.

use crate::model::{MaintainedModel, ServableModel, ShardableModel};
use crate::protocol::{Request, Response, WireError};
use crate::server::{crash_point, ServeConfig, ServeSummary};
use demon_core::maintainer::ModelMaintainer;
use demon_focus::compact::CompactSequenceMiner;
use demon_focus::windowed::WindowedCompactMiner;
use demon_types::obs::{self, Counter};
use demon_types::wal::{self, WalWriter};
use demon_types::{Block, BlockId, DemonError, ModelClass, Result};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::Thread;
use std::time::Duration;

/// The lane directory of shard `s` under the WAL root.
pub fn shard_lane_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard}"))
}

/// The shard that owns block `id`: round-robin by block id, so every
/// stream prefix is balanced to within one block.
pub fn shard_of(id: BlockId, n_shards: usize) -> usize {
    ((id.value() - 1) % n_shards as u64) as usize
}

/// Mirror of the engine's systematic-evolution check: block `id` must be
/// exactly the successor of `latest`. Same typed errors, same messages.
fn check_sequential(id: BlockId, latest: Option<BlockId>) -> Result<()> {
    let expected = latest.map_or(BlockId::FIRST, BlockId::next);
    if id == expected {
        return Ok(());
    }
    match latest {
        Some(latest) if id <= latest => Err(DemonError::DuplicateBlock {
            id: id.value(),
            latest: latest.value(),
        }),
        _ => Err(DemonError::InvalidParameter(format!(
            "expected block {expected}, got {id}"
        ))),
    }
}

enum Patterns<S: ServableModel> {
    Unrestricted(CompactSequenceMiner<S::Oracle, S::Record>),
    MostRecent(WindowedCompactMiner<S::Oracle, S::Record>),
}

/// The sequencer-owned mining state: one maintainer per shard (store +
/// registration work, exactly the 1-shard register path applied to the
/// owning shard), one global model absorbed with the class's exact
/// scatter/gather, one global pattern miner.
pub struct ShardSet<S: ShardableModel> {
    shards: Vec<S::Maintainer>,
    model: MaintainedModel<S>,
    miner: Patterns<S>,
    latest: Option<BlockId>,
    shard_blocks: Vec<u64>,
    config: ServeConfig,
}

impl<S: ShardableModel> ShardSet<S> {
    /// Builds the empty sharded state from a validated config
    /// (`shards ≥ 2`, unrestricted window).
    pub fn new(config: &ServeConfig) -> Result<ShardSet<S>> {
        let n = config.shards;
        let mut shards = Vec::with_capacity(n);
        for _ in 0..n {
            shards.push(S::maintainer(config)?);
        }
        let model = shards[0].fresh();
        let oracle = S::oracle(config);
        let miner = match config.pattern_window {
            None => Patterns::Unrestricted(CompactSequenceMiner::new(oracle)),
            Some(w) => Patterns::MostRecent(WindowedCompactMiner::new(oracle, w)),
        };
        Ok(ShardSet {
            shards,
            model,
            miner,
            latest: None,
            shard_blocks: vec![0; n],
            config: config.clone(),
        })
    }

    /// Applies the next arriving block: validate the id, register into
    /// the owning shard (store + pair materialization), absorb into the
    /// global model with per-shard counting, feed the pattern miner.
    /// A replayed or out-of-order id is rejected before any state moves.
    pub fn add_block(&mut self, block: Block<S::Record>) -> Result<()> {
        let id = block.id();
        check_sequential(id, self.latest)?;
        let s = shard_of(id, self.shards.len());
        self.shards[s].register_block(block.clone());
        S::absorb_sharded(&mut self.model, &self.shards, id, &self.config)?;
        match &mut self.miner {
            Patterns::Unrestricted(m) => {
                m.add_block(block);
            }
            Patterns::MostRecent(m) => {
                m.add_block(block);
            }
        }
        self.latest = Some(id);
        self.shard_blocks[s] += 1;
        Ok(())
    }

    /// Blocks applied so far.
    pub fn blocks(&self) -> u64 {
        self.shard_blocks.iter().sum()
    }

    /// Gathers every shard's blocks into one fresh single-store
    /// maintainer, registered in block-id order — the class's
    /// [`ShardableModel::merged_maintainer`], the one merge helper
    /// behind both the `Snapshot` verb and WAL compaction.
    pub fn merged_maintainer(&self) -> Result<S::Maintainer> {
        S::merged_maintainer(&self.config, &self.shards, self.latest)
    }

    /// Builds the immutable replica of the current state: model cloned
    /// out (JSON renders lazily on first query), sequences pre-gathered,
    /// per-shard block counts for `Stats`.
    pub fn replica(&self, epoch: u64) -> Replica<S> {
        let sequences = match &self.miner {
            Patterns::Unrestricted(m) => m.maximal_sequences(),
            Patterns::MostRecent(m) => m.sequences(),
        };
        Replica {
            epoch,
            blocks: self.blocks(),
            model: self.model.clone(),
            render_ctx: S::render_ctx(&self.shards[0]),
            model_json: OnceLock::new(),
            sequences,
            shard_blocks: self.shard_blocks.clone(),
        }
    }
}

/// One immutable snapshot of the queryable state. Built by the
/// sequencer after every applied block; readers hold an `Arc` and never
/// block ingest.
pub struct Replica<S: ServableModel> {
    /// Monotone swap counter (one per applied block + the recovery
    /// publish).
    pub epoch: u64,
    /// Blocks applied when this replica was built.
    pub blocks: u64,
    /// The model at this epoch.
    model: MaintainedModel<S>,
    render_ctx: S::RenderCtx,
    /// The model's canonical JSON, rendered at most once, by the first
    /// query that needs it.
    model_json: OnceLock<String>,
    /// The compact block sequences — the exact `QuerySequences` body.
    pub sequences: Vec<Vec<BlockId>>,
    /// Blocks owned per shard, for `Stats` and the imbalance gauge.
    pub shard_blocks: Vec<u64>,
}

impl<S: ServableModel> Replica<S> {
    /// The model as canonical JSON — the exact `QueryModel` body, byte-
    /// identical to the eager 1-shard daemon's. Rendered on first call
    /// (`serve.replica_lazy_renders`) and memoized for the replica's
    /// lifetime; replicas swapped out by a write burst before anyone
    /// queries them never pay serialization at all.
    pub fn model_json(&self) -> std::result::Result<&str, String> {
        if let Some(json) = self.model_json.get() {
            return Ok(json);
        }
        let rendered = S::render_model_json(&self.render_ctx, &self.model).map_err(|e| match e {
            DemonError::Serde(msg) => msg,
            other => other.to_string(),
        })?;
        // Two queries can race the first render; exactly one `set` wins
        // and only the winner counts as the lazy render.
        if self.model_json.set(rendered).is_ok() {
            obs::incr(Counter::ServeReplicaLazyRenders);
        }
        Ok(self.model_json.get().expect("just initialized"))
    }
}

/// The epoch-swapped replica pointer: an arc-swap-style flip built from
/// std parts. `load` clones the `Arc` under a momentary lock (no reader
/// ever waits on ingest work — the critical section is two refcount
/// bumps); `store` flips the pointer and bumps
/// `serve.shard.replica_swaps`.
pub struct ReplicaCell<S: ServableModel> {
    current: Mutex<Arc<Replica<S>>>,
}

impl<S: ServableModel> ReplicaCell<S> {
    /// Wraps the initial replica.
    pub fn new(replica: Replica<S>) -> ReplicaCell<S> {
        ReplicaCell {
            current: Mutex::new(Arc::new(replica)),
        }
    }

    /// The current replica.
    pub fn load(&self) -> Arc<Replica<S>> {
        Arc::clone(&self.current.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Publishes a new replica (the epoch flip).
    pub fn store(&self, replica: Replica<S>) {
        let mut cur = self.current.lock().unwrap_or_else(|e| e.into_inner());
        *cur = Arc::new(replica);
        obs::incr(Counter::ServeReplicaSwaps);
    }
}

/// A parked response slot: the sequencer fills it and unparks the
/// event-loop thread that owns the connection.
pub struct Pending {
    slot: Mutex<Option<Response>>,
    waker: Thread,
}

impl Pending {
    /// A slot owned by (and waking) the given thread.
    pub fn new(waker: Thread) -> Pending {
        Pending {
            slot: Mutex::new(None),
            waker,
        }
    }

    /// Fills the slot and wakes the owning event loop.
    pub fn fill(&self, response: Response) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(response);
        self.waker.unpark();
    }

    /// Takes the response if it has arrived (non-blocking).
    pub fn take(&self) -> Option<Response> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).take()
    }
}

/// A unit of sequencer work.
pub enum ShardJob<S: ServableModel> {
    /// Apply one block (WAL append first when durable).
    Ingest {
        /// The block to apply.
        block: Block<S::Record>,
        /// Where the result goes.
        done: Arc<Pending>,
    },
    /// Persist the merged store atomically to a server-side directory.
    Snapshot {
        /// Target directory.
        dir: String,
        /// Where the result goes.
        done: Arc<Pending>,
    },
}

struct ShardQueueState<S: ServableModel> {
    jobs: VecDeque<ShardJob<S>>,
    open: bool,
}

/// The bounded sequencer queue. Unlike the 1-shard ingest queue,
/// submission is non-blocking (`try_submit`) — an event-loop thread must
/// never park on backpressure; it re-tries each tick until the
/// connection's own deadline expires.
pub struct ShardQueue<S: ServableModel> {
    capacity: usize,
    state: Mutex<ShardQueueState<S>>,
    not_empty: Condvar,
}

/// Why a non-blocking submit did not enqueue.
pub enum SubmitError<S: ServableModel> {
    /// The queue is at capacity; retry until the deadline.
    Full(ShardJob<S>),
    /// The queue is closed (shutdown); fail the request as busy.
    Closed,
}

impl<S: ServableModel> ShardQueue<S> {
    /// A queue holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> ShardQueue<S> {
        ShardQueue {
            capacity: capacity.max(1),
            state: Mutex::new(ShardQueueState {
                jobs: VecDeque::new(),
                open: true,
            }),
            not_empty: Condvar::new(),
        }
    }

    /// The queue's capacity (for the `Busy` rejection text).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues without blocking; hands the job back when full. On
    /// success, returns the job's completion slot for polling.
    pub fn try_submit(&self, job: ShardJob<S>) -> std::result::Result<Arc<Pending>, SubmitError<S>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if !state.open {
            return Err(SubmitError::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full(job));
        }
        let done = match &job {
            ShardJob::Ingest { done, .. } | ShardJob::Snapshot { done, .. } => Arc::clone(done),
        };
        state.jobs.push_back(job);
        obs::record_max(Counter::ServeQueueDepth, state.jobs.len() as u64);
        self.not_empty.notify_one();
        Ok(done)
    }

    /// The sequencer's blocking pop; `None` after close once drained.
    pub fn next_job(&self) -> Option<ShardJob<S>> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if !state.open {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue; queued jobs still drain.
    pub fn close(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.open = false;
        self.not_empty.notify_all();
    }

    /// Jobs currently queued.
    pub fn depth(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).jobs.len()
    }
}

/// State shared between the event-loop threads, the sequencer, and the
/// compactor.
pub struct ShardShared<S: ServableModel> {
    /// The epoch-swapped read replica.
    pub replica: ReplicaCell<S>,
    /// The sequencer queue.
    pub queue: ShardQueue<S>,
    /// Ingest jobs queued (submitted, not yet answered) per shard — the
    /// `Stats` `shard_queue_depths` gauge.
    pub shard_pending: Vec<AtomicU64>,
    /// Graceful-shutdown flag.
    pub shutdown: AtomicBool,
    /// Requests served across all connections and verbs.
    pub requests: AtomicU64,
    /// Blocks applied (recovered blocks included).
    pub blocks: AtomicU64,
    /// The bound address.
    pub addr: SocketAddr,
    /// The class's per-block wire meta (item-universe size for
    /// itemsets), validated against each `IngestBlock`.
    pub meta: u32,
    /// Shard count.
    pub n_shards: usize,
    /// Per-connection idle timeout.
    pub io_timeout: Duration,
    /// Backpressure deadline for a full queue.
    pub queue_timeout: Duration,
}

/// The sequencer's durable state: one WAL lane per shard, all rotated
/// together, behind the shared root `CURRENT` pointer.
pub struct ShardWal<S: ServableModel> {
    root: PathBuf,
    writers: Vec<WalWriter>,
    gen: u64,
    max_bytes: u64,
    last_id: Option<u64>,
    compact_tx: mpsc::Sender<(u64, S::Maintainer)>,
    compacting: Arc<AtomicBool>,
}

/// What sharded recovery rebuilt.
pub struct RecoveredShards<S: ShardableModel> {
    /// The sharded state with every durable block re-applied.
    pub state: ShardSet<S>,
    /// The reopened live lane writers (one per shard).
    pub writers: Vec<WalWriter>,
    /// The live generation (max across lanes and `CURRENT`).
    pub gen: u64,
}

/// The typed refusal when a lane record (header tag or request body)
/// carries a different model class than the recovering daemon.
fn cross_class_replay<S: ServableModel>(got: u8) -> DemonError {
    DemonError::ModelClassMismatch {
        expected: S::CLASS.name().to_string(),
        got: ModelClass::describe_tag(got),
    }
}

/// Recovers the sharded state from a WAL root: load the merged
/// `snapshot-<CURRENT>` (Strict), then merge every lane's record chain
/// by block id and replay the contiguous prefix. The sequencer appends
/// lanes in block-id order (one fsync per block, strictly sequential),
/// so only the highest appended id can be torn — the first gap ends
/// replay, preserving `acked ≤ applied ≤ acked+1` per shard and
/// globally. A lane tagged with a different model class refuses to
/// replay (typed [`DemonError::ModelClassMismatch`]) — it belongs to
/// another daemon.
pub fn recover_sharded<S: ShardableModel>(
    root: &Path,
    config: &ServeConfig,
) -> Result<RecoveredShards<S>> {
    std::fs::create_dir_all(root)?;
    for s in 0..config.shards {
        std::fs::create_dir_all(shard_lane_dir(root, s))?;
    }
    let current = wal::read_current(root)?;
    let mut state = ShardSet::<S>::new(config)?;

    if current > 0 {
        let snap = wal::snapshot_dir_path(root, current);
        for block in S::load_snapshot(&snap, config)? {
            state.add_block(block)?;
        }
    }

    // Shadowed residue: snapshots other than CURRENT at the root, lane
    // generations below CURRENT. Deleting converges after a crash
    // mid-cleanup, exactly like the 1-shard recovery.
    for entry in std::fs::read_dir(root)?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("snapshot-") && wal::parse_snapshot_dir_name(name) != Some(current) {
            let _ = std::fs::remove_dir_all(entry.path());
        }
    }

    let mut pending: Vec<(BlockId, Block<S::Record>)> = Vec::new();
    let mut writers = Vec::with_capacity(config.shards);
    let mut max_gen = current;
    for s in 0..config.shards {
        let lane = shard_lane_dir(root, s);
        let mut live_gen = current;
        let mut live_valid_len = 0u64;
        let mut live_exists = false;
        let mut next_seq = 0u64;
        for g in wal::list_wal_generations(&lane)? {
            if g < current {
                let _ = std::fs::remove_file(wal::wal_file_path(&lane, g));
                continue;
            }
            let report = wal::read_wal(&wal::wal_file_path(&lane, g))?;
            for record in &report.records {
                if record.class != S::CLASS.tag() {
                    return Err(cross_class_replay::<S>(record.class));
                }
                let Ok(Request::IngestBlock {
                    class,
                    id,
                    interval,
                    meta,
                    payload,
                }) = Request::decode(&record.body)
                else {
                    continue;
                };
                if class != S::CLASS.tag() {
                    return Err(cross_class_replay::<S>(class));
                }
                let Ok(records) = S::decode_records(&payload, id, meta) else {
                    continue;
                };
                let block = match interval {
                    Some(iv) => Block::with_interval(id, iv, records),
                    None => Block::new(id, records),
                };
                pending.push((id, block));
            }
            if let Some(seq) = report.next_seq() {
                next_seq = seq;
            }
            live_gen = g;
            live_valid_len = report.valid_len;
            live_exists = true;
        }
        let live_path = wal::wal_file_path(&lane, live_gen);
        writers.push(if live_exists {
            WalWriter::open_after_recovery(&live_path, live_valid_len, next_seq, S::CLASS.tag())?
        } else {
            WalWriter::create(&live_path, next_seq, S::CLASS.tag())?
        });
        max_gen = max_gen.max(live_gen);
    }

    pending.sort_by_key(|(id, _)| *id);
    for (id, block) in pending {
        let expected = state.latest.map_or(BlockId::FIRST, BlockId::next);
        if id < expected {
            continue; // covered by the snapshot or an earlier lane record
        }
        if id > expected {
            break; // gap: everything past it was never appended, let alone acked
        }
        match state.add_block(block) {
            Ok(()) => obs::incr(Counter::WalReplays),
            Err(_) => break, // appended but never acked: no promise broken
        }
    }

    Ok(RecoveredShards {
        state,
        writers,
        gen: max_gen,
    })
}

/// The sequencer: drains the queue, appends to the owning shard's WAL
/// lane (fsync) before applying, publishes a fresh replica after every
/// applied block, then answers the parked connection — so an ack means
/// durable, applied, *and* visible to every subsequent query.
pub fn sequencer_loop<S: ShardableModel>(
    shared: &Arc<ShardShared<S>>,
    mut state: ShardSet<S>,
    mut wal: Option<ShardWal<S>>,
) {
    let mut epoch = shared.replica.load().epoch;
    let mut poisoned = false;
    while let Some(job) = shared.queue.next_job() {
        match job {
            ShardJob::Ingest { block, done } => {
                let id = block.id();
                let s = shard_of(id, shared.n_shards);
                crash_point("before_append");

                let mut wal_failure: Option<WireError> = None;
                if let Some(w) = wal.as_mut() {
                    let duplicate = w.last_id.is_some_and(|last| id.value() <= last);
                    if !duplicate {
                        match S::encode_records(&block) {
                            Ok(payload) => {
                                let body = Request::IngestBlock {
                                    class: S::CLASS.tag(),
                                    id,
                                    interval: block.interval(),
                                    meta: shared.meta,
                                    payload,
                                }
                                .encode();
                                if let Err(e) = w.writers[s].append(&body) {
                                    wal_failure =
                                        Some(WireError::Io(format!("wal append: {e}")));
                                }
                            }
                            Err(e) => {
                                wal_failure =
                                    Some(WireError::Other(format!("wal encode: {e}")));
                            }
                        }
                    }
                }
                crash_point("after_append");

                let result = if poisoned {
                    Err(WireError::Other(
                        "monitor poisoned by an earlier ingest fault".to_string(),
                    ))
                } else if let Some(e) = wal_failure {
                    Err(e)
                } else {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        state.add_block(block).map_err(|e| WireError::from_error(&e))
                    }))
                    .unwrap_or_else(|_| {
                        poisoned = true;
                        Err(WireError::Other(
                            "ingest panicked; monitor poisoned".to_string(),
                        ))
                    })
                };

                let response = match result {
                    Ok(()) => {
                        shared.blocks.fetch_add(1, Ordering::SeqCst);
                        obs::incr(Counter::ServeShardIngests);
                        epoch += 1;
                        publish(shared, &state, epoch);
                        if let Some(w) = wal.as_mut() {
                            w.last_id = Some(id.value());
                            maybe_rotate(w, &state);
                        }
                        Response::Ok
                    }
                    Err(e) => Response::Err(e),
                };
                shared.shard_pending[s].fetch_sub(1, Ordering::SeqCst);
                done.fill(response);
                crash_point("after_ack");
            }
            ShardJob::Snapshot { dir, done } => {
                let response = match state
                    .merged_maintainer()
                    .and_then(|m| S::save_snapshot(&m, Path::new(&dir)))
                {
                    Ok(blocks) => Response::SnapshotDone(blocks),
                    Err(DemonError::Io(e)) => {
                        Response::Err(WireError::Io(format!("snapshot to {dir}: {e}")))
                    }
                    Err(e) => Response::Err(WireError::Other(format!("snapshot to {dir}: {e}"))),
                };
                done.fill(response);
            }
        }
    }
}

/// Builds and flips the replica; updates the imbalance gauge.
fn publish<S: ShardableModel>(shared: &Arc<ShardShared<S>>, state: &ShardSet<S>, epoch: u64) {
    let replica = state.replica(epoch);
    let max = replica.shard_blocks.iter().copied().max().unwrap_or(0);
    let min = replica.shard_blocks.iter().copied().min().unwrap_or(0);
    obs::record_max(Counter::ServeShardImbalance, max - min);
    shared.replica.store(replica);
}

/// Rotates every lane to `gen+1` once the lanes' combined live bytes
/// cross the threshold, then hands the merged store to the compactor.
/// Skipped while a compaction is in flight.
fn maybe_rotate<S: ShardableModel>(w: &mut ShardWal<S>, state: &ShardSet<S>) {
    let total: u64 = w.writers.iter().map(WalWriter::bytes).sum();
    if total < w.max_bytes {
        return;
    }
    if w.compacting.swap(true, Ordering::SeqCst) {
        return;
    }
    let next_gen = w.gen + 1;
    let mut rotated = Vec::with_capacity(w.writers.len());
    for (s, writer) in w.writers.iter().enumerate() {
        let lane = shard_lane_dir(&w.root, s);
        match WalWriter::create(
            &wal::wal_file_path(&lane, next_gen),
            writer.next_seq(),
            S::CLASS.tag(),
        ) {
            Ok(next) => rotated.push(next),
            Err(_) => {
                // Abort the whole rotation: keep appending to the old
                // lanes and retry at the next threshold crossing. Any
                // already-created empty `wal-<gen+1>.log` is harmless —
                // recovery replays it as an empty generation.
                w.compacting.store(false, Ordering::SeqCst);
                return;
            }
        }
    }
    match state.merged_maintainer() {
        Ok(merged) => {
            w.writers = rotated;
            w.gen = next_gen;
            let _ = w.compact_tx.send((next_gen, merged));
        }
        Err(_) => w.compacting.store(false, Ordering::SeqCst),
    }
}

/// The sharded compactor: save the merged snapshot atomically, flip the
/// root `CURRENT`, delete shadowed lane generations and snapshots.
fn shard_compactor_loop<S: ShardableModel>(
    root: &Path,
    n_shards: usize,
    compacting: &Arc<AtomicBool>,
    rx: &mpsc::Receiver<(u64, S::Maintainer)>,
) {
    while let Ok((gen, merged)) = rx.recv() {
        let result: Result<()> = (|| {
            S::save_snapshot(&merged, &wal::snapshot_dir_path(root, gen))?;
            crash_point("mid_compaction");
            wal::write_current(root, gen)?;
            Ok(())
        })();
        if result.is_ok() {
            for s in 0..n_shards {
                let lane = shard_lane_dir(root, s);
                for g in wal::list_wal_generations(&lane).unwrap_or_default() {
                    if g < gen {
                        let _ = std::fs::remove_file(wal::wal_file_path(&lane, g));
                    }
                }
            }
            if let Ok(entries) = std::fs::read_dir(root) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if name.starts_with("snapshot-")
                        && wal::parse_snapshot_dir_name(name) != Some(gen)
                    {
                        let _ = std::fs::remove_dir_all(entry.path());
                    }
                }
            }
        }
        compacting.store(false, Ordering::SeqCst);
    }
}

/// A bound sharded daemon, ready to run.
pub struct ShardedServer<S: ShardableModel> {
    shared: Arc<ShardShared<S>>,
    listener: TcpListener,
    state: ShardSet<S>,
    wal: Option<ShardWal<S>>,
    compact_rx: Option<mpsc::Receiver<(u64, S::Maintainer)>>,
    workers: usize,
    wal_root: Option<PathBuf>,
}

impl<S: ShardableModel> ShardedServer<S> {
    /// Binds the listener and rebuilds the sharded state (recovering
    /// from the per-shard WAL lanes when durable).
    pub fn bind(config: &ServeConfig) -> Result<ShardedServer<S>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (state, wal, compact_rx, wal_root) = match &config.wal_dir {
            None => (ShardSet::<S>::new(config)?, None, None, None),
            Some(root) => {
                let recovered = recover_sharded::<S>(root, config)?;
                let (tx, rx) = mpsc::channel();
                let wal = ShardWal {
                    root: root.clone(),
                    writers: recovered.writers,
                    gen: recovered.gen,
                    max_bytes: config.wal_max_bytes.max(1),
                    last_id: recovered.state.latest.map(|b| b.value()),
                    compact_tx: tx,
                    compacting: Arc::new(AtomicBool::new(false)),
                };
                (recovered.state, Some(wal), Some(rx), Some(root.clone()))
            }
        };
        let replica = state.replica(0);
        let blocks = replica.blocks;
        let shared = Arc::new(ShardShared {
            replica: ReplicaCell::new(replica),
            queue: ShardQueue::new(config.queue_capacity),
            shard_pending: (0..config.shards).map(|_| AtomicU64::new(0)).collect(),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            blocks: AtomicU64::new(blocks),
            addr,
            meta: S::block_meta(config),
            n_shards: config.shards,
            io_timeout: config.io_timeout,
            queue_timeout: config.queue_timeout,
        });
        Ok(ShardedServer {
            shared,
            listener,
            state,
            wal,
            compact_rx,
            workers: config.workers.max(1),
            wal_root,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Serves until `Shutdown`: spawns the compactor (when durable), the
    /// sequencer, and the event-loop threads, then joins them all.
    pub fn run(self) -> Result<ServeSummary> {
        let ShardedServer {
            shared,
            listener,
            state,
            wal,
            compact_rx,
            workers,
            wal_root,
        } = self;
        listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        if let (Some(rx), Some(root)) = (compact_rx, wal_root) {
            let flag = wal
                .as_ref()
                .map(|w| Arc::clone(&w.compacting))
                .unwrap_or_default();
            let n_shards = shared.n_shards;
            handles.push(
                std::thread::Builder::new()
                    .name("serve-compactor".to_string())
                    .spawn(move || shard_compactor_loop::<S>(&root, n_shards, &flag, &rx))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name("serve-sequencer".to_string())
                    .spawn(move || sequencer_loop(&shared, state, wal))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            let listener = listener.try_clone()?;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("serve-loop-{i}"))
                    .spawn(move || crate::event_loop::event_loop(&shared, &listener))?,
            );
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(ServeSummary {
            requests: shared.requests.load(Ordering::Relaxed),
            blocks: shared.blocks.load(Ordering::SeqCst),
        })
    }
}

/// The sharded `Stats` body: the 1-shard gauges plus `shards`,
/// `shard_blocks`, and `shard_queue_depths`, then the obs counter table.
/// The shard keys deliberately sit *after* `"blocks"` so gauge parsers
/// keyed on the first `"blocks":` match keep working.
pub fn sharded_stats_json<S: ServableModel>(shared: &ShardShared<S>) -> String {
    let replica = shared.replica.load();
    let shard_blocks: Vec<String> = replica
        .shard_blocks
        .iter()
        .map(u64::to_string)
        .collect();
    let depths: Vec<String> = shared
        .shard_pending
        .iter()
        .map(|d| d.load(Ordering::SeqCst).to_string())
        .collect();
    let mut out = format!(
        "{{\"blocks\":{},\"shards\":{},\"shard_blocks\":[{}],\"shard_queue_depths\":[{}],\"requests\":{},\"queue_depth\":{},\"counters\":{{",
        shared.blocks.load(Ordering::SeqCst),
        shared.n_shards,
        shard_blocks.join(","),
        depths.join(","),
        shared.requests.load(Ordering::Relaxed),
        shared.queue.depth(),
    );
    for (i, (name, value)) in obs::snapshot().counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{value}"));
    }
    out.push_str("}}");
    out
}
