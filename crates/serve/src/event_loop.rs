//! The readiness-style connection loop of the sharded daemon: a small
//! fixed set of threads, each polling its own set of non-blocking
//! connections — 256 idle clients cost 256 socket buffers, not 256
//! parked threads.
//!
//! Each loop thread owns the connections it accepted. One pass over a
//! connection makes whatever progress its socket allows: flush the
//! pending response bytes, check the sequencer completion slot, read
//! and parse the next request frame. Queries are answered inline from
//! the current [`Replica`](crate::shard::Replica) — no locks shared
//! with ingest; the model JSON renders once per replica, on the first
//! query that wants it, and is memoized after. `IngestBlock` and
//! `Snapshot` are handed to the sequencer through the bounded queue;
//! the connection parks no thread while it waits — the loop simply
//! skips it until the completion slot fills (the sequencer unparks the
//! loop thread, so the ack lands promptly). When nothing anywhere made
//! progress the thread parks briefly instead of spinning.
//!
//! Backpressure keeps the 1-shard semantics: a full queue is retried
//! until the connection's deadline (`queue_timeout`) expires, then the
//! request is rejected with a typed `Busy` (`serve.rejects`) — the
//! difference is that the *connection* waits, never a thread.

use crate::model::ServableModel;
use crate::protocol::{Request, Response, WireError};
use crate::shard::{
    sharded_stats_json, shard_of, Pending, ShardJob, ShardShared, SubmitError,
};
use demon_types::durable::{self, FrameClass, FRAME_HEADER_LEN};
use demon_types::obs::{self, Counter};
use demon_types::Block;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long an idle loop thread parks between polls. Small enough that
/// a completion missed by a race adds negligible latency; any actual
/// socket readiness or sequencer completion unparks the thread early.
const IDLE_PARK: Duration = Duration::from_micros(250);

/// What a connection is waiting on, if anything.
enum PendingState<S: ServableModel> {
    /// The job could not be enqueued yet (queue full); retried each
    /// tick until the deadline.
    Submit { job: ShardJob<S>, deadline: Instant },
    /// The job is with the sequencer; the slot fills when it is done.
    Waiting(Arc<Pending>),
}

struct Conn<S: ServableModel> {
    stream: TcpStream,
    peer: String,
    in_buf: Vec<u8>,
    out_buf: Vec<u8>,
    out_pos: usize,
    pending: Option<PendingState<S>>,
    last_activity: Instant,
    shutdown_after_write: bool,
    dead: bool,
}

impl<S: ServableModel> Conn<S> {
    fn new(stream: TcpStream) -> Conn<S> {
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "client".to_string());
        let _ = stream.set_nodelay(true);
        let _ = stream.set_nonblocking(true);
        Conn {
            stream,
            peer,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            pending: None,
            last_activity: Instant::now(),
            shutdown_after_write: false,
            dead: false,
        }
    }

    fn has_work_in_flight(&self) -> bool {
        self.pending.is_some() || self.out_pos < self.out_buf.len()
    }

    /// Queues one framed response for writing.
    fn push_response(&mut self, response: &Response) {
        let (bytes, _) = durable::encode_frame(FrameClass::RESPONSE, &response.encode());
        obs::add(Counter::ServeBytesOut, bytes.len() as u64);
        self.out_buf.extend_from_slice(&bytes);
    }

    /// One non-blocking pass: flush, poll the completion, read/parse.
    /// Returns whether any progress happened.
    fn tick(&mut self, shared: &Arc<ShardShared<S>>, now: Instant) -> bool {
        let mut progressed = false;

        // Flush whatever the socket accepts.
        while self.out_pos < self.out_buf.len() {
            match self.stream.write(&self.out_buf[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = now;
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
        if !self.out_buf.is_empty() && self.out_pos >= self.out_buf.len() {
            self.out_buf.clear();
            self.out_pos = 0;
            if self.shutdown_after_write {
                begin_shutdown(shared);
                self.dead = true;
                return true;
            }
        }

        // Move the in-flight job along.
        match self.pending.take() {
            None => {}
            Some(PendingState::Submit { job, deadline }) => {
                let shard = match &job {
                    ShardJob::Ingest { block, .. } => Some(shard_of(block.id(), shared.n_shards)),
                    ShardJob::Snapshot { .. } => None,
                };
                match shared.queue.try_submit(job) {
                    Ok(done) => {
                        if let Some(s) = shard {
                            shared.shard_pending[s].fetch_add(1, Ordering::SeqCst);
                        }
                        progressed = true;
                        self.pending = Some(PendingState::Waiting(done));
                    }
                    Err(SubmitError::Full(job)) => {
                        if now >= deadline {
                            obs::incr(Counter::ServeRejects);
                            drop(job);
                            self.push_response(&Response::Err(WireError::Busy(format!(
                                "ingest queue full ({} blocks) past the backpressure deadline",
                                shared.queue.capacity()
                            ))));
                            progressed = true;
                        } else {
                            self.pending = Some(PendingState::Submit { job, deadline });
                        }
                    }
                    Err(SubmitError::Closed) => {
                        obs::incr(Counter::ServeRejects);
                        self.push_response(&Response::Err(WireError::Busy(
                            "server is shutting down".to_string(),
                        )));
                        progressed = true;
                    }
                }
            }
            Some(PendingState::Waiting(done)) => match done.take() {
                Some(response) => {
                    self.push_response(&response);
                    self.last_activity = now;
                    progressed = true;
                }
                None => self.pending = Some(PendingState::Waiting(done)),
            },
        }

        // Read and serve the next request only once the previous one is
        // fully answered — the protocol is strictly request/response
        // per connection.
        if self.pending.is_none() && self.out_pos >= self.out_buf.len() {
            let mut buf = [0u8; 4096];
            loop {
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        self.dead = true;
                        return true;
                    }
                    Ok(n) => {
                        self.in_buf.extend_from_slice(&buf[..n]);
                        self.last_activity = now;
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.dead = true;
                        return true;
                    }
                }
            }
            progressed |= self.parse_and_dispatch(shared);
        }

        if !self.has_work_in_flight() && now.duration_since(self.last_activity) > shared.io_timeout
        {
            self.dead = true;
            return true;
        }
        progressed
    }

    /// Parses one complete frame out of `in_buf`, if present, and
    /// dispatches it. Transport damage (bad magic, class, CRC) drops
    /// the connection, exactly like the 1-shard daemon; a malformed
    /// payload inside a valid frame gets a typed `Err` response.
    fn parse_and_dispatch(&mut self, shared: &Arc<ShardShared<S>>) -> bool {
        if self.in_buf.len() < FRAME_HEADER_LEN {
            return false;
        }
        let header = match durable::decode_frame_header(
            FrameClass::REQUEST,
            &self.in_buf[..FRAME_HEADER_LEN],
            &self.peer,
        ) {
            Ok(h) => h,
            Err(_) => {
                self.dead = true;
                return true;
            }
        };
        if header.payload_len > crate::protocol::MAX_PAYLOAD {
            self.dead = true;
            return true;
        }
        let total = FRAME_HEADER_LEN + header.payload_len as usize;
        if self.in_buf.len() < total {
            return false;
        }
        let payload = &self.in_buf[FRAME_HEADER_LEN..total];
        if durable::verify_frame_payload(&header, payload, &self.peer).is_err() {
            self.dead = true;
            return true;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        obs::incr(Counter::ServeRequests);
        obs::add(Counter::ServeBytesIn, total as u64);
        let request = Request::decode(payload);
        self.in_buf.drain(..total);
        match request {
            Err(e) => self.push_response(&Response::Err(WireError::Other(e.to_string()))),
            Ok(Request::IngestBlock {
                class,
                id,
                interval,
                meta,
                payload,
            }) => {
                if class != S::CLASS.tag() {
                    self.push_response(&Response::Err(WireError::class_mismatch(S::CLASS, class)));
                } else if let Some(msg) = S::meta_mismatch(shared.meta, meta) {
                    self.push_response(&Response::Err(WireError::Other(msg)));
                } else {
                    match S::decode_records(&payload, id, meta) {
                        Err(e) => self
                            .push_response(&Response::Err(WireError::Other(e.to_string()))),
                        Ok(records) => {
                            let block = match interval {
                                Some(iv) => Block::with_interval(id, iv, records),
                                None => Block::new(id, records),
                            };
                            let done = Arc::new(Pending::new(std::thread::current()));
                            self.pending = Some(PendingState::Submit {
                                job: ShardJob::Ingest {
                                    block,
                                    done: Arc::clone(&done),
                                },
                                deadline: Instant::now() + shared.queue_timeout,
                            });
                        }
                    }
                }
            }
            Ok(Request::QueryModel { class }) => {
                obs::incr(Counter::ServeShardQueries);
                if let Some(c) = class {
                    if c != S::CLASS.tag() {
                        self.push_response(&Response::Err(WireError::class_mismatch(S::CLASS, c)));
                        return true;
                    }
                }
                let replica = shared.replica.load();
                // Lazy render: the first query of this epoch pays the
                // serialization, every later one reuses the bytes.
                match replica.model_json() {
                    Ok(json) => self.push_response(&Response::Model(json.to_string())),
                    Err(msg) => self.push_response(&Response::Err(WireError::Other(msg))),
                }
            }
            Ok(Request::QuerySequences) => {
                obs::incr(Counter::ServeShardQueries);
                let replica = shared.replica.load();
                self.push_response(&Response::Sequences(replica.sequences.clone()));
            }
            Ok(Request::Stats) => {
                obs::incr(Counter::ServeShardQueries);
                self.push_response(&Response::Stats(sharded_stats_json(shared)));
            }
            Ok(Request::Snapshot { dir }) => {
                let done = Arc::new(Pending::new(std::thread::current()));
                self.pending = Some(PendingState::Submit {
                    job: ShardJob::Snapshot {
                        dir,
                        done: Arc::clone(&done),
                    },
                    deadline: Instant::now() + shared.queue_timeout,
                });
            }
            Ok(Request::Shutdown) => {
                self.push_response(&Response::Ok);
                self.shutdown_after_write = true;
            }
        }
        true
    }
}

/// Flags shutdown and closes the queue; queued jobs still drain, loop
/// threads exit once their in-flight connections are answered.
fn begin_shutdown<S: ServableModel>(shared: &Arc<ShardShared<S>>) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
}

/// One event-loop thread: accept on the shared non-blocking listener,
/// then poll every owned connection. Parks briefly when a full pass
/// makes no progress; any sequencer completion unparks it.
pub fn event_loop<S: ServableModel>(shared: &Arc<ShardShared<S>>, listener: &TcpListener) {
    let mut conns: Vec<Conn<S>> = Vec::new();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        let mut progressed = false;
        if !shutting_down {
            while let Ok((stream, _)) = listener.accept() {
                conns.push(Conn::new(stream));
                progressed = true;
            }
        }
        let now = Instant::now();
        for conn in &mut conns {
            progressed |= conn.tick(shared, now);
        }
        conns.retain(|c| !c.dead);
        if shutting_down {
            // Idle connections are dropped; those with a request in
            // flight (or unflushed bytes) finish first.
            conns.retain(Conn::has_work_in_flight);
            if conns.is_empty() {
                return;
            }
        }
        if !progressed {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
}
