//! `demon-serve` — a concurrent TCP monitoring daemon over the DEMON
//! engine.
//!
//! The paper frames DEMON as a system that *continuously* maintains
//! models and detects patterns as blocks arrive; this crate is that
//! long-running shape. A [`Server`] owns one
//! [`DemonMonitor`](demon_core::monitor::DemonMonitor) behind a
//! read/write lock and serves concurrent clients from a fixed worker
//! pool: blocks stream in through a bounded ingest queue (backpressure,
//! not unbounded buffering) while queries read the live model, the
//! compact pattern sequences and the obs counter table, and a
//! `Snapshot` verb persists the monitored store atomically through the
//! durable writer.
//!
//! Std-only by design: the wire protocol reuses the workspace's
//! framed, CRC32-checksummed durable codec ([`demon_types::durable`])
//! and the store's own block codec, so no new dependencies and no
//! second serialization format — a block crosses the socket in exactly
//! the bytes it persists as.
//!
//! # Module map
//!
//! | module | what it owns |
//! |---|---|
//! | [`protocol`] | frame layout, verbs, request/response codecs, typed wire errors |
//! | [`model`] | the [`ServableModel`] abstraction: codecs, rendering, snapshots, shard capability per model class |
//! | [`server`] | worker pool, ingest queue, WAL + recovery + compaction, dispatch |
//! | [`shard`] | partitioned runtime (`--shards ≥ 2`): per-shard stores + WAL lanes, sequencer, epoch-swapped replicas |
//! | [`event_loop`] | readiness-style (poll-based, std-only) connection loop for the sharded runtime |
//! | [`client`] | blocking one-call-per-request client with bounded retry |
//!
//! # Quick taste
//!
//! ```no_run
//! use demon_serve::{Client, ServeConfig, Server};
//! use demon_types::{Block, BlockId, Item, MinSupport, Tid, Transaction};
//!
//! let config = ServeConfig::new("127.0.0.1:0", 16, MinSupport::new(0.1)?);
//! let server = Server::bind(config)?;
//! let addr = server.local_addr();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let txs = (0..10)
//!     .map(|i| Transaction::new(Tid(i), vec![Item(1), Item(2)]))
//!     .collect();
//! client.ingest(16, &Block::new(BlockId(1), txs))?;
//! let model_json = client.query_model_json()?;
//! assert!(model_json.contains("frequent"));
//! client.shutdown()?;
//! handle.join().unwrap()?;
//! # Ok::<(), demon_types::DemonError>(())
//! ```
//!
//! # Guarantees
//!
//! * An acknowledged `IngestBlock` is **applied**: any later query — on
//!   any connection — sees the block.
//! * With a WAL directory configured (`ServeConfig::wal_dir`), an
//!   acknowledged `IngestBlock` is also **durable**: the encoded block
//!   is appended to the write-ahead log and fsynced *before* the ack is
//!   sent, so a `kill -9` after the ack never loses the block. On
//!   restart the daemon loads the newest snapshot generation and
//!   replays the WAL tail, salvaging a torn final record instead of
//!   refusing to start. Background compaction (snapshot + log rotation)
//!   is atomic: a crash mid-compaction recovers from either generation.
//! * Client-side, transient transport faults are retried under a
//!   bounded [`RetryPolicy`] and a `Duplicate` answer to a *retried*
//!   ingest is success (the ack was lost, not the block).
//! * Replayed or out-of-order blocks are typed protocol errors (the
//!   engine's systematic-evolution contract); the daemon keeps serving.
//! * The model answered over the socket is byte-identical to a batch
//!   `demon-cli mine` over the same stream (asserted in
//!   `tests/serve.rs`).
//! * `Shutdown` drains the queue before the process exits, and a
//!   `Snapshot` directory always loads under
//!   [`RecoveryPolicy::Strict`](demon_itemsets::persist::RecoveryPolicy).
//! * With `ServeConfig::shards ≥ 2` the serving state is partitioned
//!   (round-robin by block id) across per-shard stores and WAL lanes
//!   behind one sequencer, queries are answered from immutable
//!   epoch-swapped replicas, and every query response and persisted
//!   snapshot stays **byte-identical** to the 1-shard daemon's
//!   (asserted in `tests/serve_sharded.rs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod event_loop;
pub mod model;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{Client, RetryPolicy};
pub use model::{
    ClusterModel, DbscanModel, ItemsetModel, ServableModel, ShardableModel, TreeModel,
};
pub use protocol::{Request, Response, WireError, MAX_PAYLOAD};
pub use server::{ServeConfig, ServeSummary, ServedMonitor, Server};
