//! A blocking client for the daemon: one request/response per call over
//! a persistent connection.

use crate::protocol::{self, Request, Response};
use demon_types::durable::FrameClass;
use demon_types::{BlockId, DemonError, Result, TxBlock};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. Every method sends one request and blocks for
/// the response; a server-side failure surfaces as
/// [`DemonError::Remote`] carrying the daemon's message, transport
/// damage as the usual typed I/O or corruption errors.
pub struct Client {
    stream: TcpStream,
    source: String,
}

impl Client {
    /// Connects with the default 30 s I/O timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(30))
    }

    /// Connects, bounding both the connect and every later read/write
    /// by `timeout`.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client> {
        let mut last: Option<std::io::Error> = None;
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        for a in &addrs {
            match TcpStream::connect_timeout(a, timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    let source = format!("server {a}");
                    return Ok(Client { stream, source });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(DemonError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no address to connect to")
        })))
    }

    fn call(&mut self, request: &Request) -> Result<Response> {
        let payload = request.encode();
        let mut writer = &self.stream;
        protocol::write_message(&mut writer, FrameClass::REQUEST, &payload)?;
        let mut reader = &self.stream;
        match protocol::read_message(&mut reader, FrameClass::RESPONSE, &self.source)? {
            Some((body, _)) => Response::decode(&body),
            None => Err(DemonError::Corrupt {
                file: self.source.clone(),
                detail: "server closed the connection without responding".to_string(),
            }),
        }
    }

    /// A response of an unexpected shape for the verb that was sent.
    fn unexpected(&self, what: &str, got: &Response) -> DemonError {
        DemonError::Corrupt {
            file: self.source.clone(),
            detail: format!("expected {what} response, got {got:?}"),
        }
    }

    /// Ingests one block; returns once the server has *applied* it, so
    /// a subsequent query on any connection sees it. The server encodes
    /// rejections (backpressure, duplicate id, universe mismatch) as
    /// [`DemonError::Remote`].
    pub fn ingest(&mut self, n_items: u32, block: &TxBlock) -> Result<()> {
        match self.call(&Request::IngestBlock {
            n_items,
            block: block.clone(),
        })? {
            Response::Ok => Ok(()),
            Response::Err(msg) => Err(DemonError::Remote(msg)),
            other => Err(self.unexpected("Ok", &other)),
        }
    }

    /// The current model as the server's canonical JSON — byte-stable,
    /// so two equal models compare equal as strings.
    pub fn query_model_json(&mut self) -> Result<String> {
        match self.call(&Request::QueryModel)? {
            Response::Model(json) => Ok(json),
            Response::Err(msg) => Err(DemonError::Remote(msg)),
            other => Err(self.unexpected("Model", &other)),
        }
    }

    /// The current compact block sequences.
    pub fn query_sequences(&mut self) -> Result<Vec<Vec<BlockId>>> {
        match self.call(&Request::QuerySequences)? {
            Response::Sequences(seqs) => Ok(seqs),
            Response::Err(msg) => Err(DemonError::Remote(msg)),
            other => Err(self.unexpected("Sequences", &other)),
        }
    }

    /// The daemon's stats JSON (`{"blocks":…,"requests":…,`
    /// `"queue_depth":…,"counters":{…}}`).
    pub fn stats_json(&mut self) -> Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            Response::Err(msg) => Err(DemonError::Remote(msg)),
            other => Err(self.unexpected("Stats", &other)),
        }
    }

    /// Atomically persists the monitored store to `dir` on the server's
    /// filesystem; returns the persisted block count.
    pub fn snapshot(&mut self, dir: &str) -> Result<u64> {
        match self.call(&Request::Snapshot {
            dir: dir.to_string(),
        })? {
            Response::SnapshotDone(blocks) => Ok(blocks),
            Response::Err(msg) => Err(DemonError::Remote(msg)),
            other => Err(self.unexpected("SnapshotDone", &other)),
        }
    }

    /// Asks the daemon to drain, flush and exit.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Err(msg) => Err(DemonError::Remote(msg)),
            other => Err(self.unexpected("Ok", &other)),
        }
    }
}
