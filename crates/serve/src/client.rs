//! A blocking client for the daemon: one request/response per call over
//! a persistent connection, with bounded retry on transport faults.
//!
//! ## Retry semantics
//!
//! Networks lose packets and daemons restart; the client absorbs both
//! behind a [`RetryPolicy`]: connect failures, timeouts and dropped
//! connections are retried with exponential backoff plus jitter, and
//! `Busy` rejections (ingest backpressure) back off without
//! reconnecting. The subtle case is a lost *ack*: the daemon applied
//! the block, the connection died before the `Ok` arrived, and the
//! retried `IngestBlock` comes back `Duplicate`. Because a duplicate
//! answer can only mean the block is already applied (and, under a WAL,
//! durable), [`Client::ingest`] treats `Duplicate` after a transport
//! fault as success — the ack was lost, not the block. A `Duplicate` on
//! a *first* attempt is a genuine protocol error and still surfaces as
//! the typed [`DemonError::DuplicateBlock`].

use crate::model::{ClusterModel, DbscanModel, ItemsetModel, ServableModel, TreeModel};
use crate::protocol::{self, Request, Response, WireError};
use demon_trees::LabeledPoint;
use demon_types::durable::FrameClass;
use demon_types::{Block, BlockId, DemonError, ModelClass, Point, Result, TxBlock};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Bounded-retry policy: up to `attempts` tries total, sleeping an
/// exponentially growing, jittered delay between them.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, the first included (`1` = never retry).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts, 25 ms base, capped at 1 s — a transient daemon
    /// restart is absorbed, a dead daemon fails in about a second.
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// The pre-retry behavior: one attempt, fail on the first fault.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }
}

/// A connected client. Every method sends one request and blocks for
/// the response; a server-side failure surfaces as
/// [`DemonError::Remote`] (or the typed [`DemonError::DuplicateBlock`])
/// carrying the daemon's message, transport damage as the usual typed
/// I/O or corruption errors — after the [`RetryPolicy`] is exhausted.
pub struct Client {
    stream: TcpStream,
    source: String,
    addrs: Vec<SocketAddr>,
    timeout: Duration,
    retry: RetryPolicy,
    /// xorshift64 state for backoff jitter.
    jitter: u64,
}

impl Client {
    /// Connects with the default 30 s I/O timeout and default retry.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_timeout(addr, Duration::from_secs(30))
    }

    /// Connects, bounding both the connect and every later read/write
    /// by `timeout`, with the default [`RetryPolicy`].
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client> {
        Client::connect_with(addr, timeout, RetryPolicy::default())
    }

    /// Connects under an explicit retry policy: the initial connect is
    /// itself retried with backoff, so a client racing a daemon restart
    /// wins as long as the daemon comes back within the policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        timeout: Duration,
        retry: RetryPolicy,
    ) -> Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        // Seed the jitter from the clock's sub-second noise: no new
        // dependencies, and two clients racing the same daemon desync.
        let jitter = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::from(d.subsec_nanos()) | 1)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let mut client = Client {
            stream: connect_any(&addrs, timeout)?,
            source: String::new(),
            addrs,
            timeout,
            retry,
            jitter,
        };
        client.source = client
            .stream
            .peer_addr()
            .map(|a| format!("server {a}"))
            .unwrap_or_else(|_| "server".to_string());
        // The constructor-level retry: if the very first connect fails
        // transiently, connect_any has already failed fast — fold it
        // into the same backoff loop as reconnects.
        Ok(client)
    }

    /// Whether an error is worth a retry: connect-level and
    /// timeout-level transport faults, or the server vanishing
    /// mid-exchange. Server-side *decisions* (duplicate, mismatch,
    /// malformed payload) are never retried.
    fn is_retryable(e: &DemonError) -> bool {
        match e {
            DemonError::Io(io) => matches!(
                io.kind(),
                std::io::ErrorKind::ConnectionRefused
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::NotConnected
                    | std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::Interrupted
            ),
            DemonError::Corrupt { detail, .. } => detail.contains("connection closed"),
            _ => false,
        }
    }

    /// Sleeps the backoff for `attempt` (0-based): exponential from the
    /// policy base, capped, with jitter in `[delay/2, delay]` so
    /// stampeding clients spread out.
    fn backoff(&mut self, attempt: u32) {
        let exp = self
            .retry
            .base_delay
            .saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.retry.max_delay);
        if capped.is_zero() {
            return;
        }
        // xorshift64: cheap, std-only, plenty for jitter.
        let mut x = self.jitter.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter = x;
        let frac = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let half = capped.as_secs_f64() / 2.0;
        std::thread::sleep(Duration::from_secs_f64(half + half * frac));
    }

    /// Drops the (possibly dead) stream and dials the daemon again.
    fn reconnect(&mut self) -> Result<()> {
        self.stream = connect_any(&self.addrs, self.timeout)?;
        self.source = self
            .stream
            .peer_addr()
            .map(|a| format!("server {a}"))
            .unwrap_or_else(|_| "server".to_string());
        Ok(())
    }

    /// One request/response exchange on the current connection, no
    /// retries.
    fn call(&mut self, request: &Request) -> Result<Response> {
        let payload = request.encode();
        let mut writer = &self.stream;
        protocol::write_message(&mut writer, FrameClass::REQUEST, &payload)?;
        let mut reader = &self.stream;
        match protocol::read_message(&mut reader, FrameClass::RESPONSE, &self.source)? {
            Some((body, _)) => Response::decode(&body),
            None => Err(DemonError::Corrupt {
                file: self.source.clone(),
                detail: "connection closed by the server without responding".to_string(),
            }),
        }
    }

    /// [`call`](Client::call) under the retry policy. Transport faults
    /// reconnect and resend; `Busy` rejections back off on the same
    /// connection. Only safe for idempotent requests — `ingest` layers
    /// its duplicate handling on top. Returns the response together
    /// with whether any attempt failed after the request may have
    /// reached the server (the lost-ack signal).
    fn call_retrying(&mut self, request: &Request) -> Result<(Response, bool)> {
        let mut attempt = 0u32;
        let mut maybe_delivered = false;
        loop {
            match self.call(request) {
                Ok(Response::Err(WireError::Busy(msg))) => {
                    if attempt + 1 >= self.retry.attempts.max(1) {
                        return Ok((Response::Err(WireError::Busy(msg)), maybe_delivered));
                    }
                    self.backoff(attempt);
                }
                Ok(response) => return Ok((response, maybe_delivered)),
                Err(e) if Self::is_retryable(&e) && attempt + 1 < self.retry.attempts.max(1) => {
                    // The request may have been applied even though the
                    // answer never arrived.
                    maybe_delivered = true;
                    self.backoff(attempt);
                    // A failed redial counts against the next attempt's
                    // call, which will fail retryably on the dead stream.
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
            attempt += 1;
        }
    }

    /// A response of an unexpected shape for the verb that was sent.
    fn unexpected(&self, what: &str, got: &Response) -> DemonError {
        DemonError::Corrupt {
            file: self.source.clone(),
            detail: format!("expected {what} response, got {got:?}"),
        }
    }

    /// Ingests one block; returns once the server has *applied* it (and
    /// fsynced it, when serving durably), so a subsequent query on any
    /// connection sees it. Retries transport faults under the policy; a
    /// `Duplicate` answer to a retried send is success (the ack was
    /// lost, not the block), while a first-attempt duplicate is the
    /// typed [`DemonError::DuplicateBlock`]. Other rejections
    /// (backpressure past the policy, universe mismatch) surface as
    /// [`DemonError::Remote`].
    pub fn ingest(&mut self, n_items: u32, block: &TxBlock) -> Result<()> {
        self.ingest_records::<ItemsetModel>(n_items, block)
    }

    /// Ingests one block of points into a `--model clusters` daemon;
    /// `dim` is the dimensionality the daemon was started with. Same
    /// retry/duplicate semantics as [`Client::ingest`].
    pub fn ingest_points(&mut self, dim: u32, block: &Block<Point>) -> Result<()> {
        self.ingest_records::<ClusterModel>(dim, block)
    }

    /// Ingests one block of labeled points into a `--model trees`
    /// daemon. Same retry/duplicate semantics as [`Client::ingest`].
    pub fn ingest_labeled(&mut self, dim: u32, block: &Block<LabeledPoint>) -> Result<()> {
        self.ingest_records::<TreeModel>(dim, block)
    }

    /// Ingests one block of points into a `--model dbscan` daemon — the
    /// same point codec as [`Client::ingest_points`], stamped with the
    /// density class tag so a clusters daemon refuses it typed. Same
    /// retry/duplicate semantics as [`Client::ingest`].
    pub fn ingest_density(&mut self, dim: u32, block: &Block<Point>) -> Result<()> {
        self.ingest_records::<DbscanModel>(dim, block)
    }

    /// The class-generic ingest the typed wrappers share: encode the
    /// records through the class codec, tag the request with the class
    /// and meta, and interpret the answer.
    fn ingest_records<S: ServableModel>(
        &mut self,
        meta: u32,
        block: &Block<S::Record>,
    ) -> Result<()> {
        let request = Request::IngestBlock {
            class: S::CLASS.tag(),
            id: block.id(),
            interval: block.interval(),
            meta,
            payload: S::encode_records(block)?,
        };
        match self.call_retrying(&request)? {
            (Response::Ok, _) => Ok(()),
            (Response::Err(WireError::Duplicate { .. }), true) => Ok(()),
            (Response::Err(e), _) => Err(e.into_error()),
            (other, _) => Err(self.unexpected("Ok", &other)),
        }
    }

    /// The current model as the server's canonical JSON — byte-stable,
    /// so two equal models compare equal as strings. Accepts whatever
    /// class the daemon serves (the legacy behavior); use
    /// [`Client::query_model_json_for`] to pin one.
    pub fn query_model_json(&mut self) -> Result<String> {
        match self.call_retrying(&Request::QueryModel { class: None })? {
            (Response::Model(json), _) => Ok(json),
            (Response::Err(e), _) => Err(e.into_error()),
            (other, _) => Err(self.unexpected("Model", &other)),
        }
    }

    /// Like [`Client::query_model_json`], but pins the model class the
    /// caller expects: a daemon serving a different class answers with
    /// the typed [`DemonError::ModelClassMismatch`] instead of JSON the
    /// caller would misparse.
    pub fn query_model_json_for(&mut self, class: ModelClass) -> Result<String> {
        let request = Request::QueryModel {
            class: Some(class.tag()),
        };
        match self.call_retrying(&request)? {
            (Response::Model(json), _) => Ok(json),
            (Response::Err(e), _) => Err(e.into_error()),
            (other, _) => Err(self.unexpected("Model", &other)),
        }
    }

    /// The current compact block sequences.
    pub fn query_sequences(&mut self) -> Result<Vec<Vec<BlockId>>> {
        match self.call_retrying(&Request::QuerySequences)? {
            (Response::Sequences(seqs), _) => Ok(seqs),
            (Response::Err(e), _) => Err(e.into_error()),
            (other, _) => Err(self.unexpected("Sequences", &other)),
        }
    }

    /// The daemon's stats JSON (`{"blocks":…,"requests":…,`
    /// `"queue_depth":…,"counters":{…}}`).
    pub fn stats_json(&mut self) -> Result<String> {
        match self.call_retrying(&Request::Stats)? {
            (Response::Stats(json), _) => Ok(json),
            (Response::Err(e), _) => Err(e.into_error()),
            (other, _) => Err(self.unexpected("Stats", &other)),
        }
    }

    /// Atomically persists the monitored store to `dir` on the server's
    /// filesystem; returns the persisted block count. A failed snapshot
    /// leaves no partial directory behind.
    pub fn snapshot(&mut self, dir: &str) -> Result<u64> {
        match self.call_retrying(&Request::Snapshot {
            dir: dir.to_string(),
        })? {
            (Response::SnapshotDone(blocks), _) => Ok(blocks),
            (Response::Err(e), _) => Err(e.into_error()),
            (other, _) => Err(self.unexpected("SnapshotDone", &other)),
        }
    }

    /// Asks the daemon to drain, flush and exit. Never retried — a
    /// shutdown race should surface, not be papered over.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Err(e) => Err(e.into_error()),
            other => Err(self.unexpected("Ok", &other)),
        }
    }
}

/// Dials the first address that answers within `timeout`.
fn connect_any(addrs: &[SocketAddr], timeout: Duration) -> Result<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for a in addrs {
        match TcpStream::connect_timeout(a, timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(DemonError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "no address to connect to")
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Block, Item, Tid, Transaction};
    use std::net::TcpListener;

    fn block(id: u64) -> TxBlock {
        Block::new(
            BlockId(id),
            (0..4)
                .map(|i| Transaction::new(Tid(id * 10 + i), vec![Item(1), Item(2)]))
                .collect(),
        )
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(5),
        }
    }

    /// Reads one request frame off `stream` (panicking on damage) so the
    /// flaky listener can decide how to misbehave afterwards.
    fn read_request(stream: &mut TcpStream) -> Vec<u8> {
        let mut reader = &*stream;
        protocol::read_message(&mut reader, FrameClass::REQUEST, "test-peer")
            .expect("request frame")
            .expect("request present")
            .0
    }

    fn respond(stream: &mut TcpStream, response: &Response) {
        let mut writer = &*stream;
        protocol::write_message(&mut writer, FrameClass::RESPONSE, &response.encode())
            .expect("response written");
    }

    /// The lost-ack scenario end to end: the first exchange dies after
    /// the server "applied" the block (connection dropped instead of an
    /// ack), the retried send is answered `Duplicate` — and the client
    /// reports success. A genuine first-attempt duplicate still errors.
    #[test]
    fn retried_ingest_treats_duplicate_as_lost_ack_success() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let flaky = std::thread::spawn(move || {
            // Connection 1: swallow the ingest and hang up — ack lost.
            let (mut s, _) = listener.accept().expect("accept 1");
            let _ = read_request(&mut s);
            drop(s);
            // Connection 2 (the client redialed): the retried block is
            // "already applied".
            let (mut s, _) = listener.accept().expect("accept 2");
            let _ = read_request(&mut s);
            respond(&mut s, &Response::Err(WireError::Duplicate { id: 1, latest: 1 }));
            // Same connection: a fresh block replayed without any prior
            // transport fault is a real duplicate and must error.
            let _ = read_request(&mut s);
            respond(&mut s, &Response::Err(WireError::Duplicate { id: 1, latest: 2 }));
        });

        let mut client =
            Client::connect_with(addr, Duration::from_secs(5), fast_retry()).expect("connect");
        client
            .ingest(8, &block(1))
            .expect("duplicate after a lost ack is success");
        let err = client.ingest(8, &block(1)).expect_err("real duplicate errors");
        assert!(
            matches!(err, DemonError::DuplicateBlock { id: 1, latest: 2 }),
            "{err}"
        );
        assert!(err.to_string().contains("duplicate block"), "{err}");
        flaky.join().expect("listener thread");
    }

    /// `Busy` (backpressure) answers are retried on the same connection
    /// and succeed once the queue drains.
    #[test]
    fn busy_rejections_back_off_and_retry() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let flaky = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            for _ in 0..2 {
                let _ = read_request(&mut s);
                respond(&mut s, &Response::Err(WireError::Busy("queue full".into())));
            }
            let _ = read_request(&mut s);
            respond(&mut s, &Response::Ok);
        });
        let mut client =
            Client::connect_with(addr, Duration::from_secs(5), fast_retry()).expect("connect");
        client.ingest(8, &block(1)).expect("third attempt lands");
        flaky.join().expect("listener thread");
    }

    /// With retries exhausted, the last `Busy` rejection surfaces as the
    /// typed remote error instead of spinning forever.
    #[test]
    fn exhausted_retries_surface_the_last_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let attempts = 3u32;
        let flaky = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            for _ in 0..attempts {
                let _ = read_request(&mut s);
                respond(&mut s, &Response::Err(WireError::Busy("queue full".into())));
            }
        });
        let policy = RetryPolicy {
            attempts,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(2),
        };
        let mut client =
            Client::connect_with(addr, Duration::from_secs(5), policy).expect("connect");
        let err = client.ingest(8, &block(1)).expect_err("bounded retry gives up");
        assert!(matches!(&err, DemonError::Remote(m) if m.contains("queue full")), "{err}");
        flaky.join().expect("listener thread");
    }

    /// A dead stream with no retries (`RetryPolicy::none`) fails on the
    /// first transport fault — the pre-retry behavior is reachable.
    #[test]
    fn no_retry_policy_fails_fast() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let flaky = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let _ = read_request(&mut s);
            drop(s); // no response, ever
        });
        let mut client =
            Client::connect_with(addr, Duration::from_secs(5), RetryPolicy::none())
                .expect("connect");
        let err = client.ingest(8, &block(1)).expect_err("no retry");
        assert!(Client::is_retryable(&err), "fails with the transport fault: {err}");
        flaky.join().expect("listener thread");
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let _keep = listener; // hold the port open for the connect
        let mut client = Client::connect_with(
            addr,
            Duration::from_secs(5),
            RetryPolicy {
                attempts: 8,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(10),
            },
        )
        .expect("connect");
        // Large attempt indices must not overflow and must respect the
        // cap (10 ms each, halved floor): 8 sleeps well under a second.
        let start = std::time::Instant::now();
        for attempt in [0, 1, 5, 16, 31] {
            client.backoff(attempt);
        }
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
