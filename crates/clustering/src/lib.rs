//! BIRCH clustering (Zhang, Ramakrishnan, Livny; SIGMOD '96) and the
//! **BIRCH+** incremental maintainer of the DEMON paper.
//!
//! * [`cf`] — cluster features `(N, LS, SS)` with the standard BIRCH
//!   algebra (additivity, centroid, radius, diameter);
//! * [`cftree`] — the height-balanced CF-tree of phase 1, with threshold-
//!   driven absorption, node splitting and capacity-driven rebuilding;
//! * [`global`] — phase 2: weighted k-means (k-means++ seeding) and
//!   centroid-linkage agglomerative clustering over the leaf entries;
//! * [`birch`] — the two-phase pipeline, the [`birch::BirchPlus`]
//!   incremental maintainer (paper §3.1.2: suspend/resume phase 1 across
//!   blocks, rerun the cheap phase 2 on demand), and the labeling scan;
//! * [`dbscan`] — DBSCAN and incremental DBSCAN (Ester et al. '98), the
//!   comparator whose insert/delete cost asymmetry motivates GEMM
//!   (paper §3.2.4);
//! * [`dbscan_window`] — the windowed density model GEMM maintains: the
//!   incremental structure plus a block→slots registry so the MRW window
//!   slides by *deleting* the departing block's points (the only
//!   deletion-based model class in the workspace).
//!
//! # Paper → module map
//!
//! | Paper section | Concept | Module / type |
//! |---|---|---|
//! | §3.1.2 | BIRCH phase 1 (CF-tree scan) | [`cf`], [`cftree`] |
//! | §3.1.2 | BIRCH phase 2 (global clustering) | [`global`] |
//! | §3.1.2 | BIRCH+ suspend/resume maintenance | [`birch::BirchPlus`] |
//! | §3.1.2 | "second scan" labeling | [`birch::BirchModel::label_block`] |
//! | §3.2.4 | incremental-DBSCAN comparator | [`dbscan`] |
//! | §3.2.4 | deletion-based MRW density model | [`dbscan_window`] |
//! | Fig. 8 | BIRCH vs BIRCH+ response time | [`birch::BirchStats`] |
//!
//! The phase-2 assignment scan and the labeling scan shard across the
//! process-wide default thread count (`demon_types::parallel`); results
//! are bit-identical at any thread count because each point's argmin is
//! independent and float reductions stay sequential.
//!
//! # Example
//!
//! Maintain a cluster model across two blocks with BIRCH+:
//!
//! ```
//! use demon_clustering::{BirchParams, BirchPlus};
//! use demon_types::{BlockId, Point, PointBlock};
//!
//! let mut params = BirchParams::new(2, 2);
//! params.tree.threshold2 = 1.0;
//! let mut plus = BirchPlus::new(params);
//!
//! let blob = |cx: f64, id: u64| {
//!     PointBlock::new(
//!         BlockId(id),
//!         (0..50).map(|i| Point::new(vec![cx + (i % 5) as f64 * 0.1, 0.0])).collect(),
//!     )
//! };
//! plus.absorb_block(&blob(0.0, 1));   // phase 1, resumed per block
//! plus.absorb_block(&blob(30.0, 2));
//! let (model, _phase2_time) = plus.model();
//! assert_eq!(model.k(), 2);
//! assert_eq!(model.n_points(), 100);
//! // Label a fresh point against the maintained concepts.
//! assert_eq!(model.assign_point(&Point::new(vec![29.5, 0.0])),
//!            model.assign_point(&Point::new(vec![30.5, 0.0])));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod birch;
pub mod cf;
pub mod dbscan;
pub mod dbscan_window;
pub mod cftree;
pub mod global;
pub mod spill;

pub use birch::{phase2_model, Birch, BirchModel, BirchParams, BirchPlus, Cluster};
pub use cf::ClusterFeature;
pub use dbscan::{DbscanParams, IncrementalDbscan, Label};
pub use dbscan_window::{ClusterSummary, DbscanSummary, WindowedDbscan};
pub use cftree::CfTree;
pub use spill::PointBlockEntry;
