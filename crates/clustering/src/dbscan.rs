//! DBSCAN and **incremental DBSCAN** (Ester, Kriegel, Sander, Wimmer, Xu;
//! VLDB '98) — the incremental clustering comparator the paper cites.
//!
//! DEMON §3.2.4 argues for GEMM over direct add/delete maintenance partly
//! because "the cost incurred by incremental DBScan to maintain the set
//! of clusters when a tuple is deleted is higher than that when a tuple
//! is inserted". This module reproduces that asymmetry:
//!
//! * **insertion** is local — only the new point's ε-neighborhood can
//!   gain core status, and cluster merges are union-find operations;
//! * **deletion** can split a cluster, and detecting a split requires
//!   re-examining the connectivity of the whole affected cluster.
//!
//! Neighborhood queries run against a uniform grid with ε-sized cells.

use demon_types::Point;
use std::collections::HashMap;

/// Cluster assignment of one point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Label {
    /// Not density-reachable from any core point.
    Noise,
    /// Member of the cluster with this (resolved) id.
    Cluster(usize),
}

/// What an insertion did (Ester et al.'s case analysis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertEffect {
    /// The point is noise.
    Noise,
    /// A brand-new cluster formed.
    Creation,
    /// The point (and possibly promoted neighbors) joined one cluster.
    Absorption,
    /// Several previously separate clusters merged.
    Merge {
        /// How many clusters fused into one.
        merged: usize,
    },
}

/// What a deletion did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RemoveEffect {
    /// Nothing but the point itself changed.
    Shrink,
    /// The affected cluster fell apart into this many pieces (possibly
    /// 0 — everything became noise).
    Split {
        /// Number of resulting clusters.
        pieces: usize,
    },
}

/// Parameters of a DBSCAN model: dimensionality, neighborhood radius ε
/// and the density threshold MinPts (neighborhoods include the point
/// itself). The density analogue of `BirchParams`.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DbscanParams {
    /// Dimensionality of the point space.
    pub dim: usize,
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Minimum neighborhood size for a core point.
    pub min_pts: usize,
}

impl DbscanParams {
    /// Bundles the three DBSCAN knobs.
    pub fn new(dim: usize, eps: f64, min_pts: usize) -> Self {
        DbscanParams { dim, eps, min_pts }
    }
}

/// The incremental DBSCAN structure.
///
/// Serialization is deterministic (the neighbor grid renders as a
/// key-sorted pair list) and round-trips the exact internal state, so a
/// shelved or snapshotted model resumes byte-identically.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct IncrementalDbscan {
    eps: f64,
    eps2: f64,
    min_pts: usize,
    dim: usize,
    points: Vec<Point>,
    alive: Vec<bool>,
    /// Raw cluster id per point (resolve through `parent`).
    raw: Vec<Option<usize>>,
    core: Vec<bool>,
    /// Union-find over raw cluster ids (merging is what makes insertion
    /// cheap).
    parent: Vec<usize>,
    grid: HashMap<Vec<i64>, Vec<usize>>,
    n_alive: usize,
}

impl IncrementalDbscan {
    /// An empty structure with radius `eps` and density `min_pts`
    /// (neighborhoods include the point itself).
    pub fn new(dim: usize, eps: f64, min_pts: usize) -> Self {
        assert!(eps > 0.0 && eps.is_finite(), "eps must be positive");
        assert!(min_pts >= 2, "min_pts below 2 makes everything a core");
        IncrementalDbscan {
            eps,
            eps2: eps * eps,
            min_pts,
            dim,
            points: Vec::new(),
            alive: Vec::new(),
            raw: Vec::new(),
            core: Vec::new(),
            parent: Vec::new(),
            grid: HashMap::new(),
            n_alive: 0,
        }
    }

    /// An empty structure from bundled [`DbscanParams`].
    pub fn with_params(params: DbscanParams) -> Self {
        IncrementalDbscan::new(params.dim, params.eps, params.min_pts)
    }

    /// The parameters this structure was built with.
    pub fn params(&self) -> DbscanParams {
        DbscanParams::new(self.dim, self.eps, self.min_pts)
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.n_alive
    }

    /// Whether the structure holds no live points.
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    fn cell_of(&self, p: &Point) -> Vec<i64> {
        p.coords()
            .iter()
            .map(|&c| (c / self.eps).floor() as i64)
            .collect()
    }

    /// Live indices within `eps` of `p` (including `p` itself when live).
    fn neighbors(&self, p: &Point) -> Vec<usize> {
        let cell = self.cell_of(p);
        let mut out = Vec::new();
        let mut offsets = vec![0i64; self.dim];
        self.scan_cells(&cell, 0, &mut offsets, p, &mut out);
        out
    }

    fn scan_cells(
        &self,
        cell: &[i64],
        d: usize,
        offsets: &mut Vec<i64>,
        p: &Point,
        out: &mut Vec<usize>,
    ) {
        if d == self.dim {
            let key: Vec<i64> = cell.iter().zip(offsets.iter()).map(|(c, o)| c + o).collect();
            if let Some(members) = self.grid.get(&key) {
                for &i in members {
                    if self.alive[i] && self.points[i].dist2(p) <= self.eps2 {
                        out.push(i);
                    }
                }
            }
            return;
        }
        for o in -1..=1 {
            offsets[d] = o;
            self.scan_cells(cell, d + 1, offsets, p, out);
        }
    }

    fn find(&self, mut id: usize) -> usize {
        while self.parent[id] != id {
            id = self.parent[id];
        }
        id
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
            lo
        } else {
            ra
        }
    }

    /// The resolved label of point `idx`.
    pub fn label(&self, idx: usize) -> Label {
        match self.raw[idx] {
            None => Label::Noise,
            Some(id) => Label::Cluster(self.find(id)),
        }
    }

    /// Whether point `idx` is a core point.
    pub fn is_core(&self, idx: usize) -> bool {
        self.core[idx]
    }

    /// The live clusters as sorted member lists.
    pub fn clusters(&self) -> Vec<Vec<usize>> {
        let mut by_id: HashMap<usize, Vec<usize>> = HashMap::new();
        for i in 0..self.points.len() {
            if self.alive[i] {
                if let Label::Cluster(id) = self.label(i) {
                    by_id.entry(id).or_default().push(i);
                }
            }
        }
        let mut out: Vec<Vec<usize>> = by_id.into_values().collect();
        out.sort();
        out
    }

    /// Number of live clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters().len()
    }

    /// Inserts a point, returning its index and the structural effect.
    pub fn insert(&mut self, p: Point) -> (usize, InsertEffect) {
        debug_assert_eq!(p.dim(), self.dim);
        let idx = self.points.len();
        let cell = self.cell_of(&p);
        self.points.push(p);
        self.alive.push(true);
        self.raw.push(None);
        self.core.push(false);
        self.grid.entry(cell).or_default().push(idx);
        self.n_alive += 1;

        let nbrs = self.neighbors(&self.points[idx]); // includes idx
        // Only points in N_ε(idx) can change core status, all upward.
        let mut promoted: Vec<usize> = Vec::new();
        for &q in &nbrs {
            if !self.core[q] {
                let deg = self.neighbors(&self.points[q].clone()).len();
                if deg >= self.min_pts {
                    self.core[q] = true;
                    promoted.push(q);
                }
            }
        }
        if promoted.is_empty() {
            // No new core: idx is border iff some neighbor is core.
            if let Some(&c) = nbrs.iter().find(|&&q| self.core[q]) {
                self.raw[idx] = self.raw[c];
                return (idx, InsertEffect::Absorption);
            }
            return (idx, InsertEffect::Noise);
        }

        // Each promoted core claims its neighborhood; collect the cluster
        // ids it touches.
        let mut touched: Vec<usize> = Vec::new();
        for &q in &promoted {
            for r in self.neighbors(&self.points[q].clone()) {
                if self.core[r] {
                    if let Some(id) = self.raw[r] {
                        let root = self.find(id);
                        if !touched.contains(&root) {
                            touched.push(root);
                        }
                    }
                }
            }
        }

        let effect;
        let target = match touched.len() {
            0 => {
                // Creation: a fresh cluster id.
                let id = self.parent.len();
                self.parent.push(id);
                effect = InsertEffect::Creation;
                id
            }
            1 => {
                effect = InsertEffect::Absorption;
                touched[0]
            }
            n => {
                let mut t = touched[0];
                for &other in &touched[1..] {
                    t = self.union(t, other);
                }
                effect = InsertEffect::Merge { merged: n };
                t
            }
        };
        // Promoted cores and their neighborhoods join the target cluster.
        for &q in &promoted {
            self.raw[q] = Some(target);
            for r in self.neighbors(&self.points[q].clone()) {
                if self.raw[r].is_none() || !self.core[r] {
                    self.raw[r] = Some(target);
                }
            }
        }
        (idx, effect)
    }

    /// Deletes point `idx`, returning the structural effect. Deletion may
    /// split the affected cluster, which requires re-clustering all of
    /// its points — the expensive direction (§3.2.4).
    pub fn remove(&mut self, idx: usize) -> RemoveEffect {
        assert!(self.alive[idx], "point {idx} already removed");
        let old_cluster = match self.label(idx) {
            Label::Cluster(id) => Some(id),
            Label::Noise => None,
        };
        self.alive[idx] = false;
        self.n_alive -= 1;
        let p = self.points[idx].clone();
        self.raw[idx] = None;
        let was_core = self.core[idx];
        self.core[idx] = false;
        // Drop the point from the neighbor index. Without this the cell
        // keeps a stale entry forever (and the key survives even when the
        // removed point was its last member): invisible to queries, which
        // filter on `alive`, but a leak that grows with every deletion.
        let cell = self.cell_of(&p);
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.grid.entry(cell) {
            e.get_mut().retain(|&m| m != idx);
            if e.get().is_empty() {
                e.remove();
            }
        }

        // Neighbors may lose core status.
        let nbrs = self.neighbors(&p);
        let mut demoted = Vec::new();
        for &q in &nbrs {
            if self.core[q] {
                let deg = self.neighbors(&self.points[q].clone()).len();
                if deg < self.min_pts {
                    self.core[q] = false;
                    demoted.push(q);
                }
            }
        }
        if !was_core && demoted.is_empty() {
            return RemoveEffect::Shrink;
        }
        // Every cluster holding the removed point or a demoted core may
        // have lost connectivity.
        let mut affected: Vec<usize> = Vec::new();
        if let Some(id) = old_cluster {
            affected.push(id);
        }
        for &q in &demoted {
            if let Label::Cluster(id) = self.label(q) {
                if !affected.contains(&id) {
                    affected.push(id);
                }
            }
        }
        if affected.is_empty() {
            return RemoveEffect::Shrink;
        }
        let n_affected = affected.len();

        // Re-cluster the affected clusters from scratch: collect their
        // live members, clear them, and re-run region growing among them.
        let members: Vec<usize> = (0..self.points.len())
            .filter(|&i| {
                self.alive[i]
                    && matches!(self.label(i), Label::Cluster(id) if affected.contains(&id))
            })
            .collect();
        for &m in &members {
            self.raw[m] = None;
        }
        let mut pieces = 0usize;
        for &m in &members {
            if self.raw[m].is_some() || !self.core[m] {
                continue;
            }
            // Grow a new cluster from this unassigned core.
            let id = self.parent.len();
            self.parent.push(id);
            pieces += 1;
            let mut stack = vec![m];
            self.raw[m] = Some(id);
            while let Some(q) = stack.pop() {
                for r in self.neighbors(&self.points[q].clone()) {
                    if self.raw[r].map(|x| self.find(x)) == Some(id) {
                        continue;
                    }
                    self.raw[r] = Some(id);
                    if self.core[r] {
                        stack.push(r);
                    }
                }
            }
        }
        // A cleared border point may be density-reachable only from a
        // cluster that was *not* affected (its own core neighbors all sat
        // in another cluster). Region growing never visits it, so
        // re-attach it to any live core neighbor instead of dropping it
        // to noise.
        for &m in &members {
            if self.raw[m].is_some() {
                continue;
            }
            if let Some(c) = self
                .neighbors(&self.points[m].clone())
                .into_iter()
                .find(|&r| self.core[r])
            {
                self.raw[m] = self.raw[c];
            }
        }
        if pieces == n_affected {
            RemoveEffect::Shrink
        } else {
            RemoveEffect::Split { pieces }
        }
    }

    /// Reference batch DBSCAN over the live points — the test oracle and
    /// the from-scratch baseline.
    #[allow(clippy::needless_range_loop)]
    pub fn batch_labels(&self) -> Vec<Option<usize>> {
        let mut labels: Vec<Option<usize>> = vec![None; self.points.len()];
        let mut next = 0usize;
        for i in 0..self.points.len() {
            if !self.alive[i] || labels[i].is_some() || !self.batch_is_core(i) {
                continue;
            }
            let id = next;
            next += 1;
            let mut stack = vec![i];
            labels[i] = Some(id);
            while let Some(q) = stack.pop() {
                for r in self.neighbors(&self.points[q].clone()) {
                    if labels[r] == Some(id) {
                        continue;
                    }
                    if labels[r].is_none() {
                        labels[r] = Some(id);
                        if self.batch_is_core(r) {
                            stack.push(r);
                        }
                    } else if self.batch_is_core(r) {
                        // A core reached from two seeds belongs to one
                        // cluster; seeds are processed in order so this
                        // cannot happen for cores. Borders may flip —
                        // that ambiguity is inherent to DBSCAN.
                    }
                }
            }
        }
        labels
    }

    fn batch_is_core(&self, i: usize) -> bool {
        self.neighbors(&self.points[i].clone()).len() >= self.min_pts
    }

    /// Verifies the incremental state against batch DBSCAN: identical
    /// core flags, identical core partition, identical cluster count and
    /// identical noise set (border assignment may differ, but every
    /// border point must sit within ε of a core of its cluster). Returns
    /// the first divergence as an error message — the differential test
    /// oracle.
    #[allow(clippy::needless_range_loop)]
    pub fn verify_against_batch(&self) -> Result<(), String> {
        let batch = self.batch_labels();
        // Core flags.
        for i in 0..self.points.len() {
            if self.alive[i] && self.core[i] != self.batch_is_core(i) {
                return Err(format!(
                    "core flag of {i} diverged: incremental {}, batch {}",
                    self.core[i],
                    self.batch_is_core(i)
                ));
            }
        }
        // Cluster count.
        let batch_count = {
            let mut ids: Vec<usize> = (0..self.points.len())
                .filter(|&i| self.alive[i])
                .filter_map(|i| batch[i])
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        if self.n_clusters() != batch_count {
            return Err(format!(
                "cluster count diverged: incremental {}, batch {batch_count}",
                self.n_clusters()
            ));
        }
        // Core partition: two live cores share an incremental cluster iff
        // they share a batch cluster.
        let cores: Vec<usize> = (0..self.points.len())
            .filter(|&i| self.alive[i] && self.core[i])
            .collect();
        for (ai, &a) in cores.iter().enumerate() {
            for &b in &cores[ai + 1..] {
                let inc_same = self.label(a) == self.label(b);
                let batch_same = batch[a] == batch[b];
                if inc_same != batch_same {
                    return Err(format!("core partition differs at ({a},{b})"));
                }
            }
        }
        for i in 0..self.points.len() {
            if !self.alive[i] {
                continue;
            }
            match self.label(i) {
                Label::Noise => {
                    if batch[i].is_some() {
                        return Err(format!("{i} noise incrementally, clustered in batch"));
                    }
                }
                Label::Cluster(id) => {
                    if batch[i].is_none() {
                        return Err(format!("{i} clustered incrementally, noise in batch"));
                    }
                    if !self.core[i] {
                        // Border: must be within ε of some core of its cluster.
                        let ok = self
                            .neighbors(&self.points[i].clone())
                            .into_iter()
                            .any(|r| self.core[r] && self.label(r) == Label::Cluster(id));
                        if !ok {
                            return Err(format!("border {i} not attached to its cluster"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Panicking form of [`verify_against_batch`] for unit tests.
    ///
    /// [`verify_against_batch`]: IncrementalDbscan::verify_against_batch
    pub fn check_against_batch(&self) {
        if let Err(msg) = self.verify_against_batch() {
            panic!("incremental DBSCAN diverged from batch: {msg}");
        }
    }

    // ---- accessors for the maintainer / oracle / rendering layers ----

    /// The neighborhood radius ε.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// The density threshold (neighborhood includes the point itself).
    pub fn min_pts(&self) -> usize {
        self.min_pts
    }

    /// The dimensionality of the point space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The point at slot `idx` (slots of removed points stay readable).
    pub fn point(&self, idx: usize) -> &Point {
        &self.points[idx]
    }

    /// Whether slot `idx` still holds a live point.
    pub fn is_alive(&self, idx: usize) -> bool {
        self.alive[idx]
    }

    /// Total slots ever allocated (live + removed).
    pub fn n_slots(&self) -> usize {
        self.points.len()
    }

    /// Number of live core points.
    pub fn n_core(&self) -> usize {
        (0..self.points.len())
            .filter(|&i| self.alive[i] && self.core[i])
            .count()
    }

    /// Live indices within ε of `p` — the public neighborhood query the
    /// FOCUS oracle measures regions with.
    pub fn neighbors_of(&self, p: &Point) -> Vec<usize> {
        self.neighbors(p)
    }

    /// Number of occupied cells in the neighbor index (leak diagnostics:
    /// must shrink back as points are removed).
    pub fn index_cells(&self) -> usize {
        self.grid.len()
    }

    /// Number of entries across all cells of the neighbor index; equals
    /// the live-point count when the removal path keeps the index clean.
    pub fn index_entries(&self) -> usize {
        self.grid.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::new(c.to_vec())
    }

    /// A dense 3-point blob around (x, y).
    fn blob(db: &mut IncrementalDbscan, x: f64, y: f64) -> Vec<usize> {
        [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3)]
            .iter()
            .map(|(dx, dy)| db.insert(p(&[x + dx, y + dy])).0)
            .collect()
    }

    fn db() -> IncrementalDbscan {
        IncrementalDbscan::new(2, 1.0, 3)
    }

    #[test]
    fn isolated_points_are_noise() {
        let mut d = db();
        let (i, e) = d.insert(p(&[0.0, 0.0]));
        assert_eq!(e, InsertEffect::Noise);
        let (_, e) = d.insert(p(&[10.0, 0.0]));
        assert_eq!(e, InsertEffect::Noise);
        assert_eq!(d.label(i), Label::Noise);
        assert_eq!(d.n_clusters(), 0);
        d.check_against_batch();
    }

    #[test]
    fn dense_blob_creates_one_cluster() {
        let mut d = db();
        d.insert(p(&[0.0, 0.0]));
        d.insert(p(&[0.3, 0.0]));
        let (_, e) = d.insert(p(&[0.0, 0.3]));
        assert_eq!(e, InsertEffect::Creation);
        assert_eq!(d.n_clusters(), 1);
        d.check_against_batch();
    }

    #[test]
    fn nearby_point_is_absorbed() {
        let mut d = db();
        blob(&mut d, 0.0, 0.0);
        let (_, e) = d.insert(p(&[0.5, 0.5]));
        assert_eq!(e, InsertEffect::Absorption);
        assert_eq!(d.n_clusters(), 1);
        d.check_against_batch();
    }

    #[test]
    fn bridge_point_merges_clusters() {
        let mut d = db();
        blob(&mut d, 0.0, 0.0);
        blob(&mut d, 1.8, 0.0);
        assert_eq!(d.n_clusters(), 2);
        let (_, e) = d.insert(p(&[0.95, 0.0]));
        assert_eq!(e, InsertEffect::Merge { merged: 2 });
        assert_eq!(d.n_clusters(), 1);
        d.check_against_batch();
    }

    #[test]
    fn removing_bridge_splits_cluster() {
        let mut d = db();
        blob(&mut d, 0.0, 0.0);
        blob(&mut d, 1.8, 0.0);
        let (bridge, _) = d.insert(p(&[0.95, 0.0]));
        assert_eq!(d.n_clusters(), 1);
        let e = d.remove(bridge);
        assert_eq!(e, RemoveEffect::Split { pieces: 2 });
        assert_eq!(d.n_clusters(), 2);
        d.check_against_batch();
    }

    #[test]
    fn removing_border_point_just_shrinks() {
        let mut d = db();
        blob(&mut d, 0.0, 0.0);
        let (border, _) = d.insert(p(&[0.9, 0.0]));
        assert!(!d.is_core(border) || d.is_core(border)); // may or may not be core
        let before = d.n_clusters();
        d.remove(border);
        assert_eq!(d.n_clusters(), before);
        d.check_against_batch();
    }

    #[test]
    fn removing_everything_leaves_noise() {
        let mut d = db();
        let ids = blob(&mut d, 0.0, 0.0);
        for id in ids {
            d.remove(id);
        }
        assert!(d.is_empty());
        assert_eq!(d.n_clusters(), 0);
    }

    #[test]
    fn random_insert_delete_matches_batch() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        let mut d = IncrementalDbscan::new(2, 1.0, 4);
        let mut live: Vec<usize> = Vec::new();
        for step in 0..300 {
            if !live.is_empty() && rng.gen_bool(0.3) {
                let pos = rng.gen_range(0..live.len());
                let idx = live.swap_remove(pos);
                d.remove(idx);
            } else {
                // Clustered around 3 attractors plus uniform noise.
                let pt = if rng.gen_bool(0.8) {
                    let c = [(0.0, 0.0), (6.0, 0.0), (0.0, 6.0)][rng.gen_range(0..3)];
                    p(&[c.0 + rng.gen_range(-0.8..0.8), c.1 + rng.gen_range(-0.8..0.8)])
                } else {
                    p(&[rng.gen_range(-3.0..9.0), rng.gen_range(-3.0..9.0)])
                };
                let (idx, _) = d.insert(pt);
                live.push(idx);
            }
            if step % 25 == 0 {
                d.check_against_batch();
            }
        }
        d.check_against_batch();
    }

    #[test]
    fn removal_purges_the_neighbor_index() {
        let mut d = db();
        let ids = blob(&mut d, 0.0, 0.0);
        // A point alone in a far-away cell: removing it must drop the
        // emptied cell key, not just mask the entry behind `alive`.
        let (lone, _) = d.insert(p(&[50.0, 50.0]));
        let cells_before = d.index_cells();
        d.remove(lone);
        assert_eq!(d.index_cells(), cells_before - 1, "emptied cell key leaked");
        assert_eq!(d.index_entries(), d.len(), "stale index entry leaked");
        for id in ids {
            d.remove(id);
        }
        assert_eq!(d.index_cells(), 0);
        assert_eq!(d.index_entries(), 0);
    }

    #[test]
    fn removal_keeps_border_of_unaffected_cluster() {
        // Two 4-point clusters at min_pts = 4; a non-core border sits
        // within ε of exactly one core of each. Deleting all of cluster A
        // clears the border during A's re-clustering — it must be
        // re-attached to B, not dropped to noise.
        let mut d = IncrementalDbscan::new(2, 1.0, 4);
        let a: Vec<usize> = [[0.3, 0.0], [0.0, 0.0], [0.3, 0.35], [0.3, -0.35]]
            .iter()
            .map(|c| d.insert(p(c)).0)
            .collect();
        for c in [[2.2, 0.0], [2.5, 0.0], [2.2, 0.35], [2.2, -0.35]] {
            d.insert(p(&c));
        }
        let (border, _) = d.insert(p(&[1.25, 0.0]));
        assert!(!d.is_core(border));
        assert!(matches!(d.label(border), Label::Cluster(_)));
        for id in a {
            d.remove(id);
        }
        d.check_against_batch();
        assert!(
            matches!(d.label(border), Label::Cluster(_)),
            "border reachable from the surviving cluster was dropped to noise"
        );
    }

    #[test]
    #[should_panic(expected = "already removed")]
    fn double_remove_panics() {
        let mut d = db();
        let (i, _) = d.insert(p(&[0.0, 0.0]));
        d.remove(i);
        d.remove(i);
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn rejects_bad_eps() {
        IncrementalDbscan::new(2, 0.0, 3);
    }
}
