//! The CF-tree: BIRCH phase 1.
//!
//! A height-balanced tree of cluster features. Leaves hold sub-cluster
//! summaries; a new point descends to the closest leaf entry and is
//! absorbed there if the merged diameter stays within the threshold `T`,
//! otherwise it starts a new entry. Overflowing nodes split on the
//! farthest entry pair. When the number of sub-clusters outgrows the
//! configured capacity, the tree is **rebuilt** with a larger threshold by
//! reinserting the leaf entries (CF additivity makes this lossless at the
//! summary level).

use crate::cf::ClusterFeature;
use demon_types::{obs, Point};
use serde::{Deserialize, Serialize};

/// Tuning parameters of the CF-tree.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CfTreeParams {
    /// Maximum children of an internal node (BIRCH's `B`).
    pub branching: usize,
    /// Maximum entries in a leaf (BIRCH's `L`).
    pub leaf_capacity: usize,
    /// Initial squared absorption threshold `T²` on the merged diameter.
    /// BIRCH starts at 0 (only identical points merge) and grows it on
    /// rebuild.
    pub threshold2: f64,
    /// Rebuild the tree with a larger threshold when the number of leaf
    /// entries (sub-clusters) exceeds this bound — the stand-in for
    /// BIRCH's memory limit.
    pub max_leaf_entries: usize,
    /// Dimensionality of the data.
    pub dim: usize,
}

impl CfTreeParams {
    /// Reasonable defaults for `dim`-dimensional data.
    pub fn for_dim(dim: usize) -> Self {
        CfTreeParams {
            branching: 8,
            leaf_capacity: 16,
            threshold2: 0.0,
            max_leaf_entries: 2048,
            dim,
        }
    }
}

type NodeId = usize;

#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    Leaf {
        entries: Vec<ClusterFeature>,
    },
    Internal {
        /// `(subtree summary, child id)` pairs.
        children: Vec<(ClusterFeature, NodeId)>,
    },
}

/// Outcome of a recursive insertion: the node either absorbed the feature,
/// or split and handed back a new right sibling (with its summary).
enum InsertOutcome {
    Absorbed,
    Split(ClusterFeature, NodeId),
}

/// The CF-tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CfTree {
    params: CfTreeParams,
    nodes: Vec<Node>,
    root: NodeId,
    n_leaf_entries: usize,
    n_points: u64,
    rebuilds: usize,
}

impl CfTree {
    /// An empty tree.
    pub fn new(params: CfTreeParams) -> Self {
        CfTree {
            params,
            nodes: vec![Node::Leaf {
                entries: Vec::new(),
            }],
            root: 0,
            n_leaf_entries: 0,
            n_points: 0,
            rebuilds: 0,
        }
    }

    /// The current parameters (the threshold grows across rebuilds).
    pub fn params(&self) -> &CfTreeParams {
        &self.params
    }

    /// Number of points absorbed so far.
    pub fn n_points(&self) -> u64 {
        self.n_points
    }

    /// Number of sub-clusters (leaf entries).
    pub fn n_subclusters(&self) -> usize {
        self.n_leaf_entries
    }

    /// How many capacity-driven rebuilds have happened.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Inserts one point (phase 1 step).
    pub fn insert_point(&mut self, p: &Point) {
        debug_assert_eq!(p.dim(), self.params.dim);
        self.insert_cf(ClusterFeature::from_point(p));
    }

    /// Inserts a pre-summarized feature (used by rebuilds, and by BIRCH+
    /// when merging trees).
    pub fn insert_cf(&mut self, cf: ClusterFeature) {
        if cf.is_empty() {
            return;
        }
        obs::incr(obs::Counter::CfInserts);
        self.n_points += cf.n();
        self.insert_cf_inner(cf);
        if self.n_leaf_entries > self.params.max_leaf_entries {
            self.rebuild();
        }
    }

    fn insert_cf_inner(&mut self, cf: ClusterFeature) {
        if let InsertOutcome::Split(new_cf, new_id) = self.insert_at(self.root, &cf) {
            // Root split: grow a new root.
            let old_root_cf = self.subtree_cf(self.root);
            let new_root = Node::Internal {
                children: vec![(old_root_cf, self.root), (new_cf, new_id)],
            };
            self.nodes.push(new_root);
            self.root = self.nodes.len() - 1;
        }
    }

    fn insert_at(&mut self, node: NodeId, cf: &ClusterFeature) -> InsertOutcome {
        // Leaf case: absorb or append, then possibly split.
        if matches!(self.nodes[node], Node::Leaf { .. }) {
            let (threshold2, capacity) = (self.params.threshold2, self.params.leaf_capacity);
            let overflow = {
                let Node::Leaf { entries } = &mut self.nodes[node] else {
                    unreachable!();
                };
                let closest = entries
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.centroid_dist2(cf)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(i, _)| i);
                if let Some(i) = closest {
                    if entries[i].merged_diameter2(cf) <= threshold2 {
                        entries[i].merge(cf);
                        return InsertOutcome::Absorbed;
                    }
                }
                entries.push(cf.clone());
                entries.len() > capacity
            };
            self.n_leaf_entries += 1;
            if overflow {
                return self.split_leaf(node);
            }
            return InsertOutcome::Absorbed;
        }

        // Internal case: descend into the closest child.
        let (best, child_id) = {
            let Node::Internal { children } = &self.nodes[node] else {
                unreachable!();
            };
            debug_assert!(!children.is_empty());
            let best = children
                .iter()
                .enumerate()
                .map(|(i, (summary, _))| (i, summary.centroid_dist2(cf)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(i, _)| i)
                .expect("internal node has children");
            (best, children[best].1)
        };
        match self.insert_at(child_id, cf) {
            InsertOutcome::Absorbed => {
                let Node::Internal { children } = &mut self.nodes[node] else {
                    unreachable!();
                };
                children[best].0.merge(cf);
                InsertOutcome::Absorbed
            }
            InsertOutcome::Split(sibling_cf, sibling_id) => {
                // The old child's contents changed on split: recompute its
                // summary, then link the new sibling.
                let refreshed = self.subtree_cf(child_id);
                let overflow = {
                    let Node::Internal { children } = &mut self.nodes[node] else {
                        unreachable!();
                    };
                    children[best].0 = refreshed;
                    children.push((sibling_cf, sibling_id));
                    children.len() > self.params.branching
                };
                if overflow {
                    return self.split_internal(node);
                }
                InsertOutcome::Absorbed
            }
        }
    }

    /// Splits an overflowing leaf on its farthest entry pair; the node
    /// keeps one group, the returned sibling takes the other.
    fn split_leaf(&mut self, node: NodeId) -> InsertOutcome {
        obs::incr(obs::Counter::CfSplits);
        let entries = match &mut self.nodes[node] {
            Node::Leaf { entries } => std::mem::take(entries),
            Node::Internal { .. } => unreachable!(),
        };
        let (left, right) = partition_by_farthest_pair(entries, |e| e);
        let right_cf = sum_cfs(&right, self.params.dim);
        self.nodes[node] = Node::Leaf { entries: left };
        self.nodes.push(Node::Leaf { entries: right });
        InsertOutcome::Split(right_cf, self.nodes.len() - 1)
    }

    /// Splits an overflowing internal node on its farthest child pair.
    fn split_internal(&mut self, node: NodeId) -> InsertOutcome {
        obs::incr(obs::Counter::CfSplits);
        let children = match &mut self.nodes[node] {
            Node::Internal { children } => std::mem::take(children),
            Node::Leaf { .. } => unreachable!(),
        };
        let (left, right) = partition_by_farthest_pair(children, |(cf, _)| cf);
        let right_cf = sum_cfs_iter(right.iter().map(|(cf, _)| cf), self.params.dim);
        self.nodes[node] = Node::Internal { children: left };
        self.nodes.push(Node::Internal { children: right });
        InsertOutcome::Split(right_cf, self.nodes.len() - 1)
    }

    /// Recomputes the summary of a subtree from its node (one level).
    fn subtree_cf(&self, node: NodeId) -> ClusterFeature {
        match &self.nodes[node] {
            Node::Leaf { entries } => sum_cfs(entries, self.params.dim),
            Node::Internal { children } => {
                sum_cfs_iter(children.iter().map(|(cf, _)| cf), self.params.dim)
            }
        }
    }

    /// All sub-cluster summaries, collected left-to-right.
    pub fn leaf_entries(&self) -> Vec<ClusterFeature> {
        let mut out = Vec::with_capacity(self.n_leaf_entries);
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves(&self, node: NodeId, out: &mut Vec<ClusterFeature>) {
        match &self.nodes[node] {
            Node::Leaf { entries } => out.extend(entries.iter().cloned()),
            Node::Internal { children } => {
                for (_, child) in children {
                    self.collect_leaves(*child, out);
                }
            }
        }
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return h,
                Node::Internal { children } => {
                    node = children[0].1;
                    h += 1;
                }
            }
        }
    }

    /// Rebuilds the tree with a larger threshold, reinserting the leaf
    /// entries as units. Repeats (doubling the threshold) until the
    /// capacity constraint holds — guaranteed to terminate because a large
    /// enough threshold merges everything into one entry.
    fn rebuild(&mut self) {
        let mut entries = self.leaf_entries();
        let mut threshold2 = next_threshold2(&entries, self.params.threshold2);
        loop {
            self.rebuilds += 1;
            obs::incr(obs::Counter::CfRebuilds);
            let mut params = self.params;
            params.threshold2 = threshold2;
            let mut fresh = CfTree::new(params);
            for cf in &entries {
                fresh.n_points += cf.n();
                fresh.insert_cf_inner(cf.clone());
            }
            fresh.rebuilds = self.rebuilds;
            if fresh.n_leaf_entries <= self.params.max_leaf_entries {
                *self = fresh;
                return;
            }
            entries = fresh.leaf_entries();
            threshold2 = (threshold2 * 2.0).max(1e-12);
        }
    }

    /// Structural sanity check for tests: summaries match subtree contents,
    /// leaf-entry count is consistent, point count is conserved.
    pub fn check_invariants(&self) {
        let leaves = self.leaf_entries();
        assert_eq!(leaves.len(), self.n_leaf_entries, "leaf entry count");
        let total: u64 = leaves.iter().map(|e| e.n()).sum();
        assert_eq!(total, self.n_points, "point count");
        self.check_node(self.root);
    }

    fn check_node(&self, node: NodeId) {
        if let Node::Internal { children } = &self.nodes[node] {
            assert!(!children.is_empty());
            for (summary, child) in children {
                let actual = self.subtree_cf(*child);
                assert_eq!(summary.n(), actual.n(), "stale child summary (n)");
                let d2 = if summary.n() > 0 {
                    summary.centroid_dist2(&actual)
                } else {
                    0.0
                };
                assert!(d2 < 1e-6, "stale child summary (centroid)");
                self.check_node(*child);
            }
        }
    }
}

/// Sums a slice of features.
fn sum_cfs(entries: &[ClusterFeature], dim: usize) -> ClusterFeature {
    sum_cfs_iter(entries.iter(), dim)
}

fn sum_cfs_iter<'a, I: Iterator<Item = &'a ClusterFeature>>(
    iter: I,
    dim: usize,
) -> ClusterFeature {
    let mut acc = ClusterFeature::empty(dim);
    for cf in iter {
        acc.merge(cf);
    }
    acc
}

/// Splits `entries` into two groups seeded by the farthest pair (by
/// centroid distance); every entry joins the nearer seed.
fn partition_by_farthest_pair<T, F: Fn(&T) -> &ClusterFeature>(
    entries: Vec<T>,
    cf_of: F,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() >= 2);
    let (mut si, mut sj, mut best) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..entries.len() {
        for j in i + 1..entries.len() {
            let d = cf_of(&entries[i]).centroid_dist2(cf_of(&entries[j]));
            if d > best {
                best = d;
                si = i;
                sj = j;
            }
        }
    }
    let mut left = Vec::with_capacity(entries.len() / 2 + 1);
    let mut right = Vec::with_capacity(entries.len() / 2 + 1);
    // Seed centroids, cloned before the move.
    let seed_l = cf_of(&entries[si]).clone();
    let seed_r = cf_of(&entries[sj]).clone();
    for (idx, e) in entries.into_iter().enumerate() {
        if idx == si {
            left.push(e);
        } else if idx == sj {
            right.push(e);
        } else {
            let dl = seed_l.centroid_dist2(cf_of(&e));
            let dr = seed_r.centroid_dist2(cf_of(&e));
            if dl <= dr {
                left.push(e);
            } else {
                right.push(e);
            }
        }
    }
    (left, right)
}

/// Picks the rebuild threshold: the median merged-diameter² of each leaf
/// entry with its nearest neighbour (sampled), but at least double the
/// current threshold so rebuilds make progress.
fn next_threshold2(entries: &[ClusterFeature], current: f64) -> f64 {
    let floor = (current * 2.0).max(1e-12);
    if entries.len() < 2 {
        return floor;
    }
    // Sample up to 64 entries; for each find the nearest neighbour among
    // the sample and record the merged diameter².
    let step = (entries.len() / 64).max(1);
    let sample: Vec<&ClusterFeature> = entries.iter().step_by(step).collect();
    let mut dists: Vec<f64> = Vec::with_capacity(sample.len());
    for (i, a) in sample.iter().enumerate() {
        let mut best = f64::INFINITY;
        for (j, b) in sample.iter().enumerate() {
            if i != j {
                best = best.min(a.merged_diameter2(b));
            }
        }
        if best.is_finite() {
            dists.push(best);
        }
    }
    if dists.is_empty() {
        return floor;
    }
    dists.sort_by(f64::total_cmp);
    let median = dists[dists.len() / 2];
    median.max(floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::new(c.to_vec())
    }

    fn small_params() -> CfTreeParams {
        CfTreeParams {
            branching: 3,
            leaf_capacity: 3,
            threshold2: 0.25,
            max_leaf_entries: 1000,
            dim: 2,
        }
    }

    #[test]
    fn identical_points_merge_into_one_entry() {
        let mut t = CfTree::new(small_params());
        for _ in 0..10 {
            t.insert_point(&p(&[1.0, 1.0]));
        }
        assert_eq!(t.n_subclusters(), 1);
        assert_eq!(t.n_points(), 10);
        let entries = t.leaf_entries();
        assert_eq!(entries[0].n(), 10);
        t.check_invariants();
    }

    #[test]
    fn distant_points_form_separate_entries() {
        let mut t = CfTree::new(small_params());
        t.insert_point(&p(&[0.0, 0.0]));
        t.insert_point(&p(&[10.0, 0.0]));
        t.insert_point(&p(&[0.0, 10.0]));
        assert_eq!(t.n_subclusters(), 3);
        t.check_invariants();
    }

    #[test]
    fn tree_splits_and_stays_consistent() {
        let mut t = CfTree::new(small_params());
        // A grid of well-separated points forces leaf and internal splits.
        for i in 0..10 {
            for j in 0..10 {
                t.insert_point(&p(&[i as f64 * 10.0, j as f64 * 10.0]));
            }
        }
        assert_eq!(t.n_subclusters(), 100);
        assert_eq!(t.n_points(), 100);
        assert!(t.height() > 1);
        t.check_invariants();
    }

    #[test]
    fn nearby_points_absorb_within_threshold() {
        let mut t = CfTree::new(small_params());
        // Jittered points around two far-apart centers.
        for i in 0..20 {
            let eps = (i % 5) as f64 * 0.02;
            t.insert_point(&p(&[0.0 + eps, 0.0]));
            t.insert_point(&p(&[100.0 + eps, 0.0]));
        }
        assert!(t.n_subclusters() <= 4, "got {}", t.n_subclusters());
        assert_eq!(t.n_points(), 40);
        t.check_invariants();
    }

    #[test]
    fn capacity_triggers_rebuild_with_larger_threshold() {
        let mut params = small_params();
        params.max_leaf_entries = 16;
        params.threshold2 = 0.0;
        let mut t = CfTree::new(params);
        // 100 distinct, moderately spaced points can't all keep their own
        // sub-cluster under a 16-entry budget.
        for i in 0..100 {
            t.insert_point(&p(&[i as f64 * 0.1, 0.0]));
        }
        assert!(t.rebuilds() > 0);
        assert!(t.n_subclusters() <= 16);
        assert_eq!(t.n_points(), 100);
        assert!(t.params().threshold2 > 0.0);
        t.check_invariants();
    }

    #[test]
    fn insert_cf_preserves_mass() {
        let mut t = CfTree::new(small_params());
        let mut cf = ClusterFeature::from_point(&p(&[1.0, 2.0]));
        cf.add_point(&p(&[1.1, 2.1]));
        t.insert_cf(cf);
        t.insert_cf(ClusterFeature::empty(2)); // no-op
        assert_eq!(t.n_points(), 2);
        assert_eq!(t.n_subclusters(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = CfTree::new(small_params());
        for i in 0..30 {
            t.insert_point(&p(&[i as f64, (i * 7 % 13) as f64]));
        }
        let json = serde_json::to_string(&t).unwrap();
        let back: CfTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_points(), t.n_points());
        assert_eq!(back.n_subclusters(), t.n_subclusters());
        assert_eq!(back.leaf_entries(), t.leaf_entries());
        back.check_invariants();
    }

    #[test]
    fn order_insensitivity_of_summaries() {
        // BIRCH is robust to input order: total mass and scatter of the
        // leaf summaries must not depend on order (exact entries may).
        let pts: Vec<Point> = (0..50)
            .map(|i| p(&[(i % 7) as f64 * 5.0, (i % 3) as f64 * 5.0]))
            .collect();
        let mut fwd = CfTree::new(small_params());
        let mut rev = CfTree::new(small_params());
        for x in &pts {
            fwd.insert_point(x);
        }
        for x in pts.iter().rev() {
            rev.insert_point(x);
        }
        assert_eq!(fwd.n_points(), rev.n_points());
        // Entry granularity may differ with order (a point can start a twin
        // entry in another subtree); the mass landing at each coordinate
        // must not. Group masses by rounded centroid.
        let mass = |t: &CfTree| {
            let mut agg = std::collections::BTreeMap::<(i64, i64), u64>::new();
            for cf in t.leaf_entries() {
                let c = cf.centroid();
                let key = (
                    (c.coords()[0] * 100.0).round() as i64,
                    (c.coords()[1] * 100.0).round() as i64,
                );
                *agg.entry(key).or_default() += cf.n();
            }
            agg
        };
        assert_eq!(mass(&fwd), mass(&rev));
    }
}
