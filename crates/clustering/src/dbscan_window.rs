//! The windowed incremental-DBSCAN model maintained by GEMM's
//! most-recent-window span.
//!
//! Every other model class in this workspace maintains its MRW window by
//! *refitting* (the tree) or by keeping per-slot future models (itemsets,
//! BIRCH+). Density models are the first class maintained by **deletion**:
//! the window slides by removing the departing block's points through
//! [`IncrementalDbscan::remove`] — the expensive direction the paper
//! singles out in §3.2.4. [`WindowedDbscan`] is the bookkeeping that makes
//! that possible: the live structure plus a per-block registry of the
//! point slots each block contributed, so retiring block `D_i` deletes
//! exactly its points and nothing else.

use crate::dbscan::{DbscanParams, IncrementalDbscan, Label};
use demon_types::{BlockId, Point};

/// The point slots one absorbed block contributed to the structure.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct BlockMembers {
    id: BlockId,
    slots: Vec<usize>,
}

/// An incremental-DBSCAN structure plus the block→slots registry that
/// supports deletion-based window maintenance.
///
/// Serialization round-trips the exact internal state (deterministically),
/// so a shelved model resumes byte-identically — required by the generic
/// maintainer contract.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct WindowedDbscan {
    state: IncrementalDbscan,
    blocks: Vec<BlockMembers>,
}

impl WindowedDbscan {
    /// An empty model with the given DBSCAN parameters.
    pub fn new(params: DbscanParams) -> Self {
        WindowedDbscan {
            state: IncrementalDbscan::with_params(params),
            blocks: Vec::new(),
        }
    }

    /// The live clustering structure.
    pub fn structure(&self) -> &IncrementalDbscan {
        &self.state
    }

    /// The parameters the model was built with.
    pub fn params(&self) -> DbscanParams {
        self.state.params()
    }

    /// Blocks currently inside the window, in arrival order.
    pub fn covered_blocks(&self) -> Vec<BlockId> {
        self.blocks.iter().map(|b| b.id).collect()
    }

    /// Inserts every point of block `id` and records the slots it filled.
    /// Blocks arrive in order and at most once (the engine enforces the
    /// systematic-evolution contract).
    pub fn absorb_block(&mut self, id: BlockId, points: &[Point]) {
        debug_assert!(
            self.blocks.iter().all(|b| b.id != id),
            "block {id} absorbed twice"
        );
        let slots = points
            .iter()
            .map(|p| self.state.insert(p.clone()).0)
            .collect();
        self.blocks.push(BlockMembers { id, slots });
    }

    /// Slides the window past block `id`: deletes each point the block
    /// contributed through the incremental removal path (splits and
    /// demotions included). Returns how many points were removed; unknown
    /// ids are a no-op returning 0.
    pub fn shed_block(&mut self, id: BlockId) -> usize {
        let Some(pos) = self.blocks.iter().position(|b| b.id == id) else {
            return 0;
        };
        let entry = self.blocks.remove(pos);
        for &slot in &entry.slots {
            self.state.remove(slot);
        }
        entry.slots.len()
    }

    /// The canonical served form: cluster sizes, core counts and
    /// centroids, ordered by (centroid, size) so the rendering never
    /// depends on internal slot numbering.
    pub fn summary(&self) -> DbscanSummary {
        let s = &self.state;
        let mut clusters: Vec<ClusterSummary> = s
            .clusters()
            .into_iter()
            .map(|members| {
                let n_core = members.iter().filter(|&&i| s.is_core(i)).count();
                let mut centroid = vec![0.0f64; s.dim()];
                for &i in &members {
                    for (c, x) in centroid.iter_mut().zip(s.point(i).coords()) {
                        *c += x;
                    }
                }
                for c in &mut centroid {
                    *c /= members.len() as f64;
                }
                ClusterSummary {
                    size: members.len(),
                    n_core,
                    centroid,
                }
            })
            .collect();
        clusters.sort_by(|a, b| {
            let by_centroid = a
                .centroid
                .iter()
                .zip(&b.centroid)
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal);
            by_centroid.then(a.size.cmp(&b.size))
        });
        let n_noise = (0..s.n_slots())
            .filter(|&i| s.is_alive(i) && matches!(s.label(i), Label::Noise))
            .count();
        DbscanSummary {
            eps: s.eps(),
            min_pts: s.min_pts(),
            dim: s.dim(),
            blocks: self.covered_blocks().iter().map(|b| b.0).collect(),
            n_points: s.len(),
            n_core: s.n_core(),
            n_noise,
            n_clusters: clusters.len(),
            clusters,
        }
    }
}

/// One cluster in the served rendering.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClusterSummary {
    /// Live members (cores + borders).
    pub size: usize,
    /// Core points among the members.
    pub n_core: usize,
    /// Mean of the member coordinates.
    pub centroid: Vec<f64>,
}

/// The canonical JSON the daemon serves for `--model dbscan`.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DbscanSummary {
    /// Neighborhood radius ε.
    pub eps: f64,
    /// Density threshold.
    pub min_pts: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Window contents in arrival order.
    pub blocks: Vec<u64>,
    /// Live points.
    pub n_points: usize,
    /// Live core points.
    pub n_core: usize,
    /// Live noise points.
    pub n_noise: usize,
    /// Live clusters.
    pub n_clusters: usize,
    /// Per-cluster summaries in canonical order.
    pub clusters: Vec<ClusterSummary>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DbscanParams {
        DbscanParams::new(2, 1.0, 3)
    }

    fn blob_block(id: u64, x: f64, y: f64) -> (BlockId, Vec<Point>) {
        let pts = [(0.0, 0.0), (0.3, 0.0), (0.0, 0.3)]
            .iter()
            .map(|(dx, dy)| Point::new(vec![x + dx, y + dy]))
            .collect();
        (BlockId(id), pts)
    }

    #[test]
    fn absorb_then_shed_returns_to_the_prior_clustering() {
        let mut m = WindowedDbscan::new(params());
        let (id1, p1) = blob_block(1, 0.0, 0.0);
        let (id2, p2) = blob_block(2, 10.0, 0.0);
        m.absorb_block(id1, &p1);
        let before = m.summary();
        m.absorb_block(id2, &p2);
        assert_eq!(m.summary().n_clusters, 2);
        assert_eq!(m.shed_block(id2), 3);
        let after = m.summary();
        assert_eq!(before, after, "shedding the newest block must undo it");
        assert_eq!(m.covered_blocks(), vec![id1]);
        m.structure().check_against_batch();
    }

    #[test]
    fn shed_unknown_block_is_a_noop() {
        let mut m = WindowedDbscan::new(params());
        assert_eq!(m.shed_block(BlockId(9)), 0);
    }

    #[test]
    fn serde_round_trip_preserves_behavior_and_bytes() {
        let mut m = WindowedDbscan::new(params());
        let (id1, p1) = blob_block(1, 0.0, 0.0);
        let (id2, p2) = blob_block(2, 1.5, 0.0);
        m.absorb_block(id1, &p1);
        m.absorb_block(id2, &p2);
        m.shed_block(id1);
        let bytes = serde_json::to_string(&m).unwrap();
        let mut back: WindowedDbscan = serde_json::from_str(&bytes).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), bytes);
        assert_eq!(back.summary(), m.summary());
        // The revived structure keeps working incrementally.
        let (id3, p3) = blob_block(3, 0.0, 5.0);
        back.absorb_block(id3, &p3);
        back.structure().check_against_batch();
    }
}
