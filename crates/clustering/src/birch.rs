//! The BIRCH pipeline and the BIRCH+ incremental maintainer.
//!
//! **BIRCH** (baseline): scan the dataset into a CF-tree (phase 1), then
//! globally cluster the leaf entries into `K` clusters (phase 2). The
//! non-incremental baseline of Figure 8 re-runs both phases over the whole
//! database each time a block arrives.
//!
//! **BIRCH+** (paper §3.1.2): keep the phase-1 CF-tree alive across
//! blocks — absorbing block `D_{t+1}` "as if the first phase of BIRCH had
//! been suspended and is now resumed" — and re-run only the cheap phase 2
//! on the in-memory sub-clusters when a model is needed. The result is the
//! same as running BIRCH over `D[1, t+1]` from scratch, at a fraction of
//! the cost.

use crate::cf::ClusterFeature;
use crate::cftree::{CfTree, CfTreeParams};
use crate::global::{self, GlobalClustering};
use demon_types::{Point, PointBlock};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Parameters of the BIRCH pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BirchParams {
    /// CF-tree (phase 1) parameters.
    pub tree: CfTreeParams,
    /// Number of clusters requested from phase 2.
    pub k: usize,
    /// Seed for the k-means++ initialization of phase 2.
    pub seed: u64,
    /// Maximum Lloyd iterations in phase 2.
    pub kmeans_iters: usize,
}

impl BirchParams {
    /// Defaults for `dim`-dimensional data and `k` clusters.
    pub fn new(dim: usize, k: usize) -> Self {
        BirchParams {
            tree: CfTreeParams::for_dim(dim),
            k,
            seed: 0,
            kmeans_iters: 64,
        }
    }
}

/// One discovered cluster: the merged feature of its sub-clusters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cluster {
    /// Summary of all member points.
    pub cf: ClusterFeature,
}

impl Cluster {
    /// The cluster centroid.
    pub fn centroid(&self) -> Point {
        self.cf.centroid()
    }

    /// Number of member points.
    pub fn n(&self) -> u64 {
        self.cf.n()
    }
}

/// The cluster model: `K` clusters plus the sub-cluster level detail.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BirchModel {
    /// The discovered clusters.
    pub clusters: Vec<Cluster>,
    /// The phase-1 sub-cluster summaries.
    pub subclusters: Vec<ClusterFeature>,
    /// For each sub-cluster, the cluster it belongs to.
    pub assignment: Vec<usize>,
}

impl BirchModel {
    fn from_clustering(subclusters: Vec<ClusterFeature>, g: GlobalClustering) -> Self {
        BirchModel {
            clusters: g.clusters.into_iter().map(|cf| Cluster { cf }).collect(),
            subclusters,
            assignment: g.assignment,
        }
    }

    /// Number of clusters (may be below the requested `K` when the data
    /// has fewer distinct sub-clusters).
    pub fn k(&self) -> usize {
        self.clusters.len()
    }

    /// Total points summarized.
    pub fn n_points(&self) -> u64 {
        self.clusters.iter().map(Cluster::n).sum()
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> Vec<Point> {
        self.clusters.iter().map(Cluster::centroid).collect()
    }

    /// Within-cluster scatter (SSE) computed from the summaries.
    pub fn sse(&self) -> f64 {
        self.clusters.iter().map(|c| c.cf.scatter()).sum()
    }

    /// Index of the cluster whose centroid is closest to `p` — the
    /// "second scan" labeling step of §3.1.2.
    pub fn assign_point(&self, p: &Point) -> usize {
        self.clusters
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.cf.centroid_dist2_to_point(p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(i, _)| i)
            .expect("model has at least one cluster")
    }

    /// Labels every point of a block by nearest cluster, sharding the
    /// scan across the process-wide default thread count. Each point's
    /// label is an independent fixed-order argmin, so the labeling is
    /// bit-identical at any thread count.
    pub fn label_block(&self, block: &PointBlock) -> Vec<usize> {
        demon_types::parallel::par_map(demon_types::parallel::global(), block.records(), |p| {
            self.assign_point(p)
        })
    }
}

/// Runs phase 2 over the leaf entries of a maintained phase-1 CF-tree,
/// yielding the cluster model — the "resume BIRCH" step of §3.1.2 shared
/// by the batch pipeline, GEMM's `ClusterMaintainer`, and the serving
/// daemon's model rendering. Deterministic for a given tree and params.
pub fn phase2_model(tree: &CfTree, params: &BirchParams) -> BirchModel {
    let subclusters = tree.leaf_entries();
    let g = global::kmeans(&subclusters, params.k, params.seed, params.kmeans_iters);
    BirchModel::from_clustering(subclusters, g)
}

/// Timing breakdown of a BIRCH run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BirchStats {
    /// Time spent scanning points into the CF-tree.
    pub phase1_time: Duration,
    /// Time spent in the global clustering of leaf entries.
    pub phase2_time: Duration,
}

impl BirchStats {
    /// Total time of both phases.
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time
    }
}

/// The non-incremental BIRCH baseline.
#[derive(Clone, Debug)]
pub struct Birch {
    params: BirchParams,
}

impl Birch {
    /// A pipeline with the given parameters.
    pub fn new(params: BirchParams) -> Self {
        Birch { params }
    }

    /// Runs both phases over `points`.
    pub fn cluster_points(&self, points: &[Point]) -> (BirchModel, BirchStats) {
        let mut stats = BirchStats::default();
        let t0 = Instant::now();
        let mut tree = CfTree::new(self.params.tree);
        for p in points {
            tree.insert_point(p);
        }
        stats.phase1_time = t0.elapsed();
        let t1 = Instant::now();
        let subclusters = tree.leaf_entries();
        let g = global::kmeans(
            &subclusters,
            self.params.k,
            self.params.seed,
            self.params.kmeans_iters,
        );
        stats.phase2_time = t1.elapsed();
        (BirchModel::from_clustering(subclusters, g), stats)
    }

    /// Runs both phases over a sequence of blocks (the "re-run everything"
    /// baseline of Figure 8).
    pub fn cluster_blocks(&self, blocks: &[&PointBlock]) -> (BirchModel, BirchStats) {
        let mut stats = BirchStats::default();
        let t0 = Instant::now();
        let mut tree = CfTree::new(self.params.tree);
        for block in blocks {
            for p in block.records() {
                tree.insert_point(p);
            }
        }
        stats.phase1_time = t0.elapsed();
        let t1 = Instant::now();
        let subclusters = tree.leaf_entries();
        let g = global::kmeans(
            &subclusters,
            self.params.k,
            self.params.seed,
            self.params.kmeans_iters,
        );
        stats.phase2_time = t1.elapsed();
        (BirchModel::from_clustering(subclusters, g), stats)
    }
}

/// The BIRCH+ incremental maintainer: a long-lived phase-1 CF-tree that
/// absorbs blocks as they arrive; phase 2 is re-run on demand.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BirchPlus {
    params: BirchParams,
    tree: CfTree,
}

impl BirchPlus {
    /// A fresh maintainer (no data absorbed yet).
    pub fn new(params: BirchParams) -> Self {
        BirchPlus {
            tree: CfTree::new(params.tree),
            params,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &BirchParams {
        &self.params
    }

    /// The live phase-1 tree.
    pub fn tree(&self) -> &CfTree {
        &self.tree
    }

    /// Number of points absorbed so far.
    pub fn n_points(&self) -> u64 {
        self.tree.n_points()
    }

    /// Absorbs one block into the maintained tree (resumed phase 1).
    /// Returns the phase-1 time for this block — the response-time cost of
    /// BIRCH+ in Figure 8.
    pub fn absorb_block(&mut self, block: &PointBlock) -> Duration {
        let t0 = Instant::now();
        for p in block.records() {
            self.tree.insert_point(p);
        }
        t0.elapsed()
    }

    /// Absorbs a plain point slice.
    pub fn absorb_points(&mut self, points: &[Point]) -> Duration {
        let t0 = Instant::now();
        for p in points {
            self.tree.insert_point(p);
        }
        t0.elapsed()
    }

    /// Runs phase 2 on the maintained sub-clusters, yielding the current
    /// cluster model and the phase-2 time.
    pub fn model(&self) -> (BirchModel, Duration) {
        let t0 = Instant::now();
        let subclusters = self.tree.leaf_entries();
        let g = global::kmeans(
            &subclusters,
            self.params.k,
            self.params.seed,
            self.params.kmeans_iters,
        );
        let elapsed = t0.elapsed();
        (BirchModel::from_clustering(subclusters, g), elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::BlockId;
    use rand::prelude::*;

    /// Three Gaussian blobs in 2-D, deterministic.
    fn blob_points(seed: u64, n_per: usize) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers = [[0.0, 0.0], [30.0, 0.0], [0.0, 30.0]];
        let mut pts = Vec::new();
        for c in &centers {
            for _ in 0..n_per {
                pts.push(Point::new(vec![
                    c[0] + rng.gen_range(-1.0..1.0),
                    c[1] + rng.gen_range(-1.0..1.0),
                ]));
            }
        }
        pts.shuffle(&mut rng);
        pts
    }

    fn params() -> BirchParams {
        let mut p = BirchParams::new(2, 3);
        p.tree.threshold2 = 1.0;
        p.tree.max_leaf_entries = 256;
        p
    }

    #[test]
    fn birch_recovers_blob_centers() {
        let pts = blob_points(1, 200);
        let (model, stats) = Birch::new(params()).cluster_points(&pts);
        assert_eq!(model.k(), 3);
        assert_eq!(model.n_points(), 600);
        let centroids = model.centroids();
        for expect in [[0.0, 0.0], [30.0, 0.0], [0.0, 30.0]] {
            let target = Point::new(expect.to_vec());
            let d = centroids
                .iter()
                .map(|c| c.dist(&target))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 2.0, "no centroid near {expect:?} (closest at {d})");
        }
        assert!(stats.phase1_time >= stats.phase2_time || stats.total_time() > Duration::ZERO);
    }

    #[test]
    fn birch_plus_matches_full_rerun() {
        let pts = blob_points(2, 150);
        let (b1, b2) = pts.split_at(200);
        let block1 = PointBlock::new(BlockId(1), b1.to_vec());
        let block2 = PointBlock::new(BlockId(2), b2.to_vec());

        let mut plus = BirchPlus::new(params());
        plus.absorb_block(&block1);
        plus.absorb_block(&block2);
        let (inc_model, _) = plus.model();

        let (full_model, _) = Birch::new(params()).cluster_blocks(&[&block1, &block2]);

        assert_eq!(inc_model.n_points(), full_model.n_points());
        assert_eq!(inc_model.k(), full_model.k());
        // Centroids agree up to cluster permutation and jitter.
        for c in inc_model.centroids() {
            let d = full_model
                .centroids()
                .iter()
                .map(|f| f.dist(&c))
                .fold(f64::INFINITY, f64::min);
            assert!(d < 2.0, "incremental centroid {c:?} unmatched ({d})");
        }
    }

    #[test]
    fn assign_point_picks_nearest_cluster() {
        let pts = blob_points(3, 100);
        let (model, _) = Birch::new(params()).cluster_points(&pts);
        let near_origin = model.assign_point(&Point::new(vec![0.5, -0.5]));
        assert!(model.clusters[near_origin]
            .centroid()
            .dist(&Point::new(vec![0.0, 0.0])) < 2.0);
    }

    #[test]
    fn label_block_labels_every_point() {
        let pts = blob_points(4, 50);
        let (model, _) = Birch::new(params()).cluster_points(&pts);
        let block = PointBlock::new(BlockId(1), pts.clone());
        let labels = model.label_block(&block);
        assert_eq!(labels.len(), pts.len());
        assert!(labels.iter().all(|&l| l < model.k()));
    }

    #[test]
    fn birch_plus_serde_roundtrip() {
        let mut plus = BirchPlus::new(params());
        plus.absorb_points(&blob_points(5, 40));
        let json = serde_json::to_string(&plus).unwrap();
        let back: BirchPlus = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_points(), plus.n_points());
        let (m1, _) = plus.model();
        let (m2, _) = back.model();
        assert_eq!(m1.k(), m2.k());
        assert!((m1.sse() - m2.sse()).abs() < 1e-9);
    }

    #[test]
    fn empty_maintainer_yields_empty_model() {
        let plus = BirchPlus::new(params());
        let (model, _) = plus.model();
        assert_eq!(model.k(), 0);
        assert_eq!(model.n_points(), 0);
    }

    #[test]
    fn subcluster_assignment_covers_all_subclusters() {
        let pts = blob_points(6, 80);
        let (model, _) = Birch::new(params()).cluster_points(&pts);
        assert_eq!(model.assignment.len(), model.subclusters.len());
        assert!(model.assignment.iter().all(|&a| a < model.k()));
        // Sub-cluster masses sum to the cluster masses.
        let mut mass = vec![0u64; model.k()];
        for (cf, &a) in model.subclusters.iter().zip(&model.assignment) {
            mass[a] += cf.n();
        }
        for (m, c) in mass.iter().zip(&model.clusters) {
            assert_eq!(*m, c.n());
        }
    }
}
