//! BIRCH phase 2: global clustering of the sub-cluster summaries.
//!
//! Phase 1 reduces the dataset to a small in-memory set of cluster
//! features; phase 2 merges them into the user-specified `K` clusters with
//! a traditional algorithm. We provide **weighted k-means** (k-means++
//! seeding, each CF weighted by its mass) — the paper's "one's own
//! favorite clustering algorithm, e.g., K-Means" — and a centroid-linkage
//! **agglomerative** alternative used as a cross-check in tests.

use crate::cf::ClusterFeature;
use demon_types::parallel::{self, par_map};
use demon_types::{obs, Point};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Result of a global clustering pass: for each input feature, the index
/// of the cluster it was assigned to, plus the merged per-cluster features.
#[derive(Clone, Debug)]
pub struct GlobalClustering {
    /// `assignment[i]` = cluster index of input feature `i`.
    pub assignment: Vec<usize>,
    /// Merged feature of each cluster (empty clusters are dropped, so this
    /// may be shorter than the requested `k`).
    pub clusters: Vec<ClusterFeature>,
}

impl GlobalClustering {
    /// Total within-cluster scatter (SSE) of the clustering, computed from
    /// the summaries: `Σ_c N_c·R²_c`.
    pub fn sse(&self) -> f64 {
        self.clusters.iter().map(ClusterFeature::scatter).sum()
    }

    /// Cluster centroids.
    pub fn centroids(&self) -> Vec<Point> {
        self.clusters.iter().map(ClusterFeature::centroid).collect()
    }
}

/// Weighted k-means with restarts: runs [`kmeans_once`] from a few
/// distinct seedings and keeps the clustering with the lowest SSE —
/// cheap insurance against a bad k-means++ draw, since phase 2 operates
/// on the small in-memory feature set.
pub fn kmeans(
    features: &[ClusterFeature],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> GlobalClustering {
    const RESTARTS: u64 = 4;
    let mut best: Option<GlobalClustering> = None;
    for r in 0..RESTARTS {
        let candidate = kmeans_once(features, k, seed.wrapping_add(r.wrapping_mul(0x9E37)), max_iters);
        let better = match &best {
            None => true,
            Some(b) => candidate.sse() < b.sse(),
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("at least one restart ran")
}

/// One weighted k-means run over cluster features: centroids move to the
/// weighted mean of their assigned features; features are atomic (their
/// member points never separate — the tennis-ball analogy of the paper).
///
/// Deterministic in `seed`. Runs at most `max_iters` Lloyd iterations,
/// stopping early when no assignment changes.
pub fn kmeans_once(
    features: &[ClusterFeature],
    k: usize,
    seed: u64,
    max_iters: usize,
) -> GlobalClustering {
    assert!(k > 0, "k must be positive");
    let nonempty: Vec<usize> = (0..features.len())
        .filter(|&i| !features[i].is_empty())
        .collect();
    if nonempty.is_empty() {
        return GlobalClustering {
            assignment: vec![0; features.len()],
            clusters: Vec::new(),
        };
    }
    let k = k.min(nonempty.len());
    let dim = features[nonempty[0]].dim();
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ seeding over the feature centroids (weighted by mass).
    let centroids0 = seed_plus_plus(features, &nonempty, k, &mut rng);
    let mut centroids = centroids0;
    let mut assignment = vec![0usize; features.len()];

    let par = parallel::global();
    for _ in 0..max_iters {
        obs::incr(obs::Counter::Phase2Iterations);
        // Assignment scan — the hot part of phase 2. Each feature's
        // argmin is independent, so the scan shards across threads; the
        // per-feature argmin itself is a fixed-order `total_cmp` fold, so
        // the result is bit-identical at any thread count.
        let best_of = par_map(par, &nonempty, |&i| {
            let c = features[i].centroid();
            centroids
                .iter()
                .enumerate()
                .map(|(j, cen)| (j, cen.dist2(&c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(j, _)| j)
                .expect("k >= 1")
        });
        let mut changed = false;
        for (&i, &best) in nonempty.iter().zip(&best_of) {
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // The centroid recompute below stays sequential on purpose:
        // float accumulation order must not depend on the thread count.
        // Recompute weighted centroids.
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut weights = vec![0.0f64; centroids.len()];
        for &i in &nonempty {
            let j = assignment[i];
            let w = features[i].n() as f64;
            for (s, l) in sums[j].iter_mut().zip(features[i].linear_sum()) {
                *s += l; // linear sum already carries the mass
            }
            weights[j] += w;
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if weights[j] > 0.0 {
                *c = Point::new(sums[j].iter().map(|s| s / weights[j]).collect());
            }
        }
        if !changed {
            break;
        }
    }

    finalize(features, &nonempty, assignment, centroids.len(), dim)
}

fn seed_plus_plus(
    features: &[ClusterFeature],
    nonempty: &[usize],
    k: usize,
    rng: &mut StdRng,
) -> Vec<Point> {
    let mut centroids: Vec<Point> = Vec::with_capacity(k);
    let first = nonempty[rng.gen_range(0..nonempty.len())];
    centroids.push(features[first].centroid());
    while centroids.len() < k {
        // Weighted by mass × squared distance to the closest centroid.
        let weights: Vec<f64> = nonempty
            .iter()
            .map(|&i| {
                let c = features[i].centroid();
                let d2 = centroids
                    .iter()
                    .map(|cen| cen.dist2(&c))
                    .fold(f64::INFINITY, f64::min);
                d2 * features[i].n() as f64
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let next = if total <= 0.0 {
            // All mass already covered: pick any remaining feature.
            nonempty[rng.gen_range(0..nonempty.len())]
        } else {
            let mut x = rng.gen_range(0.0..total);
            let mut chosen = nonempty[nonempty.len() - 1];
            for (&i, &w) in nonempty.iter().zip(&weights) {
                if x < w {
                    chosen = i;
                    break;
                }
                x -= w;
            }
            chosen
        };
        centroids.push(features[next].centroid());
    }
    centroids
}

/// Centroid-linkage agglomerative clustering: repeatedly merge the two
/// clusters with the closest centroids until `k` remain. O(m³) — only for
/// the small in-memory feature set.
pub fn agglomerative(features: &[ClusterFeature], k: usize) -> GlobalClustering {
    assert!(k > 0, "k must be positive");
    let nonempty: Vec<usize> = (0..features.len())
        .filter(|&i| !features[i].is_empty())
        .collect();
    if nonempty.is_empty() {
        return GlobalClustering {
            assignment: vec![0; features.len()],
            clusters: Vec::new(),
        };
    }
    let dim = features[nonempty[0]].dim();
    // Each group: (merged CF, member input indices).
    let mut groups: Vec<(ClusterFeature, Vec<usize>)> = nonempty
        .iter()
        .map(|&i| (features[i].clone(), vec![i]))
        .collect();
    while groups.len() > k {
        let (mut bi, mut bj, mut best) = (0, 1, f64::INFINITY);
        for i in 0..groups.len() {
            for j in i + 1..groups.len() {
                let d = groups[i].0.centroid_dist2(&groups[j].0);
                if d < best {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        let (cf_j, members_j) = groups.swap_remove(bj);
        groups[bi].0.merge(&cf_j);
        groups[bi].1.extend(members_j);
    }
    let mut assignment = vec![0usize; features.len()];
    for (gi, (_, members)) in groups.iter().enumerate() {
        for &m in members {
            assignment[m] = gi;
        }
    }
    let order: Vec<usize> = nonempty;
    finalize(
        features,
        &order,
        assignment,
        groups.len(),
        dim,
    )
}

/// Drops empty clusters and renumbers assignments compactly.
fn finalize(
    features: &[ClusterFeature],
    nonempty: &[usize],
    assignment: Vec<usize>,
    n_clusters: usize,
    dim: usize,
) -> GlobalClustering {
    let mut merged: Vec<ClusterFeature> = vec![ClusterFeature::empty(dim); n_clusters];
    for &i in nonempty {
        merged[assignment[i]].merge(&features[i]);
    }
    let mut remap = vec![usize::MAX; n_clusters];
    let mut clusters = Vec::new();
    for (j, cf) in merged.into_iter().enumerate() {
        if !cf.is_empty() {
            remap[j] = clusters.len();
            clusters.push(cf);
        }
    }
    let assignment = assignment
        .into_iter()
        .map(|j| if remap[j] == usize::MAX { 0 } else { remap[j] })
        .collect();
    GlobalClustering {
        assignment,
        clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cf_at(coords: &[f64], n: u64) -> ClusterFeature {
        let mut cf = ClusterFeature::from_point(&Point::new(coords.to_vec()));
        for _ in 1..n {
            cf.add_point(&Point::new(coords.to_vec()));
        }
        cf
    }

    fn three_blobs() -> Vec<ClusterFeature> {
        vec![
            cf_at(&[0.0, 0.0], 10),
            cf_at(&[0.5, 0.1], 8),
            cf_at(&[10.0, 10.0], 12),
            cf_at(&[10.2, 9.8], 5),
            cf_at(&[-10.0, 10.0], 9),
            cf_at(&[-9.8, 10.3], 7),
        ]
    }

    #[test]
    fn kmeans_separates_obvious_blobs() {
        let feats = three_blobs();
        let r = kmeans(&feats, 3, 7, 50);
        assert_eq!(r.clusters.len(), 3);
        // Paired features land in the same cluster.
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[2], r.assignment[3]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        // And the three pairs are distinct clusters.
        assert_ne!(r.assignment[0], r.assignment[2]);
        assert_ne!(r.assignment[0], r.assignment[4]);
        // Total mass conserved.
        let mass: u64 = r.clusters.iter().map(|c| c.n()).sum();
        assert_eq!(mass, 51);
    }

    #[test]
    fn agglomerative_agrees_on_obvious_blobs() {
        let feats = three_blobs();
        let r = agglomerative(&feats, 3);
        assert_eq!(r.clusters.len(), 3);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[2], r.assignment[3]);
        assert_eq!(r.assignment[4], r.assignment[5]);
    }

    #[test]
    fn kmeans_deterministic_in_seed() {
        let feats = three_blobs();
        let a = kmeans(&feats, 3, 42, 50);
        let b = kmeans(&feats, 3, 42, 50);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn k_larger_than_features_is_clamped() {
        let feats = vec![cf_at(&[0.0], 3), cf_at(&[5.0], 3)];
        let r = kmeans(&feats, 10, 1, 20);
        assert!(r.clusters.len() <= 2);
        let r2 = agglomerative(&feats, 10);
        assert_eq!(r2.clusters.len(), 2);
    }

    #[test]
    fn empty_input_yields_empty_clustering() {
        let r = kmeans(&[], 3, 0, 10);
        assert!(r.clusters.is_empty());
        assert!(r.assignment.is_empty());
        let r2 = agglomerative(&[], 3);
        assert!(r2.clusters.is_empty());
    }

    #[test]
    fn empty_features_are_ignored() {
        let feats = vec![ClusterFeature::empty(1), cf_at(&[1.0], 4)];
        let r = kmeans(&feats, 1, 0, 10);
        assert_eq!(r.clusters.len(), 1);
        assert_eq!(r.clusters[0].n(), 4);
    }

    #[test]
    fn sse_decreases_with_more_clusters() {
        let feats = three_blobs();
        let r1 = kmeans(&feats, 1, 3, 50);
        let r3 = kmeans(&feats, 3, 3, 50);
        assert!(r3.sse() < r1.sse());
    }

    #[test]
    fn centroids_match_cluster_features() {
        let feats = three_blobs();
        let r = kmeans(&feats, 3, 9, 50);
        for (cen, cf) in r.centroids().iter().zip(&r.clusters) {
            assert!(cen.dist2(&cf.centroid()) < 1e-18);
        }
    }
}
