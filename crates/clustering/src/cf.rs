//! Cluster features: the `(N, LS, SS)` summaries at the heart of BIRCH.
//!
//! A cluster feature summarizes a set of points by its cardinality `N`,
//! its component-wise linear sum `LS`, and its scalar square sum
//! `SS = Σᵢ ‖xᵢ‖²`. The **additivity theorem** (`CF₁ + CF₂` summarizes the
//! union) is what makes sub-clusters incrementally maintainable — and is
//! exactly why BIRCH+ can suspend and resume phase 1 across blocks.

use demon_types::Point;
use serde::{Deserialize, Serialize};

/// A cluster feature `(N, LS, SS)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterFeature {
    n: u64,
    ls: Vec<f64>,
    ss: f64,
}

impl ClusterFeature {
    /// The empty feature in `dim` dimensions.
    pub fn empty(dim: usize) -> Self {
        ClusterFeature {
            n: 0,
            ls: vec![0.0; dim],
            ss: 0.0,
        }
    }

    /// The feature of a single point.
    pub fn from_point(p: &Point) -> Self {
        ClusterFeature {
            n: 1,
            ls: p.coords().to_vec(),
            ss: p.norm2(),
        }
    }

    /// Number of points summarized.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Whether the feature summarizes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.ls.len()
    }

    /// The linear sum.
    #[inline]
    pub fn linear_sum(&self) -> &[f64] {
        &self.ls
    }

    /// The square sum `Σ ‖xᵢ‖²`.
    #[inline]
    pub fn square_sum(&self) -> f64 {
        self.ss
    }

    /// Absorbs a point (CF additivity with a singleton).
    pub fn add_point(&mut self, p: &Point) {
        debug_assert_eq!(self.dim(), p.dim());
        self.n += 1;
        for (l, c) in self.ls.iter_mut().zip(p.coords()) {
            *l += c;
        }
        self.ss += p.norm2();
    }

    /// Merges another feature (the additivity theorem).
    pub fn merge(&mut self, other: &ClusterFeature) {
        debug_assert_eq!(self.dim(), other.dim());
        self.n += other.n;
        for (l, o) in self.ls.iter_mut().zip(&other.ls) {
            *l += o;
        }
        self.ss += other.ss;
    }

    /// The merged feature of two summaries, non-destructively.
    pub fn merged(&self, other: &ClusterFeature) -> ClusterFeature {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// The centroid `LS / N`. Panics on the empty feature.
    pub fn centroid(&self) -> Point {
        assert!(self.n > 0, "centroid of empty cluster feature");
        Point::new(self.ls.iter().map(|l| l / self.n as f64).collect())
    }

    /// Squared Euclidean distance between the centroids of two features
    /// (BIRCH's D0 metric, squared).
    pub fn centroid_dist2(&self, other: &ClusterFeature) -> f64 {
        debug_assert!(self.n > 0 && other.n > 0);
        let (na, nb) = (self.n as f64, other.n as f64);
        self.ls
            .iter()
            .zip(&other.ls)
            .map(|(a, b)| {
                let d = a / na - b / nb;
                d * d
            })
            .sum()
    }

    /// Squared distance from the centroid to a point.
    pub fn centroid_dist2_to_point(&self, p: &Point) -> f64 {
        debug_assert!(self.n > 0);
        let n = self.n as f64;
        self.ls
            .iter()
            .zip(p.coords())
            .map(|(l, c)| {
                let d = l / n - c;
                d * d
            })
            .sum()
    }

    /// The average distance of member points from the centroid, squared:
    /// `R² = SS/N − ‖LS/N‖²` (BIRCH's radius).
    pub fn radius2(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let centroid_norm2: f64 = self.ls.iter().map(|l| (l / n) * (l / n)).sum();
        (self.ss / n - centroid_norm2).max(0.0)
    }

    /// The average pairwise distance between member points, squared:
    /// `D² = (2·N·SS − 2·‖LS‖²) / (N·(N−1))` (BIRCH's diameter).
    pub fn diameter2(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let ls_norm2: f64 = self.ls.iter().map(|l| l * l).sum();
        ((2.0 * n * self.ss - 2.0 * ls_norm2) / (n * (n - 1.0))).max(0.0)
    }

    /// The diameter² the union of the two features would have — the
    /// absorption test of the CF-tree insertion (merge iff the merged
    /// diameter stays within the threshold).
    pub fn merged_diameter2(&self, other: &ClusterFeature) -> f64 {
        let n = (self.n + other.n) as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let ss = self.ss + other.ss;
        let ls_norm2: f64 = self
            .ls
            .iter()
            .zip(&other.ls)
            .map(|(a, b)| (a + b) * (a + b))
            .sum();
        ((2.0 * n * ss - 2.0 * ls_norm2) / (n * (n - 1.0))).max(0.0)
    }

    /// Sum of squared distances of members to the centroid — `N·R²`, the
    /// within-cluster scatter used for SSE quality metrics.
    pub fn scatter(&self) -> f64 {
        self.n as f64 * self.radius2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(c: &[f64]) -> Point {
        Point::new(c.to_vec())
    }

    #[test]
    fn from_point_and_centroid() {
        let cf = ClusterFeature::from_point(&p(&[1.0, 2.0]));
        assert_eq!(cf.n(), 1);
        assert_eq!(cf.centroid().coords(), &[1.0, 2.0]);
        assert_eq!(cf.square_sum(), 5.0);
        assert_eq!(cf.radius2(), 0.0);
        assert_eq!(cf.diameter2(), 0.0);
    }

    #[test]
    fn additivity_theorem() {
        let pts = [p(&[0.0, 0.0]), p(&[2.0, 0.0]), p(&[1.0, 3.0])];
        let mut whole = ClusterFeature::empty(2);
        for x in &pts {
            whole.add_point(x);
        }
        let mut a = ClusterFeature::from_point(&pts[0]);
        a.add_point(&pts[1]);
        let b = ClusterFeature::from_point(&pts[2]);
        assert_eq!(a.merged(&b), whole);
    }

    #[test]
    fn centroid_of_merged_points() {
        let mut cf = ClusterFeature::from_point(&p(&[0.0, 0.0]));
        cf.add_point(&p(&[2.0, 4.0]));
        assert_eq!(cf.centroid().coords(), &[1.0, 2.0]);
    }

    #[test]
    fn radius_matches_hand_computation() {
        // Points 0 and 2 on a line: centroid 1, radius² = 1.
        let mut cf = ClusterFeature::from_point(&p(&[0.0]));
        cf.add_point(&p(&[2.0]));
        assert!((cf.radius2() - 1.0).abs() < 1e-12);
        // Diameter² = average pairwise squared distance = 4.
        assert!((cf.diameter2() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn merged_diameter_equals_diameter_of_merge() {
        let mut a = ClusterFeature::from_point(&p(&[0.0, 1.0]));
        a.add_point(&p(&[1.0, 0.0]));
        let mut b = ClusterFeature::from_point(&p(&[4.0, 4.0]));
        b.add_point(&p(&[5.0, 5.0]));
        let direct = a.merged(&b).diameter2();
        assert!((a.merged_diameter2(&b) - direct).abs() < 1e-9);
    }

    #[test]
    fn centroid_distance_metrics() {
        let a = ClusterFeature::from_point(&p(&[0.0, 0.0]));
        let b = ClusterFeature::from_point(&p(&[3.0, 4.0]));
        assert!((a.centroid_dist2(&b) - 25.0).abs() < 1e-12);
        assert!((a.centroid_dist2_to_point(&p(&[3.0, 4.0])) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn scatter_is_n_times_radius2() {
        let mut cf = ClusterFeature::from_point(&p(&[0.0]));
        cf.add_point(&p(&[2.0]));
        cf.add_point(&p(&[4.0]));
        assert!((cf.scatter() - 3.0 * cf.radius2()).abs() < 1e-12);
        // Scatter = Σ (x - mean)² = (4 + 0 + 4) = 8.
        assert!((cf.scatter() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn numerical_floor_prevents_negative_variance() {
        // Degenerate identical points can go slightly negative in floating
        // point; the accessors clamp at zero.
        let mut cf = ClusterFeature::empty(1);
        for _ in 0..1000 {
            cf.add_point(&p(&[0.1000000000000001]));
        }
        assert!(cf.radius2() >= 0.0);
        assert!(cf.diameter2() >= 0.0);
    }
}
