//! Storage-engine adapter: lets point blocks live in a memory-bounded
//! [`demon_store::BlockStore`], spilling to disk in the framed
//! [`demon_types::durable`] format when a `--memory-budget` is set.

use demon_store::Spillable;
use demon_types::durable::FrameClass;
use demon_types::{Block, BlockInterval, DemonError, Point, PointBlock, Result, Timestamp};

/// A [`PointBlock`] wrapped for the block storage engine (a newtype is
/// needed because both [`Spillable`] and [`PointBlock`] are foreign to
/// the maintainers that store them).
#[derive(Clone, Debug)]
pub struct PointBlockEntry(pub PointBlock);

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| DemonError::Serde(format!("truncated u64 at offset {pos}")))?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(raw))
}

/// Shared header layout for spilled blocks: id, optional interval, then
/// a caller-specific record section.
pub(crate) fn encode_header<T>(block: &Block<T>) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, block.id().value());
    match block.interval() {
        None => buf.push(0),
        Some(iv) => {
            buf.push(1);
            put_u64(&mut buf, iv.start.secs());
            put_u64(&mut buf, iv.end.secs());
        }
    }
    buf
}

pub(crate) fn decode_header(
    bytes: &[u8],
    pos: &mut usize,
) -> Result<(demon_types::BlockId, Option<BlockInterval>)> {
    let id = demon_types::BlockId(read_u64(bytes, pos)?);
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| DemonError::Serde("truncated interval tag".into()))?;
    *pos += 1;
    let interval = match tag {
        0 => None,
        1 => {
            let start = read_u64(bytes, pos)?;
            let end = read_u64(bytes, pos)?;
            Some(BlockInterval::new(Timestamp(start), Timestamp(end)))
        }
        other => return Err(DemonError::Serde(format!("invalid interval tag {other}"))),
    };
    Ok((id, interval))
}

impl Spillable for PointBlockEntry {
    fn frame_class() -> FrameClass {
        FrameClass::POINTS
    }

    fn encode(&self) -> Result<Vec<u8>> {
        let block = &self.0;
        let mut buf = encode_header(block);
        let dim = block.records().first().map_or(0, |p| p.coords().len());
        put_u64(&mut buf, dim as u64);
        put_u64(&mut buf, block.len() as u64);
        for p in block.records() {
            if p.coords().len() != dim {
                return Err(DemonError::Serde(format!(
                    "block {}: mixed point dimensions {} and {dim}",
                    block.id(),
                    p.coords().len()
                )));
            }
            for &c in p.coords() {
                put_u64(&mut buf, c.to_bits());
            }
        }
        Ok(buf)
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let (id, interval) = decode_header(bytes, &mut pos)?;
        let dim = usize::try_from(read_u64(bytes, &mut pos)?)
            .map_err(|_| DemonError::Serde("point dimension overflows usize".into()))?;
        let count = read_u64(bytes, &mut pos)?;
        let need = count.checked_mul(dim as u64).and_then(|w| w.checked_mul(8));
        if need != Some((bytes.len() - pos) as u64) {
            return Err(DemonError::Serde(format!(
                "point payload size mismatch: {count} records of dim {dim}"
            )));
        }
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut coords = Vec::with_capacity(dim);
            for _ in 0..dim {
                coords.push(f64::from_bits(read_u64(bytes, &mut pos)?));
            }
            records.push(Point::new(coords));
        }
        let block = match interval {
            Some(iv) => Block::with_interval(id, iv, records),
            None => Block::new(id, records),
        };
        Ok(PointBlockEntry(block))
    }

    fn resident_bytes(&self) -> u64 {
        // Deterministic content-based footprint: per-record header plus
        // the coordinate payload.
        let dim = self.0.records().first().map_or(0, |p| p.coords().len());
        64 + self.0.len() as u64 * (32 + 8 * dim as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::BlockId;

    #[test]
    fn point_block_roundtrips() {
        let block = Block::with_interval(
            BlockId(3),
            BlockInterval::new(Timestamp(10), Timestamp(20)),
            vec![
                Point::new(vec![1.5, -2.25]),
                Point::new(vec![f64::MIN_POSITIVE, 1e300]),
            ],
        );
        let entry = PointBlockEntry(block);
        let back = PointBlockEntry::decode(&entry.encode().unwrap()).unwrap();
        assert_eq!(back.0.id(), entry.0.id());
        assert_eq!(back.0.interval(), entry.0.interval());
        assert_eq!(back.0.records(), entry.0.records());
        assert_eq!(back.resident_bytes(), entry.resident_bytes());
    }

    #[test]
    fn empty_block_roundtrips() {
        let entry = PointBlockEntry(Block::new(BlockId(1), Vec::new()));
        let back = PointBlockEntry::decode(&entry.encode().unwrap()).unwrap();
        assert!(back.0.records().is_empty());
        assert_eq!(back.0.interval(), None);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let entry = PointBlockEntry(Block::new(
            BlockId(1),
            vec![Point::new(vec![1.0]), Point::new(vec![2.0])],
        ));
        let bytes = entry.encode().unwrap();
        assert!(PointBlockEntry::decode(&bytes[..bytes.len() - 4]).is_err());
    }
}
