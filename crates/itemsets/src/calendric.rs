//! Calendric association rules (Ramaswamy, Mahajan, Silberschatz;
//! VLDB '98) — the related-work comparator of paper §6.
//!
//! A *calendar* is a sequence of time units (here: block ids). A rule
//! **belongs to** a calendar when it meets the minimum support and
//! minimum confidence **on every unit of the calendar separately** —
//! unlike DEMON, which maintains "a single combined model over the set of
//! selected time units" (§6). The two semantics genuinely differ: a rule
//! can hold on the union of blocks while failing on one of them, and a
//! rule can hold on every small block while being diluted in the union
//! (the tests pin both directions down).
//!
//! Ramaswamy et al. also assume a *static* database; this implementation
//! recomputes per-block rule sets from per-block models, which BORDERS
//! keeps cheap when used block-by-block.

use crate::model::FrequentItemsets;
use crate::rules::{derive_rules, Rule};
use crate::store::TxStore;
use demon_types::{BlockId, DemonError, ItemSet, MinSupport, Result};

/// A named calendar: the block ids forming its time units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Calendar {
    /// Human-readable name ("Mondays", "first of month", …).
    pub name: String,
    /// The member blocks, ascending.
    pub blocks: Vec<BlockId>,
}

impl Calendar {
    /// Builds a calendar, sorting and de-duplicating the block list.
    pub fn new(name: impl Into<String>, mut blocks: Vec<BlockId>) -> Self {
        blocks.sort_unstable();
        blocks.dedup();
        Calendar {
            name: name.into(),
            blocks,
        }
    }
}

/// A rule together with its per-unit statistics across the calendar.
#[derive(Clone, Debug, PartialEq)]
pub struct CalendricRule {
    /// The rule, with statistics from the calendar's *first* unit (the
    /// per-unit minima are what qualify it).
    pub rule: Rule,
    /// The minimum support across units.
    pub min_support: f64,
    /// The minimum confidence across units.
    pub min_confidence: f64,
}

/// Finds all rules that belong to `calendar`: minimum support `minsup`
/// and confidence `minconf` on **each** member block.
pub fn calendric_rules(
    store: &TxStore,
    calendar: &Calendar,
    minsup: MinSupport,
    minconf: f64,
) -> Result<Vec<CalendricRule>> {
    if calendar.blocks.is_empty() {
        return Err(DemonError::InvalidParameter(
            "calendar has no time units".into(),
        ));
    }
    // Rules of the first unit are the candidates; every further unit
    // filters them (a rule must hold everywhere).
    let mut candidates: Vec<CalendricRule> = {
        let model = block_model(store, calendar.blocks[0], minsup)?;
        derive_rules(&model, minconf)
            .into_iter()
            .map(|rule| CalendricRule {
                min_support: rule.support,
                min_confidence: rule.confidence,
                rule,
            })
            .collect()
    };
    for &block in &calendar.blocks[1..] {
        if candidates.is_empty() {
            break;
        }
        let model = block_model(store, block, minsup)?;
        let n = model.n_transactions().max(1) as f64;
        candidates.retain_mut(|cand| {
            let z = cand.rule.antecedent.union(&cand.rule.consequent);
            let (Some(sz), Some(sa)) = (tracked(&model, &z), tracked(&model, &cand.rule.antecedent))
            else {
                return false; // not even frequent here
            };
            let support = sz as f64 / n;
            let confidence = if sa > 0 { sz as f64 / sa as f64 } else { 0.0 };
            if support < minsup.fraction() || confidence < minconf {
                return false;
            }
            cand.min_support = cand.min_support.min(support);
            cand.min_confidence = cand.min_confidence.min(confidence);
            true
        });
    }
    candidates.sort_by(|a, b| {
        b.min_confidence
            .total_cmp(&a.min_confidence)
            .then(a.rule.antecedent.cmp(&b.rule.antecedent))
            .then(a.rule.consequent.cmp(&b.rule.consequent))
    });
    Ok(candidates)
}

fn block_model(store: &TxStore, id: BlockId, minsup: MinSupport) -> Result<FrequentItemsets> {
    let block = store
        .try_block(id)?
        .ok_or(DemonError::UnknownBlock(id.value()))?;
    Ok(FrequentItemsets::mine_blocks(
        &[&block],
        store.n_items(),
        minsup,
    ))
}

/// Support of a set if the model tracks it (frequent sets only — a rule
/// whose parts are not frequent here cannot meet the per-unit support).
fn tracked(model: &FrequentItemsets, set: &ItemSet) -> Option<u64> {
    model.support(set).filter(|_| model.is_frequent(set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Item, Tid, Transaction, TxBlock};

    fn block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 1000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    fn k(v: f64) -> MinSupport {
        MinSupport::new(v).unwrap()
    }

    #[test]
    fn rule_holding_on_every_unit_is_found() {
        let mut store = TxStore::new(4);
        // 0 ⇒ 1 holds with conf 1.0 on both blocks.
        store.add_block(block(1, &[&[0, 1], &[0, 1], &[2]]));
        store.add_block(block(2, &[&[0, 1], &[0, 1], &[3]]));
        let cal = Calendar::new("both", vec![BlockId(1), BlockId(2)]);
        let rules = calendric_rules(&store, &cal, k(0.3), 0.9).unwrap();
        assert!(rules.iter().any(|r| {
            r.rule.antecedent == ItemSet::from_ids(&[0])
                && r.rule.consequent == ItemSet::from_ids(&[1])
        }));
        let r = rules
            .iter()
            .find(|r| r.rule.antecedent == ItemSet::from_ids(&[0]))
            .unwrap();
        assert!((r.min_confidence - 1.0).abs() < 1e-12);
        assert!((r.min_support - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rule_failing_on_one_unit_is_rejected() {
        let mut store = TxStore::new(4);
        store.add_block(block(1, &[&[0, 1], &[0, 1], &[2]]));
        store.add_block(block(2, &[&[0], &[0], &[2]])); // 0⇒1 fails here
        let cal = Calendar::new("both", vec![BlockId(1), BlockId(2)]);
        let rules = calendric_rules(&store, &cal, k(0.3), 0.9).unwrap();
        assert!(!rules
            .iter()
            .any(|r| r.rule.antecedent == ItemSet::from_ids(&[0])));
        // But on the single-unit calendar it belongs.
        let solo = Calendar::new("first", vec![BlockId(1)]);
        let rules = calendric_rules(&store, &solo, k(0.3), 0.9).unwrap();
        assert!(rules
            .iter()
            .any(|r| r.rule.antecedent == ItemSet::from_ids(&[0])));
    }

    /// The semantic gap the paper's §6 points at: per-unit rules are not
    /// union rules and vice versa.
    #[test]
    fn calendric_and_combined_semantics_differ() {
        let mut store = TxStore::new(8);
        // Block 1 (small): 0⇒1 holds strongly.  Block 2 (large): 0 and 1
        // never co-occur. The union dilutes the rule away; the calendar
        // over block 1 alone keeps it — and DEMON's combined model over
        // {1,2} agrees with the union, not with the calendar.
        store.add_block(block(1, &[&[0, 1], &[0, 1], &[0, 1]]));
        let many: Vec<&[u32]> = (0..30).map(|i| if i % 2 == 0 { &[0u32][..] } else { &[1u32][..] }).collect();
        store.add_block(block(2, &many));

        let combined =
            FrequentItemsets::mine_from(&store, &[BlockId(1), BlockId(2)], k(0.2)).unwrap();
        let combined_rules = derive_rules(&combined, 0.8);
        assert!(
            !combined_rules
                .iter()
                .any(|r| r.antecedent == ItemSet::from_ids(&[0])
                    && r.consequent == ItemSet::from_ids(&[1])),
            "combined model dilutes 0⇒1"
        );

        let per_unit = calendric_rules(
            &store,
            &Calendar::new("unit1", vec![BlockId(1)]),
            k(0.2),
            0.8,
        )
        .unwrap();
        assert!(per_unit.iter().any(|r| {
            r.rule.antecedent == ItemSet::from_ids(&[0])
                && r.rule.consequent == ItemSet::from_ids(&[1])
        }));
    }

    #[test]
    fn empty_calendar_errors() {
        let store = TxStore::new(2);
        let cal = Calendar::new("empty", vec![]);
        assert!(calendric_rules(&store, &cal, k(0.5), 0.5).is_err());
    }

    #[test]
    fn unknown_block_errors() {
        let store = TxStore::new(2);
        let cal = Calendar::new("ghost", vec![BlockId(9)]);
        assert!(calendric_rules(&store, &cal, k(0.5), 0.5).is_err());
    }

    #[test]
    fn calendar_constructor_sorts_and_dedups() {
        let cal = Calendar::new("x", vec![BlockId(3), BlockId(1), BlockId(3)]);
        assert_eq!(cal.blocks, vec![BlockId(1), BlockId(3)]);
    }
}
