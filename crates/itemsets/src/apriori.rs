//! Level-wise frequent-itemset mining (Apriori, AMS+96) with negative
//! border computation.
//!
//! BORDERS maintains `L(D, κ)` *and* `NB⁻(D, κ)` — the infrequent itemsets
//! all of whose proper subsets are frequent. The level-wise candidate sets
//! of Apriori are exactly `L ∪ NB⁻` (candidates are generated with the
//! prefix join and pruned so all their maximal subsets are frequent), so a
//! single mining pass yields both with exact supports.

use crate::prefix_tree::PrefixTree;
use demon_types::{obs, Item, ItemSet, MinSupport, TxBlock};
use std::collections::HashSet;

/// Output of [`mine`]: the frequent itemsets, the negative border, and the
/// dataset size — everything the BORDERS model needs to start maintaining.
#[derive(Clone, Debug, Default)]
pub struct MineResult {
    /// Frequent itemsets with their absolute support counts.
    pub frequent: Vec<(ItemSet, u64)>,
    /// Negative-border itemsets with their absolute support counts.
    pub border: Vec<(ItemSet, u64)>,
    /// Total number of transactions mined.
    pub n: u64,
}

impl MineResult {
    /// Number of frequent itemsets.
    pub fn n_frequent(&self) -> usize {
        self.frequent.len()
    }

    /// Support count of an itemset if it is tracked (frequent or border).
    pub fn support(&self, itemset: &ItemSet) -> Option<u64> {
        self.frequent
            .iter()
            .chain(self.border.iter())
            .find(|(s, _)| s == itemset)
            .map(|&(_, c)| c)
    }
}

/// Mines `L(D, κ)` and `NB⁻(D, κ)` over the concatenation of `blocks`.
///
/// `n_items` fixes the item universe `I`; all singletons over `I` are
/// candidates at level 1, so infrequent (even absent) items enter the
/// negative border — required for BORDERS to detect items that only become
/// frequent in later blocks.
pub fn mine(blocks: &[&TxBlock], n_items: u32, minsup: MinSupport) -> MineResult {
    let n: u64 = blocks.iter().map(|b| b.len() as u64).sum();
    let thresh = minsup.count_for(n);

    let mut result = MineResult {
        frequent: Vec::new(),
        border: Vec::new(),
        n,
    };

    // Level 1: count every item with a dense array.
    let mut item_counts = vec![0u64; n_items as usize];
    for block in blocks {
        for tx in block.records() {
            for &item in tx.items() {
                item_counts[item.index()] += 1;
            }
        }
    }
    let mut current_level: Vec<(ItemSet, u64)> = Vec::new();
    for (i, &c) in item_counts.iter().enumerate() {
        let set = ItemSet::singleton(Item(i as u32));
        if c >= thresh {
            current_level.push((set, c));
        } else {
            result.border.push((set, c));
        }
    }

    // Levels k ≥ 2.
    while !current_level.is_empty() {
        let frequent_here: HashSet<ItemSet> =
            current_level.iter().map(|(s, _)| s.clone()).collect();
        let candidates = generate_candidates(
            &current_level.iter().map(|(s, _)| s.clone()).collect::<Vec<_>>(),
            &frequent_here,
        );
        result.frequent.append(&mut current_level);
        if candidates.is_empty() {
            break;
        }
        let counts = count_with_prefix_tree(&candidates, blocks);
        for (cand, count) in candidates.into_iter().zip(counts) {
            if count >= thresh {
                current_level.push((cand, count));
            } else {
                result.border.push((cand, count));
            }
        }
    }
    result.frequent.append(&mut current_level);
    result
}

/// Generates level-(k+1) candidates from the level-k frequent itemsets via
/// the prefix join, pruning candidates with an infrequent k-subset.
///
/// `level` must contain k-itemsets sorted or not — the function sorts
/// internally so joins only consider prefix-sharing runs.
pub fn generate_candidates(level: &[ItemSet], frequent_k: &HashSet<ItemSet>) -> Vec<ItemSet> {
    let mut sorted: Vec<&ItemSet> = level.iter().collect();
    sorted.sort();
    let mut out = Vec::new();
    let mut run_start = 0;
    for i in 0..=sorted.len() {
        let run_ends = i == sorted.len()
            || !shares_prefix(sorted[run_start].items(), sorted[i].items());
        if run_ends {
            for a in run_start..i {
                for b in a + 1..i {
                    if let Some(cand) = sorted[a].prefix_join(sorted[b]) {
                        if cand
                            .proper_maximal_subsets()
                            .all(|s| frequent_k.contains(&s))
                        {
                            out.push(cand);
                        }
                    }
                }
            }
            run_start = i;
        }
    }
    out
}

fn shares_prefix(a: &[Item], b: &[Item]) -> bool {
    a.len() == b.len() && !a.is_empty() && a[..a.len() - 1] == b[..b.len() - 1]
}

/// Counts candidate supports by one PT-Scan over the blocks.
pub fn count_with_prefix_tree(candidates: &[ItemSet], blocks: &[&TxBlock]) -> Vec<u64> {
    obs::add(obs::Counter::CandidatesProbed, candidates.len() as u64);
    let mut tree = PrefixTree::build(candidates);
    for block in blocks {
        obs::add(obs::Counter::TxScanned, block.len() as u64);
        tree.count_block(block);
    }
    tree.into_counts()
}

/// Naive support counting by full scan — the test oracle.
pub fn naive_support(itemset: &ItemSet, blocks: &[&TxBlock]) -> u64 {
    blocks
        .iter()
        .flat_map(|b| b.records())
        .filter(|tx| tx.contains_all(itemset.items()))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{BlockId, Tid, Transaction};

    fn block(id: u64, txs: &[&[u32]]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .enumerate()
                .map(|(i, items)| {
                    Transaction::new(
                        Tid(id * 1000 + i as u64),
                        items.iter().copied().map(Item).collect(),
                    )
                })
                .collect(),
        )
    }

    /// The classic 4-transaction example.
    fn sample() -> TxBlock {
        block(
            1,
            &[
                &[0, 1, 2],
                &[0, 1],
                &[0, 2],
                &[1, 2],
                &[0, 1, 2, 3],
            ],
        )
    }

    #[test]
    fn mines_frequent_sets_with_supports() {
        let b = sample();
        // κ = 0.55 → threshold = ⌈2.75⌉ = 3 of 5 transactions.
        let r = mine(&[&b], 4, MinSupport::new(0.55).unwrap());
        let mut freq: Vec<(String, u64)> = r
            .frequent
            .iter()
            .map(|(s, c)| (s.to_string(), *c))
            .collect();
        freq.sort();
        assert_eq!(
            freq,
            vec![
                ("{i0 i1}".into(), 3),
                ("{i0 i2}".into(), 3),
                ("{i0}".into(), 4),
                ("{i1 i2}".into(), 3),
                ("{i1}".into(), 4),
                ("{i2}".into(), 4),
            ]
        );
        assert_eq!(r.n, 5);
    }

    #[test]
    fn border_contains_failed_candidates_and_infrequent_singletons() {
        let b = sample();
        let r = mine(&[&b], 4, MinSupport::new(0.55).unwrap());
        let mut border: Vec<(String, u64)> =
            r.border.iter().map(|(s, c)| (s.to_string(), *c)).collect();
        border.sort();
        // i3 is infrequent (support 1); {0,1,2} fails at level 3 (support 2).
        assert_eq!(
            border,
            vec![("{i0 i1 i2}".into(), 2), ("{i3}".into(), 1)]
        );
    }

    #[test]
    fn border_definition_holds() {
        // NB⁻ = infrequent sets whose proper subsets are all frequent.
        let b = sample();
        let r = mine(&[&b], 4, MinSupport::new(0.55).unwrap());
        let freq: HashSet<ItemSet> = r.frequent.iter().map(|(s, _)| s.clone()).collect();
        let thresh = MinSupport::new(0.55).unwrap().count_for(r.n);
        for (s, c) in &r.border {
            assert!(*c < thresh, "{s} in border but frequent");
            for sub in s.proper_maximal_subsets() {
                assert!(
                    sub.is_empty() || freq.contains(&sub),
                    "border member {s} has infrequent subset {sub}"
                );
            }
        }
    }

    #[test]
    fn unseen_items_enter_border_with_zero_count() {
        let b = block(1, &[&[0], &[0]]);
        let r = mine(&[&b], 3, MinSupport::new(0.5).unwrap());
        assert_eq!(r.support(&ItemSet::from_ids(&[1])), Some(0));
        assert_eq!(r.support(&ItemSet::from_ids(&[2])), Some(0));
        assert_eq!(r.support(&ItemSet::from_ids(&[0])), Some(2));
    }

    #[test]
    fn mining_across_blocks_equals_concatenation() {
        let b1 = block(1, &[&[0, 1], &[0, 2]]);
        let b2 = block(2, &[&[0, 1], &[1, 2]]);
        let merged = block(3, &[&[0, 1], &[0, 2], &[0, 1], &[1, 2]]);
        let k = MinSupport::new(0.4).unwrap();
        let split = mine(&[&b1, &b2], 3, k);
        let mono = mine(&[&merged], 3, k);
        let norm = |r: &MineResult| {
            let mut f: Vec<(String, u64)> = r
                .frequent
                .iter()
                .map(|(s, c)| (s.to_string(), *c))
                .collect();
            f.sort();
            f
        };
        assert_eq!(norm(&split), norm(&mono));
    }

    #[test]
    fn empty_dataset_yields_empty_model() {
        let r = mine(&[], 3, MinSupport::new(0.5).unwrap());
        assert!(r.frequent.is_empty());
        assert_eq!(r.border.len(), 3); // all singletons with count 0
        assert_eq!(r.n, 0);
    }

    #[test]
    fn supports_match_naive_oracle_on_random_data() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(5);
        let txs: Vec<&[u32]> = vec![];
        drop(txs);
        let raw: Vec<Vec<u32>> = (0..200)
            .map(|_| {
                let k = rng.gen_range(1..=6usize);
                (0..k).map(|_| rng.gen_range(0..12u32)).collect()
            })
            .collect();
        let slices: Vec<&[u32]> = raw.iter().map(|v| v.as_slice()).collect();
        let b = block(1, &slices);
        let r = mine(&[&b], 12, MinSupport::new(0.05).unwrap());
        for (s, c) in r.frequent.iter().chain(r.border.iter()) {
            assert_eq!(*c, naive_support(s, &[&b]), "support mismatch for {s}");
        }
    }

    #[test]
    fn generate_candidates_prunes_on_infrequent_subsets() {
        let l2: Vec<ItemSet> = vec![
            ItemSet::from_ids(&[0, 1]),
            ItemSet::from_ids(&[0, 2]),
            ItemSet::from_ids(&[1, 3]),
        ];
        let freq: HashSet<ItemSet> = l2.iter().cloned().collect();
        // {0,1}⋈{0,2} = {0,1,2} but {1,2} is not frequent → pruned.
        let cands = generate_candidates(&l2, &freq);
        assert!(cands.is_empty());

        let l2b: Vec<ItemSet> = vec![
            ItemSet::from_ids(&[0, 1]),
            ItemSet::from_ids(&[0, 2]),
            ItemSet::from_ids(&[1, 2]),
        ];
        let freqb: HashSet<ItemSet> = l2b.iter().cloned().collect();
        let cands = generate_candidates(&l2b, &freqb);
        assert_eq!(cands, vec![ItemSet::from_ids(&[0, 1, 2])]);
    }
}
