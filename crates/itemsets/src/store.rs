//! [`TxStore`]: the evolving transactional database.
//!
//! The store keeps both representations the paper discusses: the raw
//! transactional blocks (scanned by PT-Scan) and the per-block TID-lists
//! (read selectively by ECUT/ECUT+). In the paper the TID-lists *replace*
//! the transactional format; we keep both because the experiments compare
//! counting procedures head-to-head on the same data.

use crate::tidlist::{intersect_pair, TidListStore};
use demon_types::{BlockId, Item, TxBlock};
use std::collections::BTreeMap;

/// Result of an ECUT+ pair-materialization pass over one block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Number of 2-itemsets whose lists were written.
    pub pairs_materialized: usize,
    /// Number of 2-itemsets skipped because the budget ran out.
    pub pairs_skipped: usize,
    /// TIDs written for pair lists (the *extra* space of Figure 3).
    pub pair_space: u64,
}

/// The evolving database: raw blocks plus their TID-lists.
#[derive(Debug, Default)]
pub struct TxStore {
    blocks: BTreeMap<BlockId, TxBlock>,
    tidlists: TidListStore,
    n_items: u32,
}

impl TxStore {
    /// An empty store over an item universe of size `n_items`.
    pub fn new(n_items: u32) -> Self {
        TxStore {
            blocks: BTreeMap::new(),
            tidlists: TidListStore::new(n_items),
            n_items,
        }
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Adds a block: stores the raw transactions and materializes the
    /// per-item TID-lists in one scan.
    pub fn add_block(&mut self, block: TxBlock) {
        self.tidlists.add_block(&block);
        self.blocks.insert(block.id(), block);
    }

    /// Retires a block entirely (raw data and TID-lists).
    pub fn remove_block(&mut self, id: BlockId) -> bool {
        self.tidlists.remove_block(id);
        self.blocks.remove(&id).is_some()
    }

    /// The raw block, if present.
    pub fn block(&self, id: BlockId) -> Option<&TxBlock> {
        self.blocks.get(&id)
    }

    /// All stored block ids, ascending.
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.blocks.keys().copied().collect()
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total transactions across the given blocks.
    pub fn n_transactions(&self, ids: &[BlockId]) -> u64 {
        ids.iter()
            .filter_map(|id| self.blocks.get(id))
            .map(|b| b.len() as u64)
            .sum()
    }

    /// The TID-list store.
    pub fn tidlists(&self) -> &TidListStore {
        &self.tidlists
    }

    /// Mutable per-block list access for the persistence layer (pair
    /// lists are re-applied after reload).
    pub(crate) fn tidlists_mut_for_persist(
        &mut self,
        id: BlockId,
    ) -> Option<&mut crate::tidlist::BlockTidLists> {
        self.tidlists.block_mut(id)
    }

    /// Space (in TIDs) of the per-item lists of the given blocks — equal to
    /// the transactional size of those blocks.
    pub fn item_space(&self, ids: &[BlockId]) -> u64 {
        ids.iter()
            .filter_map(|id| self.tidlists.block(*id))
            .map(|b| b.item_space())
            .sum()
    }

    /// Extra space (in TIDs) of materialized pair lists of the given blocks.
    pub fn pair_space(&self, ids: &[BlockId]) -> u64 {
        ids.iter()
            .filter_map(|id| self.tidlists.block(*id))
            .map(|b| b.pair_space())
            .sum()
    }

    /// ECUT+ materialization for a newly added block: writes TID-lists for
    /// `pairs` (callers pass the current frequent 2-itemsets, highest
    /// overall support first) until `budget` TIDs have been written.
    /// `budget = None` materializes everything (the paper's Figure 2/3
    /// setting: "all 2-frequent itemsets in each block materialized").
    pub fn materialize_pairs(
        &mut self,
        id: BlockId,
        pairs: &[(Item, Item)],
        budget: Option<u64>,
    ) -> MaterializeStats {
        let mut stats = MaterializeStats::default();
        let Some(lists) = self.tidlists.block_mut(id) else {
            stats.pairs_skipped = pairs.len();
            return stats;
        };
        let budget = budget.unwrap_or(u64::MAX);
        for &(a, b) in pairs {
            debug_assert!(a < b, "pairs must be ordered");
            let list = intersect_pair(lists.item_list(a), lists.item_list(b));
            let extra = list.len() as u64;
            if stats.pair_space + extra > budget {
                // Higher-priority pairs come first; once the budget is hit,
                // everything after is skipped too (the paper picks by
                // descending overall support).
                stats.pairs_skipped = pairs.len() - stats.pairs_materialized;
                break;
            }
            lists.insert_pair(a, b, list);
            stats.pairs_materialized += 1;
            stats.pair_space += extra;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Tid, Transaction};

    fn block(id: u64, txs: &[(u64, &[u32])]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .map(|(tid, items)| {
                    Transaction::new(Tid(*tid), items.iter().copied().map(Item).collect())
                })
                .collect(),
        )
    }

    fn sample_store() -> TxStore {
        let mut s = TxStore::new(4);
        s.add_block(block(1, &[(1, &[0, 1, 2]), (2, &[0, 1]), (3, &[2, 3])]));
        s.add_block(block(2, &[(4, &[0, 1]), (5, &[1, 2])]));
        s
    }

    #[test]
    fn add_query_remove_blocks() {
        let mut s = sample_store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.block(BlockId(1)).unwrap().len(), 3);
        assert_eq!(s.block_ids(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(s.n_transactions(&[BlockId(1), BlockId(2)]), 5);
        assert_eq!(s.n_transactions(&[BlockId(2)]), 2);
        assert!(s.remove_block(BlockId(1)));
        assert!(!s.remove_block(BlockId(1)));
        assert!(s.tidlists().block(BlockId(1)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tidlists_materialized_on_add() {
        let s = sample_store();
        let lists = s.tidlists().block(BlockId(1)).unwrap();
        assert_eq!(lists.item_support(Item(0)), 2);
        assert_eq!(lists.item_support(Item(3)), 1);
        // 3+2+2 = 7 item occurrences in block 1, 2+2 in block 2.
        assert_eq!(s.item_space(&[BlockId(1)]), 7);
        assert_eq!(s.item_space(&[BlockId(1), BlockId(2)]), 11);
    }

    #[test]
    fn materialize_pairs_unbounded() {
        let mut s = sample_store();
        let pairs = [(Item(0), Item(1)), (Item(1), Item(2))];
        let st = s.materialize_pairs(BlockId(1), &pairs, None);
        assert_eq!(st.pairs_materialized, 2);
        assert_eq!(st.pairs_skipped, 0);
        // {0,1} appears in TIDs 1,2; {1,2} in TID 1 → 3 TIDs of extra space.
        assert_eq!(st.pair_space, 3);
        assert_eq!(s.pair_space(&[BlockId(1)]), 3);
        let lists = s.tidlists().block(BlockId(1)).unwrap();
        assert_eq!(lists.pair_list(Item(0), Item(1)).unwrap().len(), 2);
    }

    #[test]
    fn materialize_pairs_respects_budget() {
        let mut s = sample_store();
        let pairs = [(Item(0), Item(1)), (Item(1), Item(2))];
        // Budget of 2 TIDs: the first pair (2 TIDs) fits, the second does not.
        let st = s.materialize_pairs(BlockId(1), &pairs, Some(2));
        assert_eq!(st.pairs_materialized, 1);
        assert_eq!(st.pairs_skipped, 1);
        assert_eq!(st.pair_space, 2);
        let lists = s.tidlists().block(BlockId(1)).unwrap();
        assert!(lists.pair_list(Item(0), Item(1)).is_some());
        assert!(lists.pair_list(Item(1), Item(2)).is_none());
    }

    #[test]
    fn materialize_pairs_unknown_block() {
        let mut s = sample_store();
        let st = s.materialize_pairs(BlockId(9), &[(Item(0), Item(1))], None);
        assert_eq!(st.pairs_materialized, 0);
        assert_eq!(st.pairs_skipped, 1);
    }
}
