//! [`TxStore`]: the evolving transactional database.
//!
//! The store keeps both representations the paper discusses: the raw
//! transactional blocks (scanned by PT-Scan) and the per-block TID-lists
//! (read selectively by ECUT/ECUT+). In the paper the TID-lists *replace*
//! the transactional format; we keep both because the experiments compare
//! counting procedures head-to-head on the same data.
//!
//! Since the memory-bounded storage engine landed, both representations
//! of one block live in a single record (`TxEntry`) inside a
//! [`demon_store::BlockStore`]. Under `--memory-budget` cold blocks are
//! spilled to disk in the framed [`demon_types::durable`] format and
//! transparently re-pinned on access; per-block summary statistics
//! (transaction counts, item/pair space) stay resident so selector and
//! cost-model queries never touch the disk.

use crate::codec::{get_varint, put_varint};
use crate::persist::{decode_pairs, decode_txs, encode_lists, encode_txs};
use crate::tidlist::{intersect_pair, BlockTidLists};
use bytes::{BufMut, BytesMut};
use demon_store::{BlockStore, Pinned, Spillable, StoreConfig};
use demon_types::durable::FrameClass;
use demon_types::{Block, BlockId, BlockInterval, DemonError, Item, Result, Timestamp, TxBlock};
use std::collections::BTreeMap;
use std::ops::Deref;

/// Result of an ECUT+ pair-materialization pass over one block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Number of 2-itemsets whose lists were written.
    pub pairs_materialized: usize,
    /// Number of 2-itemsets skipped because the budget ran out.
    pub pairs_skipped: usize,
    /// TIDs written for pair lists (the *extra* space of Figure 3).
    pub pair_space: u64,
}

/// Both representations of one block, stored (and spilled) together:
/// the raw transactions plus the per-item/pair TID-lists.
#[derive(Clone, Debug)]
pub(crate) struct TxEntry {
    /// The raw transactional block.
    pub block: TxBlock,
    /// The block's TID-lists (items + materialized pairs).
    pub lists: BlockTidLists,
    /// Size of the item universe (needed to re-encode the lists).
    pub n_items: u32,
}

impl Spillable for TxEntry {
    fn frame_class() -> FrameClass {
        FrameClass::TXENTRY
    }

    fn encode(&self) -> Result<Vec<u8>> {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, self.block.id().value());
        match self.block.interval() {
            None => buf.put_u8(0),
            Some(iv) => {
                buf.put_u8(1);
                put_varint(&mut buf, iv.start.secs());
                put_varint(&mut buf, iv.end.secs());
            }
        }
        put_varint(&mut buf, u64::from(self.n_items));
        let txs = encode_txs(&self.block);
        put_varint(&mut buf, txs.len() as u64);
        buf.extend_from_slice(&txs);
        buf.extend_from_slice(&encode_lists(&self.lists, self.n_items));
        Ok(buf.to_vec())
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let mut pos = 0usize;
        let varint = |pos: &mut usize| -> Result<u64> {
            let (v, read) =
                get_varint(&bytes[*pos..]).map_err(|e| DemonError::Serde(e.to_string()))?;
            *pos += read;
            Ok(v)
        };
        let id = BlockId(varint(&mut pos)?);
        let tag = *bytes
            .get(pos)
            .ok_or_else(|| DemonError::Serde("truncated interval tag".into()))?;
        pos += 1;
        let interval = match tag {
            0 => None,
            1 => {
                let start = varint(&mut pos)?;
                let end = varint(&mut pos)?;
                Some(BlockInterval::new(Timestamp(start), Timestamp(end)))
            }
            other => {
                return Err(DemonError::Serde(format!("invalid interval tag {other}")));
            }
        };
        let n_items_raw = varint(&mut pos)?;
        let n_items = u32::try_from(n_items_raw)
            .map_err(|_| DemonError::Serde(format!("item universe {n_items_raw} overflows u32")))?;
        let txs_len = usize::try_from(varint(&mut pos)?)
            .map_err(|_| DemonError::Serde("transaction payload length overflows usize".into()))?;
        let txs_end = pos
            .checked_add(txs_len)
            .filter(|&end| end <= bytes.len())
            .ok_or_else(|| {
                DemonError::Serde("transaction payload extends past the frame".into())
            })?;
        let mut block = decode_txs(&bytes[pos..txs_end], id, None, n_items)?;
        if let Some(iv) = interval {
            block = Block::with_interval(block.id(), iv, block.into_records());
        }
        // Item lists are rebuilt deterministically from the transactions;
        // only the ECUT+ pair investment travels in the payload.
        let mut lists = BlockTidLists::materialize(&block, n_items);
        for (a, b, list) in decode_pairs(&bytes[txs_end..], n_items)? {
            lists.insert_pair(a, b, list);
        }
        Ok(TxEntry {
            block,
            lists,
            n_items,
        })
    }

    fn resident_bytes(&self) -> u64 {
        // Deterministic content-based footprint: per-transaction headers,
        // item occurrences in both representations, pair-list TIDs, and
        // the per-item list headers.
        64 + 48 * self.block.len() as u64
            + 12 * self.lists.item_space()
            + 8 * self.lists.pair_space()
            + 32 * u64::from(self.n_items)
    }
}

/// Always-resident summary of one block, kept outside the engine so
/// space accounting and selector queries never fault a spilled block in.
#[derive(Clone, Copy, Debug)]
struct BlockInfo {
    n_transactions: u64,
    item_space: u64,
    pair_space: u64,
}

/// A pinned view of one block's raw transactions. While alive, the block
/// stays resident in the storage engine. Dereferences to [`TxBlock`].
pub struct BlockRef<'s> {
    entry: Pinned<'s, TxEntry>,
}

impl Deref for BlockRef<'_> {
    type Target = TxBlock;
    fn deref(&self) -> &TxBlock {
        &self.entry.block
    }
}

/// A pinned view of one block's TID-lists. Dereferences to
/// [`BlockTidLists`].
pub struct ListsRef<'s> {
    entry: Pinned<'s, TxEntry>,
}

impl Deref for ListsRef<'_> {
    type Target = BlockTidLists;
    fn deref(&self) -> &BlockTidLists {
        &self.entry.lists
    }
}

/// The TID-list side of the store, scoped per block. Obtained from
/// [`TxStore::tidlists`]; mirrors the old `TidListStore` read API.
pub struct TidListsView<'s> {
    store: &'s TxStore,
}

impl<'s> TidListsView<'s> {
    /// The lists of one block, pinned while the returned view is alive.
    ///
    /// # Panics
    /// If the block is spilled and its file cannot be read (see
    /// [`TxStore::block`]).
    pub fn block(&self, id: BlockId) -> Option<ListsRef<'s>> {
        self.store
            .pin_entry(id)
            .unwrap_or_else(|e| spill_panic(id, &e))
            .map(|entry| ListsRef { entry })
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.store.n_items
    }
}

#[cold]
fn spill_panic(id: BlockId, e: &DemonError) -> ! {
    panic!("block {id}: spilled data unreadable: {e}")
}

/// The evolving database: raw blocks plus their TID-lists, held in a
/// memory-bounded [`BlockStore`].
#[derive(Debug)]
pub struct TxStore {
    engine: BlockStore<TxEntry>,
    infos: BTreeMap<BlockId, BlockInfo>,
    /// Cached ascending id list backing [`TxStore::block_ids`].
    ids: Vec<BlockId>,
    n_items: u32,
}

impl TxStore {
    /// An empty in-memory store over an item universe of size `n_items`
    /// (the historical unbounded behavior).
    pub fn new(n_items: u32) -> Self {
        TxStore {
            engine: BlockStore::in_memory(),
            infos: BTreeMap::new(),
            ids: Vec::new(),
            n_items,
        }
    }

    /// An empty store whose blocks live in a store built from `config` —
    /// in-memory, or disk-spilled under a byte budget.
    pub fn with_config(n_items: u32, config: &StoreConfig) -> Result<Self> {
        Ok(TxStore {
            engine: config.build("tx")?,
            infos: BTreeMap::new(),
            ids: Vec::new(),
            n_items,
        })
    }

    /// Size of the item universe.
    pub fn n_items(&self) -> u32 {
        self.n_items
    }

    /// Adds a block: stores the raw transactions and materializes the
    /// per-item TID-lists in one scan.
    pub fn add_block(&mut self, block: TxBlock) {
        let lists = BlockTidLists::materialize(&block, self.n_items);
        self.insert_entry(block, lists);
    }

    /// Adds a reloaded block together with its persisted ECUT+ pair
    /// lists in one engine insert (the persistence layer's path).
    pub(crate) fn add_block_with_pairs(
        &mut self,
        block: TxBlock,
        pairs: Vec<(Item, Item, Vec<demon_types::Tid>)>,
    ) {
        let mut lists = BlockTidLists::materialize(&block, self.n_items);
        for (a, b, list) in pairs {
            lists.insert_pair(a, b, list);
        }
        self.insert_entry(block, lists);
    }

    fn insert_entry(&mut self, block: TxBlock, lists: BlockTidLists) {
        let id = block.id();
        let info = BlockInfo {
            n_transactions: block.len() as u64,
            item_space: lists.item_space(),
            pair_space: lists.pair_space(),
        };
        if self.infos.insert(id, info).is_none() {
            let pos = self.ids.partition_point(|&b| b < id);
            self.ids.insert(pos, id);
        }
        self.engine.insert(
            id,
            TxEntry {
                block,
                lists,
                n_items: self.n_items,
            },
        );
    }

    /// Retires a block entirely (raw data, TID-lists and any spill file).
    pub fn remove_block(&mut self, id: BlockId) -> bool {
        if self.infos.remove(&id).is_none() {
            return false;
        }
        if let Ok(pos) = self.ids.binary_search(&id) {
            self.ids.remove(pos);
        }
        self.engine.remove(id);
        true
    }

    /// The raw block, if present, pinned while the returned view is
    /// alive (a pinned block cannot be evicted mid-read).
    ///
    /// # Panics
    /// If the block is spilled and its file cannot be read or decoded.
    /// Use [`TxStore::try_block`] where the error must be surfaced.
    pub fn block(&self, id: BlockId) -> Option<BlockRef<'_>> {
        self.try_block(id).unwrap_or_else(|e| spill_panic(id, &e))
    }

    /// [`TxStore::block`] surfacing spill-read failures as errors.
    pub fn try_block(&self, id: BlockId) -> Result<Option<BlockRef<'_>>> {
        Ok(self.pin_entry(id)?.map(|entry| BlockRef { entry }))
    }

    /// Pins the combined entry of one block (counting paths read both
    /// representations under a single pin).
    pub(crate) fn pin_entry(&self, id: BlockId) -> Result<Option<Pinned<'_, TxEntry>>> {
        if !self.infos.contains_key(&id) {
            return Ok(None);
        }
        self.engine.get(id)
    }

    /// Pins the entries of `ids` in the given order, skipping retired
    /// blocks. Counting passes call this *before* entering a parallel
    /// region, so loads (and their `store.*` counters) are serial and
    /// deterministic, and shards never touch the engine.
    ///
    /// # Panics
    /// If a spilled entry cannot be read (counting cannot proceed
    /// without the data).
    pub(crate) fn pin_entries(&self, ids: &[BlockId]) -> Vec<Pinned<'_, TxEntry>> {
        ids.iter()
            .filter_map(|&id| self.pin_entry(id).unwrap_or_else(|e| spill_panic(id, &e)))
            .collect()
    }

    /// All stored block ids, ascending. Returns a cached slice — no
    /// allocation per call.
    pub fn block_ids(&self) -> &[BlockId] {
        &self.ids
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// Whether the store holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Total transactions across the given blocks (summary data; never
    /// faults spilled blocks in).
    pub fn n_transactions(&self, ids: &[BlockId]) -> u64 {
        ids.iter()
            .filter_map(|id| self.infos.get(id))
            .map(|info| info.n_transactions)
            .sum()
    }

    /// The TID-list side of the store.
    pub fn tidlists(&self) -> TidListsView<'_> {
        TidListsView { store: self }
    }

    /// Space (in TIDs) of the per-item lists of the given blocks — equal to
    /// the transactional size of those blocks.
    pub fn item_space(&self, ids: &[BlockId]) -> u64 {
        ids.iter()
            .filter_map(|id| self.infos.get(id))
            .map(|info| info.item_space)
            .sum()
    }

    /// Extra space (in TIDs) of materialized pair lists of the given blocks.
    pub fn pair_space(&self, ids: &[BlockId]) -> u64 {
        ids.iter()
            .filter_map(|id| self.infos.get(id))
            .map(|info| info.pair_space)
            .sum()
    }

    /// Deterministic footprint of the blocks currently resident in
    /// memory, in bytes (test and `--stats` support).
    pub fn resident_bytes(&self) -> u64 {
        self.engine.resident_bytes()
    }

    /// ECUT+ materialization for a newly added block: writes TID-lists for
    /// `pairs` (callers pass the current frequent 2-itemsets, highest
    /// overall support first) until `budget` TIDs have been written.
    /// `budget = None` materializes everything (the paper's Figure 2/3
    /// setting: "all 2-frequent itemsets in each block materialized").
    ///
    /// # Panics
    /// If the block is spilled and its file cannot be read.
    pub fn materialize_pairs(
        &mut self,
        id: BlockId,
        pairs: &[(Item, Item)],
        budget: Option<u64>,
    ) -> MaterializeStats {
        let mut stats = MaterializeStats::default();
        if !self.infos.contains_key(&id) {
            stats.pairs_skipped = pairs.len();
            return stats;
        }
        let budget = budget.unwrap_or(u64::MAX);
        // `&mut self` guarantees no live pins, so the mutation can only
        // fail on spill I/O.
        let applied = self
            .engine
            .with_mut(id, |entry| {
                let lists = &mut entry.lists;
                for &(a, b) in pairs {
                    debug_assert!(a < b, "pairs must be ordered");
                    let list = intersect_pair(lists.item_list(a), lists.item_list(b));
                    let extra = list.len() as u64;
                    if stats.pair_space + extra > budget {
                        // Higher-priority pairs come first; once the budget
                        // is hit, everything after is skipped too (the paper
                        // picks by descending overall support).
                        stats.pairs_skipped = pairs.len() - stats.pairs_materialized;
                        break;
                    }
                    lists.insert_pair(a, b, list);
                    stats.pairs_materialized += 1;
                    stats.pair_space += extra;
                }
                lists.pair_space()
            })
            .unwrap_or_else(|e| spill_panic(id, &e));
        if let (Some(total_pair_space), Some(info)) = (applied, self.infos.get_mut(&id)) {
            info.pair_space = total_pair_space;
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demon_types::{Tid, Transaction};

    fn block(id: u64, txs: &[(u64, &[u32])]) -> TxBlock {
        TxBlock::new(
            BlockId(id),
            txs.iter()
                .map(|(tid, items)| {
                    Transaction::new(Tid(*tid), items.iter().copied().map(Item).collect())
                })
                .collect(),
        )
    }

    fn sample_store() -> TxStore {
        let mut s = TxStore::new(4);
        s.add_block(block(1, &[(1, &[0, 1, 2]), (2, &[0, 1]), (3, &[2, 3])]));
        s.add_block(block(2, &[(4, &[0, 1]), (5, &[1, 2])]));
        s
    }

    #[test]
    fn add_query_remove_blocks() {
        let mut s = sample_store();
        assert_eq!(s.len(), 2);
        assert_eq!(s.block(BlockId(1)).unwrap().len(), 3);
        assert_eq!(s.block_ids(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(s.n_transactions(&[BlockId(1), BlockId(2)]), 5);
        assert_eq!(s.n_transactions(&[BlockId(2)]), 2);
        assert!(s.remove_block(BlockId(1)));
        assert!(!s.remove_block(BlockId(1)));
        assert!(s.tidlists().block(BlockId(1)).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tidlists_materialized_on_add() {
        let s = sample_store();
        let lists = s.tidlists().block(BlockId(1)).unwrap();
        assert_eq!(lists.item_support(Item(0)), 2);
        assert_eq!(lists.item_support(Item(3)), 1);
        // 3+2+2 = 7 item occurrences in block 1, 2+2 in block 2.
        assert_eq!(s.item_space(&[BlockId(1)]), 7);
        assert_eq!(s.item_space(&[BlockId(1), BlockId(2)]), 11);
    }

    #[test]
    fn materialize_pairs_unbounded() {
        let mut s = sample_store();
        let pairs = [(Item(0), Item(1)), (Item(1), Item(2))];
        let st = s.materialize_pairs(BlockId(1), &pairs, None);
        assert_eq!(st.pairs_materialized, 2);
        assert_eq!(st.pairs_skipped, 0);
        // {0,1} appears in TIDs 1,2; {1,2} in TID 1 → 3 TIDs of extra space.
        assert_eq!(st.pair_space, 3);
        assert_eq!(s.pair_space(&[BlockId(1)]), 3);
        let lists = s.tidlists().block(BlockId(1)).unwrap();
        assert_eq!(lists.pair_list(Item(0), Item(1)).unwrap().len(), 2);
    }

    #[test]
    fn materialize_pairs_respects_budget() {
        let mut s = sample_store();
        let pairs = [(Item(0), Item(1)), (Item(1), Item(2))];
        // Budget of 2 TIDs: the first pair (2 TIDs) fits, the second does not.
        let st = s.materialize_pairs(BlockId(1), &pairs, Some(2));
        assert_eq!(st.pairs_materialized, 1);
        assert_eq!(st.pairs_skipped, 1);
        assert_eq!(st.pair_space, 2);
        let lists = s.tidlists().block(BlockId(1)).unwrap();
        assert!(lists.pair_list(Item(0), Item(1)).is_some());
        assert!(lists.pair_list(Item(1), Item(2)).is_none());
    }

    #[test]
    fn materialize_pairs_unknown_block() {
        let mut s = sample_store();
        let st = s.materialize_pairs(BlockId(9), &[(Item(0), Item(1))], None);
        assert_eq!(st.pairs_materialized, 0);
        assert_eq!(st.pairs_skipped, 1);
    }

    #[test]
    fn spilled_blocks_reload_identically() {
        use demon_store::SpillPolicy;
        let dir = std::env::temp_dir().join(format!("demon-txstore-{}", std::process::id()));
        let config = StoreConfig::Spill {
            dir: dir.clone(),
            policy: SpillPolicy::Always,
            cleanup: true,
        };
        let mut spilled = TxStore::with_config(4, &config).unwrap();
        let mut reference = TxStore::new(4);
        for s in [&mut spilled, &mut reference] {
            s.add_block(block(1, &[(1, &[0, 1, 2]), (2, &[0, 1]), (3, &[2, 3])]));
            s.add_block(block(2, &[(4, &[0, 1]), (5, &[1, 2])]));
            s.materialize_pairs(BlockId(1), &[(Item(0), Item(1))], None);
        }
        // Everything unpinned was evicted to disk.
        assert_eq!(spilled.resident_bytes(), 0);
        for id in [BlockId(1), BlockId(2)] {
            let (a, b) = (spilled.block(id).unwrap(), reference.block(id).unwrap());
            assert_eq!(a.records(), b.records());
            let (la, lb) = (
                spilled.tidlists().block(id).unwrap(),
                reference.tidlists().block(id).unwrap(),
            );
            for i in 0..4u32 {
                assert_eq!(la.item_list(Item(i)), lb.item_list(Item(i)));
            }
        }
        // The ECUT+ pair investment survives the spill round-trip.
        assert_eq!(
            spilled
                .tidlists()
                .block(BlockId(1))
                .unwrap()
                .pair_list(Item(0), Item(1)),
            reference
                .tidlists()
                .block(BlockId(1))
                .unwrap()
                .pair_list(Item(0), Item(1))
        );
        assert_eq!(spilled.pair_space(&[BlockId(1)]), 2);
    }

    #[test]
    fn entry_roundtrips_with_interval() {
        let b = Block::with_interval(
            BlockId(7),
            BlockInterval::new(Timestamp(100), Timestamp(200)),
            vec![Transaction::new(Tid(1), vec![Item(0), Item(2)])],
        );
        let mut lists = BlockTidLists::materialize(&b, 3);
        lists.insert_pair(Item(0), Item(2), vec![Tid(1)]);
        let entry = TxEntry {
            block: b,
            lists,
            n_items: 3,
        };
        let bytes = entry.encode().unwrap();
        let back = TxEntry::decode(&bytes).unwrap();
        assert_eq!(back.block.records(), entry.block.records());
        assert_eq!(back.block.interval(), entry.block.interval());
        assert_eq!(
            back.lists.pair_list(Item(0), Item(2)),
            entry.lists.pair_list(Item(0), Item(2))
        );
        assert_eq!(back.resident_bytes(), entry.resident_bytes());
    }
}
